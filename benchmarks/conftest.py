"""Shared benchmark configuration.

Each ``test_bench_*.py`` module regenerates one paper artifact (table or
figure — see DESIGN.md §5) by running its experiment and printing the
table, and additionally times the underlying kernels with
pytest-benchmark for regression tracking.

Set ``REPRO_BENCH_FULL=1`` to run experiments at paper scale (Figure 5's
1M–256M arrays go through the analytic path, so even full scale stays
fast; the wall-clock refinements grow with the flag).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.tables import render_result
from repro.types import ExperimentResult

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def emit(result: ExperimentResult) -> None:
    """Print a regenerated paper table through the uniform renderer."""
    print()
    print(render_result(result))


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """Whether paper-scale parameters were requested."""
    return FULL
