#!/usr/bin/env python
"""Standalone bench-regression emitter and perf ratchet.

Thin wrapper over :mod:`repro.obs.bench` so CI (and anyone without an
installed package) can write a ``BENCH_<date>.json`` snapshot and gate
against a committed baseline::

    python benchmarks/emit.py --quick --out BENCH_ci.json
    python benchmarks/emit.py --quick --compare BENCH_2026-08-06.json
    python benchmarks/emit.py --compare BENCH_old.json --against BENCH_new.json

``--compare`` diffs per-op ``ns_per_elem`` against the named baseline;
by default any row regressing more than 25% fails the run (exit 1).
CI uses ``--warn-regress 0.25 --max-regress 1.0`` to annotate 25%
regressions as warnings (``::warning::`` on GitHub Actions) while only
hard-failing past 2x.  ``--against`` compares two existing snapshots
without re-running the suite.

Rows cover the batched in-RAM entry points (``parallel_merge``,
``segmented_parallel_merge``, ``parallel_merge_sort``) plus the
SPM-planned out-of-core path (``external_sort``, run at a memory budget
of ``n/8`` so run formation and block merges are both exercised) — so
the ratchet also catches regressions in the disk-resident pipeline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

try:
    from repro.obs.bench import compare_bench, format_comparison, write_bench_file
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs.bench import compare_bench, format_comparison, write_bench_file


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, two thread counts")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_<date>.json)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--compare", default=None, metavar="BASELINE.json",
                        help="diff ns/elem against this baseline snapshot")
    parser.add_argument("--against", default=None, metavar="CURRENT.json",
                        help="with --compare: diff an existing snapshot "
                        "instead of running the suite")
    parser.add_argument("--warn-regress", type=float, default=0.25,
                        help="fractional regression that warns (default 0.25)")
    parser.add_argument("--max-regress", type=float, default=None,
                        help="fractional regression that fails "
                        "(default: same as --warn-regress)")
    ns = parser.parse_args(argv)
    if ns.against is not None and ns.compare is None:
        parser.error("--against requires --compare")

    if ns.compare is None:
        path = write_bench_file(ns.out, quick=ns.quick, seed=ns.seed)
        print(f"wrote {path}")
        return 0

    baseline = _load(ns.compare)
    if ns.against is not None:
        current = _load(ns.against)
        print(f"comparing {ns.against} against {ns.compare}")
    else:
        path = write_bench_file(ns.out, quick=ns.quick, seed=ns.seed)
        print(f"wrote {path}")
        current = _load(path)
        print(f"comparing {path} against {ns.compare}")

    fail_frac = ns.max_regress if ns.max_regress is not None else ns.warn_regress
    cmp = compare_bench(
        baseline, current, warn_frac=ns.warn_regress, fail_frac=fail_frac
    )
    print(format_comparison(cmp))

    gha = os.environ.get("GITHUB_ACTIONS", "").lower() == "true"
    for row in cmp["rows"]:
        if row["status"] in ("warn", "fail"):
            msg = (
                f"bench regression: {row['op']} n={row['n']} p={row['p']} "
                f"ns/elem {row['base_ns']:.3f} -> {row['cur_ns']:.3f} "
                f"({row['delta'] * 100:+.1f}%)"
            )
            if gha:
                prefix = "::error::" if row["status"] == "fail" else "::warning::"
                print(f"{prefix}{msg}")
            else:
                print(msg, file=sys.stderr)

    if cmp["failed"]:
        print(
            f"FAIL: at least one op regressed more than "
            f"{fail_frac * 100:.0f}% vs {ns.compare}",
            file=sys.stderr,
        )
        return 1
    if cmp["warned"]:
        print(f"warnings only (threshold {ns.warn_regress * 100:.0f}%); "
              "not failing")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
