#!/usr/bin/env python
"""Standalone bench-regression emitter.

Thin wrapper over :mod:`repro.obs.bench` so CI (and anyone without an
installed package) can write a ``BENCH_<date>.json`` snapshot::

    python benchmarks/emit.py --quick --out BENCH_ci.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    from repro.obs.bench import write_bench_file
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs.bench import write_bench_file


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, two thread counts")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_<date>.json)")
    parser.add_argument("--seed", type=int, default=7)
    ns = parser.parse_args(argv)
    path = write_bench_file(ns.out, quick=ns.quick, seed=ns.seed)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
