"""The serve-smoke soak: a live server, real load, a doctor verdict.

CI's ``serve-smoke`` job runs this script.  It:

1. starts ``python -m repro serve --port 0`` as a subprocess and parses
   the bound port off its ``serving on HOST:PORT`` line;
2. drives the deterministic load generator against it for ~10 seconds
   (many tiny merges, occasional large sorts, some top-k), checking
   every response bit-for-bit against the serial oracle;
3. pulls the server's metrics snapshot over the wire (the ``metrics``
   op) and writes it to ``serve-metrics.json``;
4. judges that live-traffic window with ``python -m repro doctor
   --slo benchmarks/serve_slo.json --metrics-from ...`` and writes the
   ``repro-doctor/1`` verdict to ``serve-doctor.json``.

Two hardening modes stack on top:

``--chaos``
    Interposes a seeded :class:`repro.resilience.ChaosProxyThread`
    between the load generator and the server (resets, corrupted
    request bytes, latency jitter, slowloris trickles).  The gate
    tightens in the only way that matters: transport casualties are
    expected, but **zero responses may diverge from the oracle** and
    the soak must still land successful responses.

``--sigterm-after N``
    Sends the server SIGTERM ``N`` seconds into the soak, while load is
    in flight.  Gates: the server exits 0 with ``drain complete`` on
    stdout, the final ``--metrics-snapshot`` file it flushed is
    doctor-readable, and nothing the load generator got back was wrong.

Exit status is non-zero on any incorrect response, any gate miss, or a
FAIL doctor verdict — the job gates on it.

Run locally::

    PYTHONPATH=src python benchmarks/serve_smoke.py --duration 10
    PYTHONPATH=src python benchmarks/serve_smoke.py --duration 8 --chaos
    PYTHONPATH=src python benchmarks/serve_smoke.py --duration 8 \\
        --sigterm-after 4
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BANNER = re.compile(r"serving on (\S+):(\d+)")


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def start_server(
    python: str, extra_args: list[str] | None = None
) -> tuple[subprocess.Popen, str, int]:
    proc = subprocess.Popen(
        [python, "-m", "repro", "serve", "--port", "0",
         "--no-control", *(extra_args or [])],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=str(REPO),
        env=_env(),
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited before binding (rc={proc.poll()})"
            )
        sys.stdout.write(f"[server] {line}")
        match = BANNER.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
    raise RuntimeError("server did not print its banner within 60s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="soak duration in seconds")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--chaos", action="store_true",
                        help="route the load through a seeded fault-"
                             "injecting TCP proxy")
    parser.add_argument("--chaos-seed", type=int, default=1729)
    parser.add_argument("--sigterm-after", type=float, default=0.0,
                        help="SIGTERM the server this many seconds into "
                             "the soak (0 = never); gates on a clean "
                             "drain and a doctor-readable final snapshot")
    parser.add_argument("--out-dir", default=".",
                        help="where serve-metrics.json / serve-doctor.json "
                             "land")
    ns = parser.parse_args()

    sys.path.insert(0, str(REPO / "src"))
    from repro.serve.client import request_sync
    from repro.workloads.loadgen import LoadSpec, run_load_sync

    out_dir = Path(ns.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    final_snapshot = out_dir / "serve-final.json"
    server_args: list[str] = []
    if ns.sigterm_after > 0:
        server_args += ["--drain-timeout", "20",
                        "--metrics-snapshot", str(final_snapshot)]
    server, host, port = start_server(sys.executable, server_args)

    proxy = None
    target_host, target_port = host, port
    failures: list[str] = []
    server_rc: int | None = None
    try:
        if ns.chaos:
            from repro.resilience import ChaosProxyThread, ChaosSpec

            spec = ChaosSpec(
                seed=ns.chaos_seed,
                reset_rate=0.02, corrupt_rate=0.03,
                delay_rate=0.05, delay_s=0.002,
                slowloris_rate=0.02, slowloris_chunk=64,
                slowloris_delay_s=0.001,
            )
            proxy = ChaosProxyThread(host, port, spec=spec).start()
            target_host, target_port = proxy.host, proxy.port
            print(f"chaos proxy on {proxy.host}:{proxy.port} "
                  f"(seed={ns.chaos_seed})")

        load = LoadSpec(
            clients=ns.clients,
            requests_per_client=50,
            seed=20260808,
            small_max=256,
            large_every=40,
            large_n=150_000,
            topk_every=9,
            pipeline=8,
            duration_s=ns.duration,
            # under chaos a lost frame stalls a pipelined reader; keep
            # the stall budget short so the soak's tail stays bounded
            recv_timeout_s=10.0 if ns.chaos else 30.0,
        )

        if ns.sigterm_after > 0:
            holder: dict[str, object] = {}

            def soak() -> None:
                holder["report"] = run_load_sync(
                    target_host, target_port, load)

            thread = threading.Thread(target=soak)
            thread.start()
            time.sleep(ns.sigterm_after)
            print(f"sending SIGTERM at t={ns.sigterm_after}s "
                  "with load in flight")
            server.send_signal(signal.SIGTERM)
            try:
                server_rc = server.wait(timeout=60)
            except subprocess.TimeoutExpired:
                failures.append("server did not exit within 60s of SIGTERM")
            thread.join(timeout=120)
            report = holder.get("report")
            if report is None:
                failures.append("load generator never finished")
        else:
            report = run_load_sync(target_host, target_port, load)

        if report is not None:
            print("load report:", json.dumps(report.summary(), indent=2))

        if ns.sigterm_after == 0:
            # scrape straight from the server (never through the chaos
            # proxy: the scrape is measurement, not traffic under test)
            snapshot = request_sync(
                host, port, {"id": "smoke", "op": "metrics"}, timeout=60.0
            )["result"]
            metrics_path = out_dir / "serve-metrics.json"
            metrics_path.write_text(
                json.dumps({"schema": "repro-serve-metrics/1",
                            "load": report.summary(),
                            "metrics": snapshot}, indent=2) + "\n"
            )
            print(f"wrote {metrics_path}")
        else:
            metrics_path = final_snapshot  # the server flushed it dying
    finally:
        if proxy is not None:
            proxy.stop()
            print("chaos stats:", json.dumps(proxy.stats))
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()

    if report is not None:
        if report.incorrect:
            failures.append(f"{report.incorrect} responses diverged from "
                            "the serial oracle")
        if report.ok == 0:
            failures.append("no successful responses at all")
        if not ns.chaos and ns.sigterm_after == 0 and report.errors:
            # under chaos / mid-drain, transport casualties are the
            # point; on a clean wire they are a failure
            failures.append(f"{report.errors} internal errors")

    if ns.chaos and proxy is not None:
        if sum(proxy.stats.values()) == 0:
            failures.append("chaos proxy injected no faults (vacuous soak)")

    if ns.sigterm_after > 0:
        tail = server.stdout.read() if server.stdout else ""
        if tail:
            for line in tail.splitlines():
                print(f"[server] {line}")
        if server_rc != 0:
            failures.append(f"server exit code {server_rc}, wanted 0")
        if "drain complete" not in tail:
            failures.append("server never printed 'drain complete'")
        if not metrics_path.exists():
            failures.append(f"final snapshot {metrics_path} was not written")

    if metrics_path.exists():
        doctor = subprocess.run(
            [sys.executable, "-m", "repro", "doctor", "--quick",
             "--slo", str(REPO / "benchmarks" / "serve_slo.json"),
             "--metrics-from", str(metrics_path),
             "--json", str(out_dir / "serve-doctor.json")],
            cwd=str(REPO),
            env=_env(),
        )
        if doctor.returncode != 0:
            failures.append("doctor verdict has FAIL clauses")

    if failures:
        print("SERVE SMOKE FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    mode = (" under chaos" if ns.chaos
            else " through SIGTERM drain" if ns.sigterm_after > 0 else "")
    print(f"serve smoke OK{mode}: {report.ok}/{report.sent} responses "
          "correct, doctor verdict FAIL-free")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
