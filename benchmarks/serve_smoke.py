"""The serve-smoke soak: a live server, real load, a doctor verdict.

CI's ``serve-smoke`` job runs this script.  It:

1. starts ``python -m repro serve --port 0`` as a subprocess and parses
   the bound port off its ``serving on HOST:PORT`` line;
2. drives the deterministic load generator against it for ~10 seconds
   (many tiny merges, occasional large sorts, some top-k), checking
   every response bit-for-bit against the serial oracle;
3. pulls the server's metrics snapshot over the wire (the ``metrics``
   op) and writes it to ``serve-metrics.json``;
4. judges that live-traffic window with ``python -m repro doctor
   --slo benchmarks/serve_slo.json --metrics-from ...`` and writes the
   ``repro-doctor/1`` verdict to ``serve-doctor.json``.

Exit status is non-zero on any incorrect response, any load-generator
error, or a FAIL doctor verdict — the job gates on it.

Run locally::

    PYTHONPATH=src python benchmarks/serve_smoke.py --duration 10
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BANNER = re.compile(r"serving on (\S+):(\d+)")


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def start_server(python: str) -> tuple[subprocess.Popen, str, int]:
    proc = subprocess.Popen(
        [python, "-m", "repro", "serve", "--port", "0",
         "--no-control"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=str(REPO),
        env=_env(),
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited before binding (rc={proc.poll()})"
            )
        sys.stdout.write(f"[server] {line}")
        match = BANNER.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
    raise RuntimeError("server did not print its banner within 60s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="soak duration in seconds")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--out-dir", default=".",
                        help="where serve-metrics.json / serve-doctor.json "
                             "land")
    ns = parser.parse_args()

    sys.path.insert(0, str(REPO / "src"))
    from repro.serve.client import request_sync
    from repro.workloads.loadgen import LoadSpec, run_load_sync

    out_dir = Path(ns.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    server, host, port = start_server(sys.executable)
    try:
        spec = LoadSpec(
            clients=ns.clients,
            requests_per_client=50,
            seed=20260808,
            small_max=256,
            large_every=40,
            large_n=150_000,
            topk_every=9,
            pipeline=8,
            duration_s=ns.duration,
        )
        report = run_load_sync(host, port, spec)
        print("load report:", json.dumps(report.summary(), indent=2))

        snapshot = request_sync(
            host, port, {"id": "smoke", "op": "metrics"}, timeout=60.0
        )["result"]
        metrics_path = out_dir / "serve-metrics.json"
        metrics_path.write_text(
            json.dumps({"schema": "repro-serve-metrics/1",
                        "load": report.summary(),
                        "metrics": snapshot}, indent=2) + "\n"
        )
        print(f"wrote {metrics_path}")
    finally:
        server.terminate()
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()

    failures = []
    if report.incorrect:
        failures.append(f"{report.incorrect} responses diverged from the "
                        "serial oracle")
    if report.errors:
        failures.append(f"{report.errors} internal errors")
    if report.ok == 0:
        failures.append("no successful responses at all")

    doctor = subprocess.run(
        [sys.executable, "-m", "repro", "doctor", "--quick",
         "--slo", str(REPO / "benchmarks" / "serve_slo.json"),
         "--metrics-from", str(out_dir / "serve-metrics.json"),
         "--json", str(out_dir / "serve-doctor.json")],
        cwd=str(REPO),
        env=_env(),
    )
    if doctor.returncode != 0:
        failures.append("doctor verdict has FAIL clauses")

    if failures:
        print("SERVE SMOKE FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    print(f"serve smoke OK: {report.ok}/{report.sent} responses correct, "
          "doctor verdict FAIL-free")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
