"""Design-choice ablations called out in DESIGN.md §7.

Not tied to a single paper artifact; these quantify the knobs the
implementation exposes:

* in-segment kernel choice (two-pointer / galloping / vectorized) on
  uniform vs clustered data;
* partition granularity: exactly p segments vs 4p oversubscription
  (oversubscription helps when segment costs vary — e.g. galloping on
  clustered data — at the price of more searches);
* keyed merge (payload gather) vs plain merge;
* streaming merge block size.
"""

import numpy as np
import pytest

from repro.core.keyed import merge_by_key
from repro.core.merge_path import partition_merge_path
from repro.core.parallel_merge import merge_partition, parallel_merge
from repro.core.sequential import KERNELS
from repro.core.streaming import streaming_merge
from repro.backends.serial import SerialBackend
from repro.workloads.adversarial import staircase_runs
from repro.workloads.generators import sorted_uniform_ints

from .conftest import FULL

N = (1 << 18) if FULL else (1 << 13)
SMALL = (1 << 14) if FULL else (1 << 11)


@pytest.fixture(scope="module")
def uniform_pair():
    return sorted_uniform_ints(N, 700), sorted_uniform_ints(N, 701)


@pytest.fixture(scope="module")
def clustered_pair():
    return staircase_runs(N, run=256)


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_bench_kernel_uniform(benchmark, uniform_pair, kernel):
    a, b = uniform_pair
    sa, sb = a[:SMALL], b[:SMALL]
    benchmark(KERNELS[kernel], sa, sb, check=False)


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_bench_kernel_clustered(benchmark, clustered_pair, kernel):
    a, b = clustered_pair
    sa, sb = a[:SMALL], b[:SMALL]
    benchmark(KERNELS[kernel], sa, sb, check=False)


@pytest.mark.parametrize("oversubscribe", [1, 4])
def test_bench_partition_granularity(benchmark, uniform_pair, oversubscribe):
    """p segments vs 4p segments executed on p workers."""
    a, b = uniform_pair
    p = 4
    backend = SerialBackend()
    segments = p * oversubscribe

    def run():
        part = partition_merge_path(a, b, segments, check=False)
        return merge_partition(a, b, part, backend=backend)

    out = benchmark(run)
    assert len(out) == 2 * N


def test_bench_merge_by_key_overhead(benchmark, uniform_pair):
    """Payload gather cost vs the plain merge (compare with FIG5 rows)."""
    a, b = uniform_pair
    av = np.arange(len(a))
    bv = np.arange(len(b))
    keys, vals = benchmark(merge_by_key, a, b, av, bv, p=1)
    assert len(keys) == len(vals) == 2 * N


def test_bench_plain_merge_reference(benchmark, uniform_pair):
    a, b = uniform_pair
    benchmark(parallel_merge, a, b, 1, backend="serial", check=False)


@pytest.mark.parametrize("L", [256, 4096])
def test_bench_streaming_block_size(benchmark, uniform_pair, L):
    """Streaming-merge throughput vs block size (per-block Python
    overhead amortizes with L)."""
    a, b = uniform_pair
    sa, sb = a[:SMALL], b[:SMALL]

    def run():
        total = 0
        for block in streaming_merge(iter(sa), iter(sb), L=L):
            total += len(block)
        return total

    assert benchmark(run) == 2 * SMALL


def test_bench_natural_sort_nearly_sorted(benchmark):
    """Adaptivity ablation: natural merge sort on 0.5%-shuffled data."""
    from repro.core.natural_sort import natural_merge_sort
    from repro.workloads.generators import nearly_sorted

    x = nearly_sorted(N, 710, swap_fraction=0.005)
    out = benchmark(natural_merge_sort, x, 4, backend="serial")
    assert np.all(out[:-1] <= out[1:])


def test_bench_standard_sort_nearly_sorted(benchmark):
    """The non-adaptive arm of the adaptivity ablation."""
    from repro.core.merge_sort import parallel_merge_sort
    from repro.workloads.generators import nearly_sorted

    x = nearly_sorted(N, 710, swap_fraction=0.005)
    out = benchmark(parallel_merge_sort, x, 4, backend="serial")
    assert np.all(out[:-1] <= out[1:])


def test_bench_inplace_merge(benchmark):
    """SymMerge wall time (O(1)-space arm) vs the allocating merges."""
    from repro.core.inplace import merge_inplace

    a = sorted_uniform_ints(SMALL, 720)
    b = sorted_uniform_ints(SMALL, 721)
    template = np.concatenate([a, b])

    def run():
        arr = template.copy()
        merge_inplace(arr, SMALL, check=False)
        return arr

    out = benchmark(run)
    assert np.all(out[:-1] <= out[1:])
