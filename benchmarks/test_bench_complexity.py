"""COMPLEX bench — Section III complexity fit plus counted-mode timing."""

import pytest

from repro.experiments.complexity_fit import run as run_complex
from repro.pram.merge_programs import counted_parallel_merge
from repro.workloads.generators import sorted_uniform_ints

from .conftest import FULL, emit


def test_complexity_table_regeneration(benchmark):
    exponents = (10, 12, 14, 16) if FULL else (10, 12, 14)
    result = benchmark.pedantic(
        run_complex, kwargs=dict(exponents=exponents), rounds=1, iterations=1
    )
    emit(result)
    r2 = float(result.notes[0].split("R² = ")[1].split(",")[0])
    assert r2 > 0.999


def test_bench_counted_merge(benchmark):
    a = sorted_uniform_ints(1 << 14, 400)
    b = sorted_uniform_ints(1 << 14, 401)
    counted = benchmark(counted_parallel_merge, a, b, 8)
    assert counted.work >= counted.time
