"""External-sort bench — measured block transfers vs the Aggarwal–Vitter
bound, across memory budgets."""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.external import IOCounter, aggarwal_vitter_bound, external_sort
from repro.workloads.generators import unsorted_uniform_ints

from .conftest import FULL

N = (1 << 18) if FULL else (1 << 14)
BLOCK = 256


@pytest.fixture(scope="module")
def data():
    return unsorted_uniform_ints(N, 900)


def test_external_io_table(benchmark, data):
    """Transfers vs the I/O-model lower bound at several budgets."""

    def run_all():
        rows = []
        for mem in (N // 32, N // 8, N // 2):
            io = IOCounter(block_elements=BLOCK)
            out = external_sort(data, mem, io=io)
            assert np.all(out[:-1] <= out[1:])
            bound = aggarwal_vitter_bound(N, mem, BLOCK)
            rows.append([mem, io.read_blocks, io.write_blocks,
                         io.total_blocks, round(bound, 1),
                         round(io.total_blocks / bound, 2) if bound else "-"])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(render_table(
        ["memory_elems", "read_blocks", "write_blocks", "total",
         "AV_bound", "total/bound"],
        rows,
    ))
    # measured transfers stay within a small constant of the bound
    for row in rows:
        if row[5] != "-":
            assert float(row[5]) < 15


def test_bench_external_sort(benchmark, data):
    out = benchmark(external_sort, data, N // 8)
    assert len(out) == N


def test_parallel_external_io_table(benchmark, data):
    """SPM-planned parallel path: transfers vs the bound per budget.

    The parallel fan-in merges all runs in one planned pass, so its
    transfer count is *lower* than the serial multi-pass heap path at
    the same budget — the table makes the comparison visible.
    """

    def run_all():
        rows = []
        for mem in (N // 32, N // 8):
            io = IOCounter(block_elements=BLOCK)
            out = external_sort(data, mem, parallel=True, io=io,
                                backend="threads", workers=4)
            assert np.array_equal(out, np.sort(data, kind="stable"))
            bound = aggarwal_vitter_bound(N, mem, BLOCK)
            rows.append([mem, io.read_blocks, io.write_blocks,
                         io.total_blocks, round(bound, 1),
                         round(io.total_blocks / bound, 2) if bound else "-"])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(render_table(
        ["memory_elems", "read_blocks", "write_blocks", "total",
         "AV_bound", "total/bound"],
        rows,
    ))
    for row in rows:
        if row[5] != "-":
            assert float(row[5]) < 8  # single planned pass: tighter than serial


def test_bench_parallel_external_sort(benchmark, data):
    out = benchmark(external_sort, data, N // 8, parallel=True,
                    backend="threads", workers=4)
    assert len(out) == N


def test_bench_in_memory_reference(benchmark, data):
    benchmark(np.sort, data, kind="mergesort")
