"""FIG5 bench — regenerates Figure 5 and times Algorithm 1's phases.

Prints the speedup table (model + counted columns) and benchmarks the
two phases the figure is made of: the partition (diagonal searches) and
the per-segment merge kernel.
"""

import numpy as np
import pytest

from repro.core.merge_path import partition_merge_path
from repro.core.parallel_merge import parallel_merge
from repro.experiments.fig5_speedup import run as run_fig5
from repro.workloads.generators import sorted_uniform_ints

from .conftest import FULL, emit

N = 1 << 22 if FULL else 1 << 18


@pytest.fixture(scope="module")
def pair():
    return sorted_uniform_ints(N, 100), sorted_uniform_ints(N, 101)


def test_fig5_table_regeneration(benchmark):
    """Regenerate the Figure 5 speedup series (the paper's artifact)."""
    result = benchmark.pedantic(
        run_fig5,
        kwargs=dict(
            full=True,
            counted=True,
            counted_elements=(1 << 16) if FULL else (1 << 13),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    at12 = [float(r["model_speedup"]) for r in result.rows if r["p"] == 12]
    # shape assertions: near-linear, paper-headline band, droop for 256M
    assert 11.0 <= sum(at12) / len(at12) <= 12.0
    assert at12[-1] == min(at12)  # largest size slowest


def test_bench_partition_12_diagonals(benchmark, pair):
    """Time the full 12-way partition (the figure's overhead term)."""
    a, b = pair
    part = benchmark(partition_merge_path, a, b, 12, check=False)
    assert part.max_imbalance <= 1


def test_bench_parallel_merge_threads(benchmark, pair):
    """Time end-to-end Algorithm 1 on the thread backend."""
    a, b = pair
    out = benchmark(parallel_merge, a, b, 4, backend="threads", check=False)
    assert len(out) == 2 * N


def test_bench_sequential_baseline(benchmark, pair):
    """Time the p=1 baseline the figure normalizes against."""
    a, b = pair
    out = benchmark(parallel_merge, a, b, 1, backend="serial", check=False)
    assert len(out) == 2 * N
