"""GPU-model bench — the blocked (moderngpu-style) merge.

Not a paper artifact (the paper predates the GPU libraries), but the
legacy DESIGN.md documents: times the two-level partition + tile merge
against the flat CPU path and prints the kernel's traffic counters.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.parallel_merge import parallel_merge
from repro.gpu import GPUSpec, blocked_merge
from repro.workloads.generators import sorted_uniform_ints

from .conftest import FULL

N = (1 << 19) if FULL else (1 << 15)


@pytest.fixture(scope="module")
def pair():
    return sorted_uniform_ints(N, 800), sorted_uniform_ints(N, 801)


def test_gpu_traffic_table(benchmark, pair):
    """Regenerate the traffic/uniformity counters per tuning."""
    a, b = pair
    rows = []

    def run_all():
        out = []
        for tpb, vt in ((64, 3), (128, 7), (256, 11)):
            spec = GPUSpec(threads_per_block=tpb, items_per_thread=vt,
                           shared_limit_elements=tpb * vt)
            merged, stats = blocked_merge(a, b, spec)
            out.append((tpb, vt, stats))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for tpb, vt, stats in results:
        rows.append([
            f"{tpb}x{vt}",
            stats.tiles,
            stats.global_loads,
            stats.global_stores,
            stats.max_thread_steps,
            sum(1 for s in stats.thread_steps if s != vt),
        ])
    print()
    print(render_table(
        ["tuning", "tiles", "global_loads", "global_stores",
         "max_thread_steps", "ragged_threads"],
        rows,
    ))
    for row in rows:
        assert row[5] <= 1  # SIMT uniformity: at most one ragged thread


def test_bench_blocked_merge(benchmark, pair):
    a, b = pair
    out, _ = benchmark(blocked_merge, a, b, collect_stats=False)
    assert len(out) == 2 * N


def test_bench_flat_merge_reference(benchmark, pair):
    a, b = pair
    benchmark(parallel_merge, a, b, 1, backend="serial", check=False)
