"""HYPER bench — Section VII's many-core prediction, regenerated."""

import pytest

from repro.experiments.hypercore import run as run_hyper

from .conftest import FULL, emit


def test_hyper_table_regeneration(benchmark):
    result = benchmark.pedantic(
        run_hyper,
        kwargs=dict(
            n_per_array=(1 << 13) if FULL else (1 << 12),
            ps=(4, 16, 64),
            cache_elements=1 << 10,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    speedups = [
        float(r["spm_speedup"]) for r in result.rows if r["algorithm"] == "SPM"
    ]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 3.0
