"""k-way merge bench — the extension's three strategies compared.

Not a paper artifact; quantifies the k-way design space DESIGN.md
describes: binary-heap (O(N log T) comparisons, pointer-chasing),
pairwise merge-path tree (log T passes of vectorized merges), and the
partitioned k-way merge (balanced output ranges, tournament inside).
"""

import numpy as np
import pytest

from repro.baselines.heap_kway import heap_kway_merge
from repro.core.kway import kway_merge
from repro.core.parallel_merge import parallel_merge
from repro.workloads.generators import sorted_uniform_ints

from .conftest import FULL

T = 16
PER = (1 << 14) if FULL else (1 << 11)


@pytest.fixture(scope="module")
def arrays():
    return [sorted_uniform_ints(PER, 900 + t) for t in range(T)]


@pytest.fixture(scope="module")
def expected(arrays):
    return np.sort(np.concatenate(arrays), kind="mergesort")


def test_bench_heap_kway(benchmark, arrays, expected):
    out = benchmark(heap_kway_merge, arrays, check=False)
    np.testing.assert_array_equal(out, expected)


def test_bench_pairwise_tree(benchmark, arrays, expected):
    def tree():
        runs = list(arrays)
        while len(runs) > 1:
            nxt = [
                parallel_merge(runs[i], runs[i + 1], 1, backend="serial",
                               check=False)
                for i in range(0, len(runs) - 1, 2)
            ]
            if len(runs) % 2:
                nxt.append(runs[-1])
            runs = nxt
        return runs[0]

    out = benchmark(tree)
    np.testing.assert_array_equal(out, expected)


def test_bench_partitioned_kway(benchmark, arrays, expected):
    out = benchmark(kway_merge, arrays, 4, backend="serial", check=False)
    np.testing.assert_array_equal(out, expected)
