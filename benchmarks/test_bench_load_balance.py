"""LB bench — Section V load-balance comparison plus partitioner timings
and the galloping-kernel ablation on clustered data."""

import pytest

from repro.baselines.akl_santoro import akl_santoro_partition
from repro.baselines.shiloach_vishkin import sv_partition
from repro.core.merge_path import partition_merge_path
from repro.core.sequential import merge_galloping, merge_two_pointer
from repro.experiments.load_balance import run as run_lb
from repro.workloads.adversarial import disjoint_high_low

from .conftest import FULL, emit

N = (1 << 18) if FULL else (1 << 14)


@pytest.fixture(scope="module")
def disjoint_pair():
    return disjoint_high_low(N)


def test_lb_table_regeneration(benchmark):
    result = benchmark.pedantic(
        run_lb, kwargs=dict(n=(1 << 16) if FULL else (1 << 12)),
        rounds=1, iterations=1,
    )
    emit(result)
    sv_ratios = [
        float(r["max_over_avg"])
        for r in result.rows
        if r["algorithm"] == "shiloach_vishkin"
        and r["workload"] == "disjoint_high_low"
    ]
    assert max(sv_ratios) > 2.0  # the paper's 2x-latency scenario


def test_bench_merge_path_partition(benchmark, disjoint_pair):
    a, b = disjoint_pair
    benchmark(partition_merge_path, a, b, 16, check=False)


def test_bench_sv_partition(benchmark, disjoint_pair):
    a, b = disjoint_pair
    benchmark(sv_partition, a, b, 16)


def test_bench_akl_santoro_partition(benchmark, disjoint_pair):
    a, b = disjoint_pair
    benchmark(akl_santoro_partition, a, b, 16)


def test_bench_gallop_vs_two_pointer_on_runs(benchmark, disjoint_pair):
    """Ablation: galloping kernel on fully clustered data (its best case;
    the disjoint pair is one giant run per array)."""
    a, b = disjoint_pair
    small_a, small_b = a[: 1 << 12], b[: 1 << 12]
    benchmark(merge_galloping, small_a, small_b, check=False)
    # sanity: both kernels agree
    import numpy as np

    np.testing.assert_array_equal(
        merge_galloping(small_a, small_b, check=False),
        merge_two_pointer(small_a, small_b, check=False),
    )
