"""REM6PCT bench — the single-thread overhead remark of Section VI."""

import pytest

from repro.backends.serial import SerialBackend
from repro.core.parallel_merge import parallel_merge
from repro.core.sequential import merge_vectorized
from repro.experiments.overhead import run as run_overhead
from repro.workloads.generators import sorted_uniform_ints

from .conftest import FULL, emit

N = 1 << 21 if FULL else 1 << 17


@pytest.fixture(scope="module")
def pair():
    return sorted_uniform_ints(N, 200), sorted_uniform_ints(N, 201)


def test_overhead_table_regeneration(benchmark):
    result = benchmark.pedantic(
        run_overhead,
        kwargs=dict(
            elements=N,
            counted_elements=(1 << 13) if FULL else (1 << 10),
            reps=5,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    counted_row = result.rows[1]
    assert counted_row["overhead_pct"] == 0


def test_bench_raw_sequential_merge(benchmark, pair):
    a, b = pair
    benchmark(merge_vectorized, a, b, check=False)


def test_bench_merge_path_p1(benchmark, pair):
    a, b = pair
    backend = SerialBackend()
    benchmark(parallel_merge, a, b, 1, backend=backend, check=False)
