"""T14 bench — partition cost vs the Theorem 14 bound, plus the scalar
vs vectorized diagonal-search ablation."""

import pytest

from repro.core.merge_path import partition_merge_path
from repro.experiments.partition_cost import run as run_t14
from repro.workloads.generators import sorted_uniform_ints

from .conftest import FULL, emit

N = 1 << 20 if FULL else 1 << 16


@pytest.fixture(scope="module")
def pair():
    return sorted_uniform_ints(N, 300), sorted_uniform_ints(N, 301)


def test_t14_table_regeneration(benchmark):
    sizes = (1 << 10, 1 << 14, 1 << 18) if FULL else (1 << 10, 1 << 13)
    result = benchmark.pedantic(
        run_t14, kwargs=dict(sizes=sizes), rounds=1, iterations=1
    )
    emit(result)
    assert all(result.column("within_bound"))
    assert max(result.column("imbalance")) <= 1


@pytest.mark.parametrize("p", [8, 64])
def test_bench_partition_scalar(benchmark, pair, p):
    """Scalar per-diagonal binary search (ablation arm 1)."""
    a, b = pair
    benchmark(partition_merge_path, a, b, p, check=False, vectorized=False)


@pytest.mark.parametrize("p", [8, 64])
def test_bench_partition_vectorized(benchmark, pair, p):
    """Lockstep multi-diagonal search (ablation arm 2 — production)."""
    a, b = pair
    benchmark(partition_merge_path, a, b, p, check=False, vectorized=True)
