"""SORT bench — Sections III/IV.C sort scaling, plus sort implementations
timed against numpy's sort and the bitonic baseline."""

import numpy as np
import pytest

from repro.baselines.bitonic import bitonic_sort
from repro.core.cache_sort import cache_efficient_sort
from repro.core.merge_sort import parallel_merge_sort
from repro.experiments.sort_scaling import run as run_sort
from repro.workloads.generators import unsorted_uniform_ints

from .conftest import FULL, emit

N = (1 << 16) if FULL else (1 << 13)


@pytest.fixture(scope="module")
def data():
    return unsorted_uniform_ints(N, 600)


def test_sort_table_regeneration(benchmark):
    result = benchmark.pedantic(
        run_sort,
        kwargs=dict(
            exponents=(12, 14, 16) if FULL else (10, 12),
            ps=(2, 4, 8),
            cache_elements=1 << 10,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    spm = [r for r in result.rows if r["part"] == "final_round_SPM"][0]
    basic = [r for r in result.rows if r["part"] == "final_round_basic"][0]
    assert float(spm["ratio"]) < float(basic["ratio"])


def test_bench_parallel_merge_sort(benchmark, data):
    out = benchmark(parallel_merge_sort, data, 4, backend="serial")
    assert np.all(out[:-1] <= out[1:])


def test_bench_cache_efficient_sort(benchmark, data):
    out = benchmark(
        cache_efficient_sort, data, 4, 1 << 12, backend="serial"
    )
    assert np.all(out[:-1] <= out[1:])


def test_bench_bitonic_sort(benchmark, data):
    small = data[: 1 << 12]
    out = benchmark(bitonic_sort, small)
    assert np.all(out[:-1] <= out[1:])


def test_bench_numpy_reference(benchmark, data):
    benchmark(np.sort, data, kind="mergesort")
