"""SPM bench — Section IV cache behaviour, plus the L=C/3 sizing ablation."""

import pytest

from repro.backends.serial import SerialBackend
from repro.core.segmented_merge import segmented_parallel_merge
from repro.experiments.cache_misses import run as run_spm
from repro.workloads.generators import sorted_uniform_ints

from .conftest import FULL, emit

N = (1 << 16) if FULL else (1 << 13)


@pytest.fixture(scope="module")
def pair():
    return sorted_uniform_ints(N, 500), sorted_uniform_ints(N, 501)


def test_spm_table_regeneration(benchmark):
    result = benchmark.pedantic(
        run_spm,
        kwargs=dict(
            n_per_array=(1 << 14) if FULL else (1 << 12),
            p=8,
            cache_elements=1 << 10,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    rows = {r["algorithm"]: r for r in result.rows}
    # the paper's two claims, asserted on the regenerated numbers:
    assert float(rows["segmented_SPM"]["vs_compulsory"]) <= 1.05
    assert float(rows["segmented_SPM/3-way"]["vs_compulsory"]) <= 1.1
    assert (
        float(rows["segmented_SPM/2-way"]["vs_compulsory"])
        > float(rows["segmented_SPM/3-way"]["vs_compulsory"])
    )


@pytest.mark.parametrize("fraction", [2, 3, 4])
def test_bench_spm_block_sizing_ablation(benchmark, pair, fraction):
    """Time SPM with L = C/2, C/3 (paper), C/4 — the sizing ablation
    (cache correctness differs; wall time shows the block bookkeeping
    overhead of smaller blocks)."""
    a, b = pair
    backend = SerialBackend()
    cache_elements = 1 << 12
    out = benchmark(
        segmented_parallel_merge,
        a,
        b,
        4,
        L=max(1, cache_elements // fraction),
        backend=backend,
        check=False,
    )
    assert len(out) == 2 * N


def test_bench_spm_vs_basic_wallclock(benchmark, pair):
    """SPM end to end (compare with FIG5's basic-merge benchmarks)."""
    a, b = pair
    backend = SerialBackend()
    benchmark(
        segmented_parallel_merge, a, b, 4, L=1 << 11, backend=backend, check=False
    )
