#!/usr/bin/env python3
"""Scenario: why Segmented Parallel Merge exists (Section IV, visually).

Replays the exact memory traces of the basic parallel merge and SPM
through the cache simulator on a small shared-cache machine
(Hypercore-like), printing per-algorithm DRAM fills and the 3-way
associativity result.

Run:  python examples/cache_aware_merge.py
"""

from repro.cache.set_assoc import ReplacementPolicy, SetAssociativeCache
from repro.cache.trace import AddressMap
from repro.cache.traced_merge import (
    trace_parallel_merge,
    trace_segmented_merge,
    trace_sequential_merge,
)
from repro.core.segmented_merge import block_length
from repro.workloads.generators import sorted_uniform_ints

ELEMENT_BYTES = 4
LINE_BYTES = 32


def replay(trace, amap, cache_elements, assoc):
    cache = SetAssociativeCache(
        cache_elements * ELEMENT_BYTES, LINE_BYTES, assoc, ReplacementPolicy.LRU
    )
    for acc in trace:
        cache.access(amap.byte_address(acc.array, acc.index), acc.write)
    return cache.stats


def main() -> None:
    n = 16_384           # elements per input array
    p = 8                # cores sharing one cache
    cache_elements = 1024  # tiny shared cache: arrays are 16x larger
    L = block_length(cache_elements)  # the paper's L = C/3

    a = sorted_uniform_ints(n, 1)
    b = sorted_uniform_ints(n, 2)
    amap = AddressMap({"A": n, "B": n, "S": 2 * n}, element_bytes=ELEMENT_BYTES)
    compulsory = (4 * n * ELEMENT_BYTES) // LINE_BYTES  # each line once

    print(f"arrays: 2 x {n} elements; shared cache: {cache_elements} elements;"
          f" SPM block L = C/3 = {L}")
    print(f"compulsory floor: {compulsory} line fills\n")

    traces = {
        "sequential merge  ": trace_sequential_merge(a, b),
        f"basic parallel p={p}": trace_parallel_merge(a, b, p),
        f"segmented SPM  p={p}": trace_segmented_merge(a, b, p, L),
    }
    print(f"{'algorithm':<22} {'assoc':>6} {'misses':>9} {'vs floor':>9}")
    for name, trace in traces.items():
        for assoc in (1, 3, 16):
            stats = replay(trace, amap, cache_elements, assoc)
            print(f"{name:<22} {assoc:>4}-way {stats.misses:>9,} "
                  f"{stats.misses / compulsory:>8.2f}x")
        print()

    print("reading the table:")
    print(" * SPM at >=3-way sits on the compulsory floor — every line")
    print("   fetched exactly once (the paper's Section IV claim);")
    print(" * the basic parallel merge thrashes low-associativity caches")
    print("   because p cores stream 3p distant regions concurrently;")
    print(" * 3-way is the break-even associativity for SPM's three")
    print("   L-sized streams (the paper's associativity remark).")


if __name__ == "__main__":
    main()
