#!/usr/bin/env python3
"""Scenario: sorting data that doesn't fit in memory, with I/O accounting.

Runs the external merge sort (the Section IV.C structure pushed down one
memory level) under shrinking memory budgets and reports measured block
transfers against the Aggarwal–Vitter lower bound — the disk-era
version of the paper's cache-efficiency argument.

Run:  python examples/external_bigdata.py
"""

import numpy as np

from repro.external import IOCounter, aggarwal_vitter_bound, external_sort
from repro.workloads.generators import unsorted_uniform_ints


def main() -> None:
    n = 1 << 18           # "too big for RAM" stand-in
    block = 256           # disk block, in elements

    data = unsorted_uniform_ints(n, seed=7)
    print(f"input: {n:,} elements; block size {block} elements\n")
    print(f"{'memory':>10} {'runs':>5} {'reads':>8} {'writes':>8} "
          f"{'total':>8} {'AV bound':>9} {'x bound':>8}")

    for mem in (n // 2, n // 8, n // 32, n // 128):
        io = IOCounter(block_elements=block)
        out = external_sort(data, mem, io=io)
        assert np.array_equal(out, np.sort(data))
        runs = -(-n // mem)
        bound = aggarwal_vitter_bound(n, mem, block)
        factor = io.total_blocks / bound if bound else float("nan")
        print(f"{mem:>10,} {runs:>5} {io.read_blocks:>8,} "
              f"{io.write_blocks:>8,} {io.total_blocks:>8,} "
              f"{bound:>9,.0f} {factor:>8.2f}")

    print("\nreading the table:")
    print(" * every budget sorts correctly; transfers grow as memory")
    print("   shrinks because more merge passes are needed;")
    print(" * the measured-to-bound factor stays a small constant — the")
    print("   run-formation + k-way-merge structure is I/O-optimal up to")
    print("   constants, exactly like SPM is cache-optimal up to the")
    print("   compulsory floor.")

    # --- the parallel path: same answers, SPM-planned batched fan-in ---
    print("\nparallel=True (merge-path planned block merges, one dispatch")
    print("per pass; docs/external.md):\n")
    print(f"{'memory':>10} {'reads':>8} {'writes':>8} {'total':>8} "
          f"{'x bound':>8}")
    for mem in (n // 8, n // 32):
        io = IOCounter(block_elements=block)
        out = external_sort(data, mem, parallel=True, backend="threads",
                            workers=4, io=io)
        assert np.array_equal(out, np.sort(data))
        bound = aggarwal_vitter_bound(n, mem, block)
        factor = io.total_blocks / bound if bound else float("nan")
        print(f"{mem:>10,} {io.read_blocks:>8,} {io.write_blocks:>8,} "
              f"{io.total_blocks:>8,} {factor:>8.2f}")
    print("\nthe parallel pipeline pays a few extra planning probes but")
    print("stays within the same small constant of the bound, and every")
    print("block merge is idempotent — safe to retry under the")
    print("resilience layer (Theorem 14's disjointness, on disk).")


if __name__ == "__main__":
    main()
