#!/usr/bin/env python3
"""Tour of the SIMT (moderngpu-style) execution model.

Shows what the paper's partitioning became on GPUs: two-level diagonal
searches (grid tiles, then per-thread segments), perfectly uniform
per-thread work, and the traffic counters kernel authors tune.

Run:  python examples/gpu_model_tour.py
"""

from collections import Counter

import numpy as np

from repro.gpu import GPUSpec, blocked_merge, blocked_sort, plan_tiles
from repro.workloads.generators import sorted_uniform_ints, unsorted_uniform_ints


def main() -> None:
    n = 200_000
    a = sorted_uniform_ints(n, 1)
    b = sorted_uniform_ints(n - 12_345, 2)
    spec = GPUSpec(threads_per_block=128, items_per_thread=7,
                   shared_limit_elements=4096)
    print(f"merging {len(a):,} + {len(b):,} elements with "
          f"{spec.threads_per_block}x{spec.items_per_thread} tiles "
          f"(NV = {spec.tile_size})\n")

    plans = plan_tiles(a, b, spec)
    print(f"grid-level partition: {len(plans)} tiles, every tile "
          f"<= {spec.tile_size} staged elements")
    spans = [p.staged_elements for p in plans]
    print(f"  staged elements per tile: min {min(spans)}, max {max(spans)}")

    merged, stats = blocked_merge(a, b, spec)
    assert np.all(merged[:-1] <= merged[1:])
    hist = Counter(stats.thread_steps)
    print("\nblock-level execution:")
    print(f"  threads launched: {len(stats.thread_steps):,}")
    print(f"  per-thread serial steps: {dict(hist)}")
    print("  (every thread does exactly VT steps except the ragged tail —")
    print("   zero SIMT divergence in trip counts, the scheme's selling point)")
    print(f"  global loads:  {stats.global_loads:,} (= every element, once)")
    print(f"  global stores: {stats.global_stores:,}")
    print(f"  shared loads:  {stats.shared_loads:,}")
    print(f"  search probes: grid {stats.grid_search_probes:,}, "
          f"block {stats.block_search_probes:,}")

    # --- full mergesort in the same model --------------------------
    x = unsorted_uniform_ints(100_000, 3)
    out, sort_stats = blocked_sort(x, spec)
    assert np.array_equal(out, np.sort(x))
    print(f"\nblocked mergesort of {len(x):,} elements:")
    print(f"  block-sort launch: {sort_stats.tiles} tiles, "
          f"{sort_stats.block_sort_comparators:,} network comparators "
          f"at depth {sort_stats.block_sort_depth}")
    print(f"  merge rounds: {sort_stats.merge_rounds}")
    for r, rs in enumerate(sort_stats.round_stats, 1):
        print(f"    round {r}: {rs.tiles} tiles, "
              f"{rs.global_loads:,} loads")
    print("\n  each round moves every merged element exactly once (an odd")
    print("  run out is carried untouched, e.g. round 5) — the O(N)-per-")
    print("  round traffic Merge Path's balanced partitioning guarantees.")


if __name__ == "__main__":
    main()
