#!/usr/bin/env python3
"""Scenario: merging per-source sorted log streams into one timeline.

The classic workload the paper's introduction motivates — combining
pre-sorted streams — done three ways, with operation counts:

1. ``heapq``-style k-way merge (the sequential baseline),
2. repeated pairwise parallel merges (a merge tree of Algorithm 1),
3. the k-way merge-path extension (balanced output partitioning).

Run:  python examples/merge_join_logs.py
"""

import time

import numpy as np

from repro.baselines.heap_kway import heap_kway_merge
from repro.core.kway import kway_merge, kway_partition
from repro.core.parallel_merge import parallel_merge
from repro.types import MergeStats
from repro.workloads.datasets import log_records


def merge_tree(streams, p):
    """Pairwise Algorithm-1 merges until one stream remains."""
    streams = list(streams)
    while len(streams) > 1:
        nxt = [
            parallel_merge(streams[i], streams[i + 1], p, backend="serial")
            for i in range(0, len(streams) - 1, 2)
        ]
        if len(streams) % 2:
            nxt.append(streams[-1])
        streams = nxt
    return streams[0]


def main() -> None:
    n, sources = 400_000, 8
    streams = log_records(n, seed=42, sources=sources)
    print(f"{sources} sorted log streams, {n} records total")
    for i, s in enumerate(streams[:3]):
        print(f"  stream {i}: {len(s)} records, "
              f"t=[{s[0]}..{s[-1]}]")
    print("  ...")

    # 1. heap k-way (sequential reference)
    stats = MergeStats()
    t0 = time.perf_counter()
    ref = heap_kway_merge(streams, stats=stats)
    t_heap = time.perf_counter() - t0
    print(f"\nheap k-way merge   : {t_heap:.3f}s, "
          f"{stats.comparisons:,} comparisons")

    # 2. merge tree of pairwise Algorithm-1 merges
    t0 = time.perf_counter()
    tree = merge_tree(streams, p=4)
    t_tree = time.perf_counter() - t0
    print(f"pairwise merge tree: {t_tree:.3f}s")

    # 3. k-way merge-path extension
    t0 = time.perf_counter()
    kw = kway_merge(streams, p=4, backend="serial")
    t_kway = time.perf_counter() - t0
    print(f"k-way merge path   : {t_kway:.3f}s")

    assert np.array_equal(ref, tree) and np.array_equal(ref, kw)
    print("\nall three timelines identical:", len(ref), "records, sorted")

    # show the balanced k-way partition that made (3) parallelizable
    cuts = kway_partition(streams, 4)
    sizes = [sum(cuts[k + 1]) - sum(cuts[k]) for k in range(4)]
    print("k-way output partition sizes for 4 workers:", sizes,
          "(difference <= 1 by construction)")


if __name__ == "__main__":
    main()
