#!/usr/bin/env python3
"""Teaching demo: the Merge Matrix, the Merge Path, and a PRAM run.

Renders Section II's constructions for a small example (like the
paper's Figures 1-2), then executes Algorithm 1 on the lockstep CREW
PRAM simulator and prints the per-processor step counts — load balance
made visible.

Run:  python examples/pram_classroom.py
"""

import numpy as np

from repro.core.merge_matrix import MergeMatrix, build_merge_path, path_moves
from repro.core.merge_path import partition_merge_path
from repro.pram.memory import AccessMode
from repro.pram.merge_programs import run_parallel_merge_pram


def render_matrix(m: MergeMatrix, path) -> str:
    """ASCII merge matrix with the merge path drawn on its grid."""
    rows, cols = m.shape
    on_path = {(pt.i, pt.j) for pt in path}
    lines = ["      " + "  ".join(f"B={v}" for v in m.b)]
    for i in range(rows):
        cells = []
        for j in range(cols):
            cells.append(" 1 " if m[i, j] else " 0 ")
        lines.append(f"A={m.a[i]:<3} " + " ".join(cells))
    return "\n".join(lines)


def main() -> None:
    a = np.array([3, 5, 12, 22, 45])
    b = np.array([4, 13, 14, 21, 23])

    print("A =", a)
    print("B =", b)

    m = MergeMatrix(a, b)
    path = build_merge_path(a, b)
    print("\nbinary merge matrix (M[i,j] = A[i] > B[j], Definition 1):")
    print(render_matrix(m, path))
    print("\nmerge path moves (D = take from A, R = take from B):")
    print(" ", path_moves(path))

    # Cross-diagonal structure (Corollary 12 / Proposition 13)
    print("\ncross diagonals are monotone 0->1 top-to-bottom; the merge")
    print("path crosses each at the 1/0 transition (Proposition 13):")
    for d in (2, 5, 8):
        diag = m.cross_diagonal(d)
        print(f"  diagonal {d}: {diag.astype(int)}")

    # Partition + PRAM execution
    p = 3
    part = partition_merge_path(a, b, p)
    print(f"\npartition for p={p} (Theorem 14, one binary search each):")
    for seg in part:
        print(f"  processor {seg.index}: A[{seg.a_start}:{seg.a_end}] + "
              f"B[{seg.b_start}:{seg.b_end}] -> S[{seg.out_start}:{seg.out_end}]")

    merged, metrics = run_parallel_merge_pram(a, b, p, mode=AccessMode.CREW)
    print("\nlockstep CREW PRAM run of Algorithm 1:")
    print("  merged:", merged)
    print("  cycles (time):", metrics.time)
    print("  total ops (work):", metrics.work)
    print("  per-processor steps:", metrics.steps_per_processor)
    print("  legal concurrent reads observed:", metrics.concurrent_read_events)
    print("  (no CREW violation was raised: Algorithm 1 is lock-free)")

    # Timeline: balance made visible, merge path vs a bad partition.
    from repro.baselines.shiloach_vishkin import sv_partition
    from repro.pram.baseline_programs import segment_merge_program
    from repro.pram.memory import SharedMemory
    from repro.pram.merge_programs import merge_path_program
    from repro.pram.timeline import (
        TimelineRecorder,
        TracingPRAMMachine,
        render_timeline,
    )
    from repro.workloads.adversarial import disjoint_high_low

    ah, bl = disjoint_high_low(12)
    print("\nper-cycle activity, A = all-high / B = all-low, p = 3:")

    mem = SharedMemory(AccessMode.CREW)
    mem.alloc("A", ah)
    mem.alloc("B", bl)
    mem.alloc("S", np.zeros(24, dtype=np.int64))
    rec = TimelineRecorder()
    TracingPRAMMachine(mem, rec).run(
        [merge_path_program(pid, 3, 12, 12) for pid in range(3)]
    )
    print("\nMerge Path partition (balanced):")
    print(render_timeline(rec, max_width=72))

    mem2 = SharedMemory(AccessMode.CREW)
    mem2.alloc("A", ah)
    mem2.alloc("B", bl)
    mem2.alloc("S", np.zeros(24, dtype=np.int64))
    rec2 = TimelineRecorder()
    part = sv_partition(ah, bl, 3)
    TracingPRAMMachine(mem2, rec2).run(
        [segment_merge_program(s) for s in part.segments if s.length]
    )
    print("\nShiloach-Vishkin-style partition (imbalanced on this input):")
    print(render_timeline(rec2, max_width=72))


if __name__ == "__main__":
    main()
