#!/usr/bin/env python3
"""Quickstart: merge and sort with the repro public API.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    merge,
    parallel_merge,
    parallel_merge_sort,
    partition_merge_path,
    segmented_parallel_merge,
)


def main() -> None:
    # --- 1. A plain stable merge -------------------------------------
    a = np.array([1, 3, 3, 9, 12])
    b = np.array([2, 3, 8, 10])
    print("merge(a, b)           :", merge(a, b))

    # --- 2. The same merge on 4 parallel workers (Algorithm 1) -------
    out = parallel_merge(a, b, p=4, backend="threads")
    print("parallel_merge(p=4)   :", out)

    # --- 3. What the partitioner actually did ------------------------
    part = partition_merge_path(a, b, 4)
    print("\nmerge-path partition into 4 segments:")
    for seg in part:
        print(
            f"  worker {seg.index}: A[{seg.a_start}:{seg.a_end}] "
            f"+ B[{seg.b_start}:{seg.b_end}] -> S[{seg.out_start}:{seg.out_end}]"
        )
    print("segment lengths:", part.segment_lengths,
          "(max imbalance:", part.max_imbalance, "— Corollary 7)")

    # --- 4. Cache-friendly merging (Algorithm 2) ----------------------
    big_a = np.sort(np.random.default_rng(0).integers(0, 10**6, 100_000))
    big_b = np.sort(np.random.default_rng(1).integers(0, 10**6, 100_000))
    spm = segmented_parallel_merge(big_a, big_b, p=4, cache_elements=8192)
    assert np.all(spm[:-1] <= spm[1:])
    print("\nsegmented merge of 200k elements: ok (sorted)")

    # --- 5. Parallel merge sort ---------------------------------------
    data = np.random.default_rng(2).integers(0, 1000, 37)
    print("\nparallel_merge_sort   :", parallel_merge_sort(data, p=4)[:12], "...")


if __name__ == "__main__":
    main()
