#!/usr/bin/env python3
"""Scenario: sorting a day of unsorted telemetry, end to end.

Compares the package's sorters on an out-of-order measurement stream —
parallel merge sort (Section III), cache-efficient sort (Section IV.C)
and the bitonic network baseline — and models what the same sort would
cost on the paper's 12-core Dell T610 using the timing model.

Run:  python examples/sorting_telemetry.py
"""

import time

import numpy as np

from repro.baselines.bitonic import bitonic_sort
from repro.core.cache_sort import cache_efficient_sort
from repro.core.merge_sort import parallel_merge_sort
from repro.machine.specs import dell_t610
from repro.machine.timing import TimingModel
from repro.workloads.generators import rng_from


def telemetry(n: int, seed: int = 0) -> np.ndarray:
    """Out-of-order sensor readings: mostly increasing with late arrivals."""
    rng = rng_from(seed)
    base = np.arange(n, dtype=np.int64)
    jitter = rng.integers(-5000, 5000, size=n)
    return base * 10 + jitter


def timed(label, fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    dt = time.perf_counter() - t0
    print(f"  {label:<28} {dt:8.3f}s")
    return out


def main() -> None:
    n = 300_000
    data = telemetry(n)
    disorder = np.count_nonzero(data[:-1] > data[1:])
    print(f"telemetry stream: {n} readings, {disorder} inversions\n")

    print("sorting (this host):")
    a = timed("parallel_merge_sort(p=4)", parallel_merge_sort, data, 4,
              backend="threads")
    b = timed("cache_efficient_sort(C=64k)", cache_efficient_sort, data, 4,
              65_536, backend="threads")
    c = timed("bitonic_sort (network)", bitonic_sort, data[: 1 << 15])
    d = timed("np.sort (C reference)", np.sort, data, kind="mergesort")

    assert np.array_equal(a, d) and np.array_equal(b, d)
    assert np.array_equal(c, np.sort(data[: 1 << 15]))
    print("\nall sorters agree with the reference.")

    # What would the merge rounds cost on the paper's machine?
    model = TimingModel(dell_t610())
    print("\nmodeled final merge round (two sorted halves of the stream)")
    print("on the paper's 2x6-core Xeon X5670:")
    print(f"  {'p':>3} {'time (ms)':>10} {'speedup':>8} {'bound':>8}")
    t1 = model.merge_timings(n // 2, n // 2, 1).total_s
    for p in (1, 2, 4, 6, 12):
        t = model.merge_timings(n // 2, n // 2, p)
        print(f"  {p:>3} {t.total_s * 1e3:>10.3f} {t1 / t.total_s:>8.2f} "
              f"{t.bound:>8}")


if __name__ == "__main__":
    main()
