#!/usr/bin/env python3
"""Scenario: out-of-core merging and key/value pipelines.

Two library extensions built on the paper's machinery:

1. **Streaming merge** (Algorithm 2's cyclic buffer, literally):
   combine two sorted sources that never fit in memory at once, with
   O(L) buffered elements — here, two "files" of sensor readings served
   by chunked generators.
2. **merge_by_key**: align measurement *values* while merging by
   timestamp keys (Thrust-style ``merge_by_key`` on the CPU).

Run:  python examples/streaming_pipeline.py
"""

import numpy as np

from repro.core.keyed import merge_by_key
from repro.core.streaming import streaming_merge
from repro.workloads.generators import rng_from


def chunked_source(total: int, seed: int, chunk: int = 1000):
    """A 'file reader': yields sorted numpy chunks of a huge sorted set."""
    rng = rng_from(seed)
    emitted = 0
    last = 0
    while emitted < total:
        n = min(chunk, total - emitted)
        deltas = rng.integers(0, 5, size=n)
        block = last + np.cumsum(deltas)
        last = int(block[-1])
        emitted += n
        yield block


def main() -> None:
    total = 200_000
    L = 4096
    print(f"streaming-merging two {total}-element sorted sources "
          f"with {L}-element windows (memory ~ {3 * L} elements)\n")

    blocks = 0
    count = 0
    prev_tail = None
    for block in streaming_merge(
        chunked_source(total, 1), chunked_source(total, 2), L=L
    ):
        blocks += 1
        count += len(block)
        assert np.all(block[:-1] <= block[1:])
        if prev_tail is not None:
            assert block[0] >= prev_tail  # blocks concatenate sorted
        prev_tail = block[-1]
    print(f"merged {count} elements in {blocks} blocks of <= {L}; output "
          "verified sorted on the fly")

    # --- merge_by_key: timestamps + payloads --------------------------
    print("\nmerge_by_key: combining two (timestamp, reading) tables")
    t_a = np.array([100, 103, 107, 110])
    v_a = np.array([1.0, 1.1, 1.2, 1.3])
    t_b = np.array([101, 103, 109])
    v_b = np.array([9.0, 9.1, 9.2])
    keys, values = merge_by_key(t_a, t_b, v_a, v_b, p=2)
    for k, v in zip(keys, values):
        src = "A" if v < 5 else "B"
        print(f"  t={k}  reading={v:.1f}  (from {src})")
    print("note t=103 appears twice with A's reading first — the stable")
    print("A-before-B tie rule every merge in this package guarantees.")


if __name__ == "__main__":
    main()
