"""Setup shim: enables legacy editable installs on hosts without the
``wheel`` package (``pip install -e .`` falls back to setup.py develop)."""

from setuptools import setup

setup()
