"""repro — a full reproduction of "Merge Path: Parallel Merging Made
Simple" (Odeh, Green, Mwassi, Shmueli, Birk; IPPS 2012).

Quick start::

    import numpy as np
    from repro import merge, parallel_merge, parallel_merge_sort

    a = np.array([1, 3, 5, 7])
    b = np.array([2, 3, 6, 8])
    merge(a, b)                       # sequential stable merge
    parallel_merge(a, b, p=4)         # Algorithm 1 on 4 workers
    parallel_merge_sort(np.array([5, 2, 9, 1]), p=4)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — merge path partitioning, Algorithms 1 & 2,
  parallel / cache-efficient sorts, k-way extension.
* :mod:`repro.pram` — CREW PRAM simulator (the paper's machine model).
* :mod:`repro.cache` — set-associative cache hierarchy simulator.
* :mod:`repro.machine` — hardware specs and the analytic timing model.
* :mod:`repro.backends` — serial / thread / process / simulated
  executors.
* :mod:`repro.resilience` — fault injection, per-task retry/timeout,
  straggler speculation, graceful backend degradation.
* :mod:`repro.obs` — unified tracing (Chrome-trace export) and metrics
  registry; ``trace=`` / ``metrics=`` on every parallel entry point.
* :mod:`repro.baselines` — related-work algorithms (Section V).
* :mod:`repro.workloads` — seeded generators and adversarial inputs.
* :mod:`repro.analysis` — speedup laws, complexity fits, tables.
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

from ._version import __version__, PAPER
from .errors import (
    ReproError,
    InputError,
    NotSortedError,
    PartitionError,
    SimulationError,
    MemoryConflictError,
    BackendError,
    BackendUnavailableError,
    BatchError,
    TaskFailure,
)
from .types import Partition, Segment, PathPoint, MergeStats, ExperimentResult
from .core import (
    merge,
    parallel_merge,
    segmented_parallel_merge,
    parallel_merge_sort,
    cache_efficient_sort,
    partition_merge_path,
    diagonal_intersection,
    merge_two_pointer,
    merge_galloping,
    merge_vectorized,
    kway_merge,
    kth_of_union,
    argmerge,
    merge_by_key,
    merge_records,
    streaming_merge,
    set_union,
    set_intersection,
    set_difference,
    set_symmetric_difference,
    merge_inplace,
    merge_inplace_parallel,
)
from .verify import verify_merged, verify_partition, verify_sorted
from .backends import get_backend, available_backends
from .obs import (
    Tracer,
    MetricsRegistry,
    LoadBalanceReport,
    load_balance_from_trace,
    write_chrome_trace,
    flame_summary,
)
from .resilience import (
    RetryPolicy,
    ResilientBackend,
    ExecutionTelemetry,
    FaultInjector,
    FaultyBackend,
    DegradingBackend,
    DegradationWarning,
    resolve_backend,
    probe_backend,
)

__all__ = [
    "__version__",
    "PAPER",
    "ReproError",
    "InputError",
    "NotSortedError",
    "PartitionError",
    "SimulationError",
    "MemoryConflictError",
    "BackendError",
    "BackendUnavailableError",
    "BatchError",
    "TaskFailure",
    "Partition",
    "Segment",
    "PathPoint",
    "MergeStats",
    "ExperimentResult",
    "merge",
    "parallel_merge",
    "segmented_parallel_merge",
    "parallel_merge_sort",
    "cache_efficient_sort",
    "partition_merge_path",
    "diagonal_intersection",
    "merge_two_pointer",
    "merge_galloping",
    "merge_vectorized",
    "kway_merge",
    "kth_of_union",
    "argmerge",
    "merge_by_key",
    "merge_records",
    "streaming_merge",
    "set_union",
    "set_intersection",
    "set_difference",
    "set_symmetric_difference",
    "merge_inplace",
    "merge_inplace_parallel",
    "verify_merged",
    "verify_partition",
    "verify_sorted",
    "get_backend",
    "available_backends",
    "Tracer",
    "MetricsRegistry",
    "LoadBalanceReport",
    "load_balance_from_trace",
    "write_chrome_trace",
    "flame_summary",
    "RetryPolicy",
    "ResilientBackend",
    "ExecutionTelemetry",
    "FaultInjector",
    "FaultyBackend",
    "DegradingBackend",
    "DegradationWarning",
    "resolve_backend",
    "probe_backend",
]
