"""Command-line entry point: ``python -m repro SUBCOMMAND ...``.

Subcommands
-----------
run EXP_ID [EXP_ID ...]
    Run experiments and print their tables (``all`` for every one).
    ``--quick`` reduces sizes where an experiment distinguishes scales;
    ``--chart`` renders FIG5 as a text bar chart.
report
    Run everything and emit a Markdown report (``--quick`` supported).
selftest
    Verify every implementation on an input grid.
scorecard
    Evaluate all 14 paper claims as PASS/FAIL.
conformance
    Differential-fuzz every implementation against the oracle
    (``--quick`` | ``--full`` tiers; ``--chaos`` adds fault injection).
api
    Print the public-API index.
trace EXP_ID
    Run a traced workload and write a Chrome-trace JSON (load it at
    ``chrome://tracing`` or https://ui.perfetto.dev).  Also prints a
    flame summary, the per-worker load-balance report, and the metrics
    snapshot.  ``--out trace.json`` chooses the path.
bench
    Run the regression bench suite and write ``BENCH_<date>.json``.
doctor
    One-shot operability verdict: probe the host, replay the canary
    workload through the tuned path, print PASS/WARN/FAIL per SLO
    clause with the offending metric.  ``--json verdict.json`` writes
    the structured verdict; exit status 1 on any FAIL clause.
tune
    The continuous control loop: run the canary, evaluate the SLO,
    retune the autotuner; ``--watch`` repeats for ``--cycles`` rounds.
serve
    The asyncio front door: newline-delimited JSON over TCP, coalesced
    batches on the shared pools, admission control with load shedding
    and per-request deadlines.  Prints ``serving on HOST:PORT`` once
    bound (``--port 0`` picks an ephemeral port) and runs until
    interrupted.  See ``docs/serving.md``.
extsort
    Out-of-core demo: generate a dataset ``--n`` elements long, sort it
    with the SPM-planned parallel external sort under a ``--memory``
    budget (default 1/16 of ``--n``), verify bit-identity against
    ``np.sort``, and print the I/O report with measured transfers vs
    the Aggarwal–Vitter bound.  ``--report out.json`` persists the
    report; nonzero exit on mismatch or a transfer ratio past
    ``--max-transfer-ratio``.  See ``docs/external.md``.

Unknown flags are an error (exit status 2 via argparse).  For
backwards compatibility, bare experiment ids still work — ``python -m
repro FIG5 --quick`` is rewritten to ``run FIG5 --quick`` — and the
legacy flag-before-subcommand order (``--quick report``) is accepted.
"""

from __future__ import annotations

import argparse
import json
import sys

from .experiments.registry import EXPERIMENTS, run_experiment
from .types import ExperimentResult

#: Flags the pre-argparse era accepted anywhere on the line.
_LEGACY_FLAGS = ("--quick", "--full", "--chart", "--chaos")

_SUBCOMMANDS = (
    "run", "report", "selftest", "scorecard", "conformance", "api",
    "trace", "bench", "doctor", "tune", "serve", "extsort",
)


def _fig5_chart(result: ExperimentResult) -> str:
    from .analysis.figures import grouped_bar_chart

    groups: dict[str, dict[str, float]] = {}
    for row in result.rows:
        group = f"p={row['p']}"
        groups.setdefault(group, {})[f"{row['size_Melem']}M"] = float(
            row["model_speedup"]  # type: ignore[arg-type]
        )
    return grouped_bar_chart(groups, width=48)


def _print_listing() -> None:
    print("usage: python -m repro SUBCOMMAND ... "
          "(run | report | selftest | scorecard | conformance | api | "
          "trace | bench | doctor | tune | serve | extsort)\n")
    print("available experiments (python -m repro run EXP_ID ...):")
    for exp_id, (_fn, desc) in EXPERIMENTS.items():
        print(f"  {exp_id:<8} {desc}")
    print("\n  report       run everything and emit a Markdown report")
    print("  selftest     verify every implementation on an input grid")
    print("  scorecard    evaluate all 14 paper claims as PASS/FAIL")
    print("  conformance  differential-fuzz every implementation against")
    print("               the oracle (--quick | --full tiers; --chaos adds")
    print("               fault injection through the resilience layer)")
    print("  api          print the public-API index")
    print("  trace        capture a Chrome-trace of a workload "
          "(--out trace.json)")
    print("  bench        emit a BENCH_<date>.json regression snapshot")
    print("  doctor       one-shot SLO verdict for this host "
          "(--quick, --json out.json)")
    print("  tune         obs→autotune control loop "
          "(--watch --cycles N --interval S)")
    print("  serve        NDJSON-over-TCP front door "
          "(--host --port; see docs/serving.md)")
    print("  extsort      out-of-core SPM-planned parallel external sort "
          "demo (--n --memory --report out.json; see docs/external.md)")


def _normalize(argv: list[str]) -> list[str]:
    """Rewrite legacy invocations into subcommand form.

    * flags before the subcommand move after it (``--quick report`` ->
      ``report --quick``);
    * a bare experiment id (or ``all``) gets ``run`` prefixed
      (``FIG5 --quick`` -> ``run FIG5 --quick``).
    """
    flags = [a for a in argv if a in _LEGACY_FLAGS]
    rest = [a for a in argv if a not in _LEGACY_FLAGS]
    if not rest:
        return []
    head = rest[0].lower()
    if head in _SUBCOMMANDS:
        return [head] + rest[1:] + flags
    return ["run"] + rest + flags


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Merge Path reproduction: experiments, verification, "
                    "observability.",
    )
    sub = parser.add_subparsers(dest="command")

    p_run = sub.add_parser("run", help="run experiments and print tables")
    p_run.add_argument("ids", nargs="*", metavar="EXP_ID",
                       help="experiment ids, or 'all'")
    p_run.add_argument("--quick", action="store_true",
                       help="reduced sizes where supported (FIG5)")
    p_run.add_argument("--full", action="store_true",
                       help=argparse.SUPPRESS)
    p_run.add_argument("--chart", action="store_true",
                       help="render FIG5 as a text bar chart")

    p_report = sub.add_parser("report", help="emit the Markdown report")
    p_report.add_argument("--quick", action="store_true")
    p_report.add_argument("--full", action="store_true",
                          help=argparse.SUPPRESS)

    sub.add_parser("selftest", help="verify every implementation")
    sub.add_parser("scorecard", help="evaluate the paper-claim scorecard")
    sub.add_parser("api", help="print the public-API index")

    p_conf = sub.add_parser("conformance",
                            help="differential-fuzz against the oracle")
    p_conf.add_argument("--quick", action="store_true")
    p_conf.add_argument("--full", action="store_true")
    p_conf.add_argument("--chaos", action="store_true",
                        help="add fault injection via the resilience layer")

    p_trace = sub.add_parser(
        "trace", help="capture a Chrome-trace JSON of a traced workload")
    p_trace.add_argument("exp_id", metavar="EXP_ID",
                         help="traceable workload id (fig5, spm, sort, "
                              "cachesort, lb)")
    p_trace.add_argument("--out", default="trace.json",
                         help="output path (default: trace.json)")
    p_trace.add_argument("--quick", action="store_true",
                         help="smaller inputs, fewer thread counts")
    p_trace.add_argument("--full", action="store_true",
                         help=argparse.SUPPRESS)
    p_trace.add_argument("--seed", type=int, default=7)

    p_bench = sub.add_parser(
        "bench", help="run the regression bench suite, write BENCH JSON")
    p_bench.add_argument("--quick", action="store_true")
    p_bench.add_argument("--full", action="store_true",
                         help=argparse.SUPPRESS)
    p_bench.add_argument("--out", default=None,
                         help="output path (default: BENCH_<date>.json)")
    p_bench.add_argument("--seed", type=int, default=7)
    p_bench.add_argument("--compare", default=None, metavar="BASELINE.json",
                         help="after running, diff ns/elem against this "
                         "baseline; nonzero exit past --max-regress")
    p_bench.add_argument("--warn-regress", type=float, default=0.25)
    p_bench.add_argument("--max-regress", type=float, default=None)

    p_doc = sub.add_parser(
        "doctor", help="one-shot SLO verdict: probe host, replay canary")
    p_doc.add_argument("--quick", action="store_true",
                       help="smaller canary, skip the process-backend probe")
    p_doc.add_argument("--full", action="store_true",
                       help=argparse.SUPPRESS)
    p_doc.add_argument("--seed", type=int, default=7)
    p_doc.add_argument("--slo", default=None, metavar="SLO.json",
                       help="JSON file overriding the default SLO")
    p_doc.add_argument("--json", default=None, metavar="OUT.json",
                       dest="json_out",
                       help="also write the structured verdict here")
    p_doc.add_argument("--metrics-from", default=None, dest="metrics_from",
                       metavar="SNAPSHOT.json",
                       help="judge a persisted metrics window (e.g. a live "
                            "server's snapshot) instead of replaying the "
                            "canary")

    p_tune = sub.add_parser(
        "tune", help="obs→autotune→SLO control loop over the canary")
    p_tune.add_argument("--watch", action="store_true",
                        help="repeat for --cycles rounds instead of one")
    p_tune.add_argument("--cycles", type=int, default=5)
    p_tune.add_argument("--interval", type=float, default=1.0,
                        metavar="SECONDS")
    p_tune.add_argument("--quick", action="store_true",
                        help="smaller canary per cycle")
    p_tune.add_argument("--full", action="store_true",
                        help=argparse.SUPPRESS)
    p_tune.add_argument("--seed", type=int, default=7)
    p_tune.add_argument("--slo", default=None, metavar="SLO.json")

    p_srv = sub.add_parser(
        "serve", help="NDJSON-over-TCP merge service (see docs/serving.md)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7207,
                       help="0 picks an ephemeral port (printed once bound)")
    p_srv.add_argument("--p", type=int, default=None,
                       help="workers for the above-cutover parallel path")
    p_srv.add_argument("--backend", default="threads",
                       help="shared-pool level of the degradation chain")
    p_srv.add_argument("--capacity", type=int, default=512,
                       help="admission budget; past it requests are shed")
    p_srv.add_argument("--max-batch", type=int, default=64,
                       dest="max_batch",
                       help="coalescer flushes at this many requests")
    p_srv.add_argument("--window-ms", type=float, default=2.0,
                       dest="window_ms",
                       help="coalescing window duration in ms")
    p_srv.add_argument("--small-cutover", type=int, default=1 << 15,
                       dest="small_cutover",
                       help="elements at or below coalesce; above run the "
                            "parallel path")
    p_srv.add_argument("--deadline-ms", type=float, default=None,
                       dest="deadline_ms",
                       help="default per-request deadline when the client "
                            "sends none")
    p_srv.add_argument("--no-control", action="store_true",
                       help="disable the background SLO controller")
    p_srv.add_argument("--control-interval", type=float, default=5.0,
                       dest="control_interval", metavar="SECONDS")
    p_srv.add_argument("--slo", default=None, metavar="SLO.json",
                       help="JSON file overriding the serve default SLO")
    p_srv.add_argument("--drain-timeout", type=float, default=5.0,
                       dest="drain_timeout", metavar="SECONDS",
                       help="SIGTERM/SIGINT drain budget: in-flight "
                            "requests get this long to finish")
    p_srv.add_argument("--metrics-snapshot", default=None,
                       dest="metrics_snapshot", metavar="FILE.json",
                       help="write a final metrics snapshot here on drain "
                            "(post-mortem: doctor --metrics-from FILE.json)")
    p_srv.add_argument("--reprobe-interval", type=float, default=1.0,
                       dest="reprobe_interval", metavar="SECONDS",
                       help="background circuit-breaker re-probe cadence "
                            "(0 disables; dispatches still re-probe)")

    p_ext = sub.add_parser(
        "extsort", help="out-of-core SPM-planned parallel external sort")
    p_ext.add_argument("--n", type=int, default=1 << 20,
                       help="dataset size in elements (default 2^20)")
    p_ext.add_argument("--memory", type=int, default=None,
                       help="RAM budget M in elements (default n // 16)")
    p_ext.add_argument("--block", type=int, default=None,
                       help="I/O accounting block B in elements "
                            "(default M // 8)")
    p_ext.add_argument("--workers", type=int, default=None,
                       help="parallel workers (default: cpu count)")
    p_ext.add_argument("--backend", default="degrade",
                       help="backend name, or 'degrade' for the resilient "
                            "processes→threads→serial chain (default)")
    p_ext.add_argument("--fan-in", type=int, default=None, dest="fan_in",
                       help="runs merged per pass (default: all at once)")
    p_ext.add_argument("--kernel", default="auto",
                       help="block-merge kernel (default: autotuned)")
    p_ext.add_argument("--seed", type=int, default=7)
    p_ext.add_argument("--directory", default=None,
                       help="spill directory (default: a temporary one)")
    p_ext.add_argument("--report", default=None, metavar="OUT.json",
                       dest="report_out",
                       help="write the JSON I/O report here")
    p_ext.add_argument("--no-verify", action="store_false", dest="verify",
                       help="skip the bit-identity check against np.sort")
    p_ext.add_argument("--max-transfer-ratio", type=float, default=None,
                       dest="max_transfer_ratio",
                       help="fail (exit 1) if measured transfers exceed "
                            "this multiple of the Aggarwal-Vitter bound")

    return parser


def _cmd_run(ns: argparse.Namespace) -> int:
    if not ns.ids:
        _print_listing()
        return 0
    ids = list(EXPERIMENTS) if ns.ids == ["all"] else [a.upper() for a in ns.ids]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiment id(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"known ids: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in ids:
        kwargs: dict[str, object] = {}
        if ns.quick and exp_id == "FIG5":
            kwargs["full"] = False
        result = run_experiment(exp_id, **kwargs)
        from .analysis.tables import render_result

        print(render_result(result))
        if ns.chart and exp_id == "FIG5":
            print()
            print("Figure 5 (speedup bars, grouped by thread count):")
            print(_fig5_chart(result))
        print()
    return 0


def _cmd_trace(ns: argparse.Namespace) -> int:
    from .errors import InputError
    from .obs.capture import trace_workload
    from .obs.export import flame_summary, write_chrome_trace
    from .obs.balance import load_balance_from_trace

    try:
        capture = trace_workload(ns.exp_id, quick=ns.quick, seed=ns.seed)
    except InputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_chrome_trace(capture.tracer, ns.out)
    for note in capture.notes:
        print(f"# {note}")
    print(f"wrote Chrome trace to {ns.out} "
          "(load at chrome://tracing or https://ui.perfetto.dev)\n")
    print(flame_summary(capture.tracer))
    print()
    print(load_balance_from_trace(capture.tracer).describe())
    print()
    print("metrics snapshot:")
    print(json.dumps(capture.metrics.snapshot(), indent=2))
    return 0


def _cmd_bench(ns: argparse.Namespace) -> int:
    from .obs.bench import compare_bench, format_comparison, write_bench_file

    path = write_bench_file(ns.out, quick=ns.quick, seed=ns.seed)
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    print(f"wrote {len(doc['results'])} bench rows to {path}")
    if ns.compare is None:
        return 0
    with open(ns.compare, encoding="utf-8") as fh:
        baseline = json.load(fh)
    fail_frac = (
        ns.max_regress if ns.max_regress is not None else ns.warn_regress
    )
    cmp = compare_bench(
        baseline, doc, warn_frac=ns.warn_regress, fail_frac=fail_frac
    )
    print(f"comparing {path} against {ns.compare}")
    print(format_comparison(cmp))
    if cmp["failed"]:
        print(
            f"FAIL: at least one op regressed more than "
            f"{fail_frac * 100:.0f}% vs {ns.compare}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_doctor(ns: argparse.Namespace) -> int:
    from .control import SLO, render_doctor, run_doctor, write_doctor_json

    slo = SLO.from_file(ns.slo) if ns.slo else None
    doc = run_doctor(slo, quick=ns.quick, seed=ns.seed,
                     metrics_from=ns.metrics_from)
    print(render_doctor(doc))
    if ns.json_out:
        write_doctor_json(doc, ns.json_out)
        print(f"\nwrote structured verdict to {ns.json_out}")
    return 0 if doc.ok else 1


def _cmd_tune(ns: argparse.Namespace) -> int:
    from .control import SLO, Controller, DEFAULT_SLO
    from .obs.metrics import MetricsRegistry
    from .workloads.canary import run_canary

    slo = SLO.from_file(ns.slo) if ns.slo else DEFAULT_SLO
    registry = MetricsRegistry()
    cycles = ns.cycles if ns.watch else 1
    status = "PASS"
    with Controller(slo, registry) as ctl:
        for i, decision in enumerate(ctl.watch(
            lambda reg: run_canary(reg, quick=ns.quick, seed=ns.seed),
            cycles=cycles,
            interval_s=ns.interval if ns.watch else 0.0,
        )):
            print(f"-- cycle {i + 1}/{cycles} --")
            print(decision.describe())
            status = decision.report.status
    print(f"\nfinal status: {status} "
          f"(steps={int(registry.value('control.steps'))} "
          f"retunes={int(registry.value('control.retunes'))})")
    return 0 if status != "FAIL" else 1


def _cmd_extsort(ns: argparse.Namespace) -> int:
    import os
    import tempfile

    import numpy as np

    from .errors import InputError
    from .external import external_sort_file
    from .obs.metrics import MetricsRegistry

    n = ns.n
    if n < 0:
        print("error: --n must be >= 0", file=sys.stderr)
        return 2
    memory = ns.memory if ns.memory is not None else max(1, n // 16)

    with tempfile.TemporaryDirectory() as tmp:
        workdir = ns.directory or tmp
        if not os.path.isdir(workdir):
            print(f"error: directory {workdir!r} does not exist",
                  file=sys.stderr)
            return 2
        in_path = os.path.join(workdir, "extsort-input.npy")
        out_path = os.path.join(workdir, "extsort-sorted.npy")
        # Generate the dataset straight into a memmap, one memory-budget
        # chunk at a time — the driver never holds more than M elements.
        rng = np.random.default_rng(ns.seed)
        data = np.lib.format.open_memmap(
            in_path, mode="w+", dtype=np.int64, shape=(n,)
        )
        for lo in range(0, n, memory):
            hi = min(n, lo + memory)
            data[lo:hi] = rng.integers(
                np.iinfo(np.int64).min // 2, np.iinfo(np.int64).max // 2,
                size=hi - lo, dtype=np.int64,
            )
        data.flush()
        del data

        if ns.backend == "degrade":
            from .resilience import DegradingBackend

            backend = DegradingBackend(
                ("processes", "threads", "serial"),
                max_workers=ns.workers,
            )
        else:
            backend = ns.backend
        registry = MetricsRegistry()
        try:
            final, report = external_sort_file(
                in_path,
                memory_elements=memory,
                directory=workdir,
                out_path=out_path,
                fan_in=ns.fan_in,
                block_elements=ns.block,
                backend=backend,
                workers=ns.workers,
                kernel=ns.kernel,
                metrics=registry,
            )
        except InputError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        finally:
            if ns.backend == "degrade":
                backend.close()

        doc = dict(report.to_dict())
        doc["budget_multiple"] = round(n / memory, 2) if memory else None
        status = 0
        if ns.verify:
            expected = np.sort(np.load(in_path, mmap_mode="r"), kind="stable")
            got = np.load(final.path, mmap_mode="r")
            ok = bool(
                len(got) == n and np.array_equal(expected, np.asarray(got))
            )
            doc["verified"] = ok
            if not ok:
                print("FAIL: output does not match np.sort", file=sys.stderr)
                status = 1
        if (
            ns.max_transfer_ratio is not None
            and report.transfer_ratio is not None
            and report.transfer_ratio > ns.max_transfer_ratio
        ):
            print(
                f"FAIL: transfer ratio {report.transfer_ratio:.2f} exceeds "
                f"--max-transfer-ratio {ns.max_transfer_ratio:g}",
                file=sys.stderr,
            )
            status = 1
        print(json.dumps(doc, indent=2))
        if ns.report_out:
            with open(ns.report_out, "w", encoding="utf-8") as fh:
                json.dump({"schema": "repro-extsort/1", **doc}, fh, indent=2)
                fh.write("\n")
            print(f"wrote I/O report to {ns.report_out}")
        return status


def _cmd_serve(ns: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .control import SLO
    from .serve import SERVE_DEFAULT_SLO, MergeServer, ServeConfig

    config = ServeConfig(
        host=ns.host,
        port=ns.port,
        p=ns.p,
        backend=ns.backend,
        capacity=ns.capacity,
        max_batch=ns.max_batch,
        window_s=ns.window_ms / 1000.0,
        small_cutover=ns.small_cutover,
        default_deadline_ms=ns.deadline_ms,
        control_interval_s=0.0 if ns.no_control else ns.control_interval,
        drain_timeout_s=ns.drain_timeout,
        metrics_snapshot=ns.metrics_snapshot,
        reprobe_interval_s=ns.reprobe_interval,
        slo=SLO.from_file(ns.slo) if ns.slo else SERVE_DEFAULT_SLO,
    )

    async def run() -> int:
        server = MergeServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        signals_seen: list[int] = []

        def on_signal(signum: int) -> None:
            signals_seen.append(signum)
            stopping.set()

        installed: list[int] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, on_signal, signum)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop: Ctrl-C still lands as KeyboardInterrupt
        # The smoke harness and docs rely on this exact line.
        print(f"serving on {server.host}:{server.port}", flush=True)
        serve_task = loop.create_task(server.serve_forever())
        try:
            await stopping.wait()
            name = (signal.Signals(signals_seen[0]).name
                    if signals_seen else "signal")
            print(f"{name}: draining (up to "
                  f"{config.drain_timeout_s:g}s)...", flush=True)
            clean = await server.drain()
            if config.metrics_snapshot:
                print(f"metrics snapshot: {config.metrics_snapshot}",
                      flush=True)
            print("drain "
                  + ("complete" if clean else "timed out with work in flight"),
                  flush=True)
            return 0 if clean else 1
        finally:
            serve_task.cancel()
            try:
                await serve_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            for signum in installed:
                loop.remove_signal_handler(signum)
            await server.stop()

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; server stopped", file=sys.stderr)
        return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    argv = _normalize(argv)
    if not argv:
        _print_listing()
        return 0

    ns = _build_parser().parse_args(argv)

    if ns.command == "run":
        return _cmd_run(ns)
    if ns.command == "report":
        from .analysis.report import generate_report

        print(generate_report(quick=ns.quick))
        return 0
    if ns.command == "selftest":
        from .selftest import run_selftest

        failures = run_selftest()
        return 1 if failures else 0
    if ns.command == "scorecard":
        from .scorecard import evaluate_claims, render_scorecard

        results = evaluate_claims()
        print(render_scorecard(results))
        return 0 if all(ok for _, ok in results) else 1
    if ns.command == "conformance":
        from .conformance import render_report, run_conformance

        report = run_conformance("full" if ns.full else "quick",
                                 chaos=ns.chaos)
        print(render_report(report))
        return 0 if report.ok else 1
    if ns.command == "api":
        from .apidoc import render_api_index

        print(render_api_index())
        return 0
    if ns.command == "trace":
        return _cmd_trace(ns)
    if ns.command == "bench":
        return _cmd_bench(ns)
    if ns.command == "doctor":
        return _cmd_doctor(ns)
    if ns.command == "tune":
        return _cmd_tune(ns)
    if ns.command == "serve":
        return _cmd_serve(ns)
    if ns.command == "extsort":
        return _cmd_extsort(ns)
    _print_listing()  # pragma: no cover - unreachable via _normalize
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
