"""Command-line entry point: ``python -m repro [EXP_ID ...]``.

With no arguments, lists the available experiments.  With ids (or
``all``), runs each and prints its table — the same rendering the
benchmark harness and EXPERIMENTS.md use.

Options
-------
--quick
    Use reduced sizes where an experiment distinguishes scales
    (currently FIG5's ``full`` flag).
--chart
    For FIG5, additionally render the speedup series as a text bar
    chart — the figure itself, not just its table.
"""

from __future__ import annotations

import sys

from .analysis.figures import grouped_bar_chart
from .analysis.tables import render_result
from .experiments.registry import EXPERIMENTS, run_experiment
from .types import ExperimentResult


def _fig5_chart(result: ExperimentResult) -> str:
    groups: dict[str, dict[str, float]] = {}
    for row in result.rows:
        group = f"p={row['p']}"
        groups.setdefault(group, {})[f"{row['size_Melem']}M"] = float(
            row["model_speedup"]  # type: ignore[arg-type]
        )
    return grouped_bar_chart(groups, width=48)


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in args
    full = "--full" in args
    chart = "--chart" in args
    chaos = "--chaos" in args
    args = [a for a in args if a not in ("--quick", "--full", "--chart", "--chaos")]

    if not args:
        print("usage: python -m repro [--quick] [--chart] EXP_ID [EXP_ID ...]"
              " | all | report | selftest | scorecard | conformance | api\n")
        print("available experiments:")
        for exp_id, (_fn, desc) in EXPERIMENTS.items():
            print(f"  {exp_id:<8} {desc}")
        print("\n  report       run everything and emit a Markdown report")
        print("  selftest     verify every implementation on an input grid")
        print("  scorecard    evaluate all 14 paper claims as PASS/FAIL")
        print("  conformance  differential-fuzz every implementation against")
        print("               the oracle (--quick | --full tiers; --chaos adds")
        print("               fault injection through the resilience layer)")
        print("  api          print the public-API index")
        return 0

    if args == ["conformance"]:
        from .conformance import render_report, run_conformance

        report = run_conformance("full" if full else "quick", chaos=chaos)
        print(render_report(report))
        return 0 if report.ok else 1

    if args == ["report"]:
        from .analysis.report import generate_report

        print(generate_report(quick=quick))
        return 0

    if args == ["selftest"]:
        from .selftest import run_selftest

        failures = run_selftest()
        return 1 if failures else 0

    if args == ["api"]:
        from .apidoc import render_api_index

        print(render_api_index())
        return 0

    if args == ["scorecard"]:
        from .scorecard import evaluate_claims, render_scorecard

        results = evaluate_claims()
        print(render_scorecard(results))
        return 0 if all(ok for _, ok in results) else 1

    ids = list(EXPERIMENTS) if args == ["all"] else [a.upper() for a in args]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiment id(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"known ids: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in ids:
        kwargs: dict[str, object] = {}
        if quick and exp_id == "FIG5":
            kwargs["full"] = False
        result = run_experiment(exp_id, **kwargs)
        print(render_result(result))
        if chart and exp_id == "FIG5":
            print()
            print("Figure 5 (speedup bars, grouped by thread count):")
            print(_fig5_chart(result))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
