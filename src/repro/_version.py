"""Version information for the merge-path reproduction package."""

__version__ = "1.0.0"

#: The paper this package reproduces.
PAPER = (
    "Saher Odeh, Oded Green, Zahi Mwassi, Oz Shmueli, Yitzhak Birk. "
    '"Merge Path - Parallel Merging Made Simple", IPPS 2012.'
)
