"""Analysis utilities: speedup math, complexity fitting, table rendering."""

from .speedup import speedup, efficiency, amdahl_speedup, gustafson_speedup
from .complexity import fit_merge_time_model, ComplexityFit
from .tables import render_table, render_result
from .figures import bar_chart, grouped_bar_chart
from .calibration import Observation, CalibrationResult, fit_timing_model
from .report import generate_report, result_to_markdown

__all__ = [
    "speedup",
    "efficiency",
    "amdahl_speedup",
    "gustafson_speedup",
    "fit_merge_time_model",
    "ComplexityFit",
    "render_table",
    "render_result",
    "bar_chart",
    "grouped_bar_chart",
    "Observation",
    "CalibrationResult",
    "fit_timing_model",
    "generate_report",
    "result_to_markdown",
]
