"""Calibrating the timing model from measured speedups.

The Figure 5 model has three free-ish constants: sustained DRAM
bandwidth, the bandwidth derate per working-set doubling, and CPU
cycles per counted operation.  Given *measured* speedups from a real
machine (size, p, speedup triples), :func:`fit_timing_model` recovers
the constants by minimizing squared log-error with Nelder–Mead — the
tool a user needs to port the FIG5 reproduction to their own hardware,
and the honest way to show how many knobs the model has (three) versus
how many observations constrain them (dozens).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from ..errors import InputError
from ..machine.specs import MachineSpec
from ..machine.timing import TimingModel

__all__ = ["Observation", "CalibrationResult", "fit_timing_model"]


@dataclass(frozen=True, slots=True)
class Observation:
    """One measured point: per-array length, thread count, speedup."""

    a_len: int
    b_len: int
    p: int
    speedup: float


@dataclass(frozen=True, slots=True)
class CalibrationResult:
    """Fitted constants and goodness of fit."""

    dram_bw_bytes_s: float
    bw_droop_per_doubling: float
    cycles_per_op: float
    rms_log_error: float
    model: TimingModel

    def predicted(self, obs: Observation) -> float:
        """The fitted model's speedup for one observation's config."""
        return self.model.speedup(obs.a_len, obs.b_len, obs.p)


def fit_timing_model(
    observations: Sequence[Observation],
    spec: MachineSpec,
    *,
    initial_dram_bw: float | None = None,
    initial_droop: float | None = None,
    initial_cycles_per_op: float = 2.5,
) -> CalibrationResult:
    """Fit (DRAM bandwidth, droop, cycles/op) to measured speedups.

    Parameters
    ----------
    observations:
        At least 4 measured points; include some memory-bound configs
        (large arrays at high p) or the bandwidth constants are
        unidentifiable and will simply return their initial values.
    spec:
        Machine description providing the fixed topology/cache numbers.
    initial_*:
        Optimizer starting point (defaults: the spec's own values).

    Returns
    -------
    CalibrationResult
        Fitted constants, RMS log-error, and a ready
        :class:`~repro.machine.timing.TimingModel`.
    """
    if len(observations) < 4:
        raise InputError(f"need >= 4 observations, got {len(observations)}")
    for obs in observations:
        if obs.speedup <= 0 or obs.p < 1:
            raise InputError(f"invalid observation {obs}")

    x0 = np.array([
        math.log(initial_dram_bw or spec.dram_bw_bytes_s),
        (initial_droop if initial_droop is not None
         else spec.bw_droop_per_doubling),
        math.log(initial_cycles_per_op),
    ])

    def build(params: np.ndarray) -> TimingModel:
        log_bw, droop, log_cpo = params
        trial_spec = dataclasses.replace(
            spec,
            dram_bw_bytes_s=math.exp(log_bw),
            bw_droop_per_doubling=max(0.0, droop),
        )
        return TimingModel(trial_spec, cycles_per_op=math.exp(log_cpo))

    def loss(params: np.ndarray) -> float:
        model = build(params)
        err = 0.0
        for obs in observations:
            pred = model.speedup(obs.a_len, obs.b_len, obs.p)
            err += (math.log(pred) - math.log(obs.speedup)) ** 2
        return err

    result = optimize.minimize(
        loss, x0, method="Nelder-Mead",
        options={"maxiter": 2000, "xatol": 1e-6, "fatol": 1e-10},
    )
    model = build(result.x)
    rms = math.sqrt(loss(result.x) / len(observations))
    return CalibrationResult(
        dram_bw_bytes_s=math.exp(result.x[0]),
        bw_droop_per_doubling=max(0.0, float(result.x[1])),
        cycles_per_op=math.exp(result.x[2]),
        rms_log_error=rms,
        model=model,
    )
