"""Fitting measured PRAM times to the paper's complexity model.

Section III: Algorithm 1's time is ``O(N/p + log N)``.  The COMPLEX
experiment measures lockstep-PRAM cycle counts over a grid of (N, p)
and fits ``T ≈ c1·N/p + c2·log2(N) + c0`` by least squares; a good fit
(R² near 1, small relative residuals) is the reproduction of the
complexity claim.  scipy's ``lstsq`` does the algebra.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg

from ..errors import InputError

__all__ = ["ComplexityFit", "fit_merge_time_model"]


@dataclass(frozen=True, slots=True)
class ComplexityFit:
    """Least-squares fit of ``T = c1·(N/p) + c2·log2 N + c0``."""

    c_linear: float      # coefficient of N/p
    c_log: float         # coefficient of log2(N)
    c_const: float
    r_squared: float
    max_rel_residual: float

    def predict(self, n: int, p: int) -> float:
        """Model prediction for one configuration."""
        return (
            self.c_linear * (n / p)
            + self.c_log * np.log2(max(n, 2))
            + self.c_const
        )


def fit_merge_time_model(
    ns: list[int], ps: list[int], times: list[float]
) -> ComplexityFit:
    """Fit the Section III time model to measured (N, p, T) triples.

    Parameters are parallel lists (one entry per measurement).  Raises
    :class:`~repro.errors.InputError` on shape mismatch or fewer than
    four points (three coefficients need slack to be meaningful).
    """
    if not (len(ns) == len(ps) == len(times)):
        raise InputError("ns, ps, times must have equal lengths")
    if len(ns) < 4:
        raise InputError(f"need at least 4 measurements, got {len(ns)}")
    n_arr = np.asarray(ns, dtype=float)
    p_arr = np.asarray(ps, dtype=float)
    t_arr = np.asarray(times, dtype=float)
    if np.any(n_arr < 1) or np.any(p_arr < 1) or np.any(t_arr < 0):
        raise InputError("N, p must be >= 1 and times >= 0")

    design = np.column_stack(
        [n_arr / p_arr, np.log2(np.maximum(n_arr, 2)), np.ones_like(n_arr)]
    )
    coef, _res, _rank, _sv = linalg.lstsq(design, t_arr)
    pred = design @ coef
    ss_res = float(np.sum((t_arr - pred) ** 2))
    ss_tot = float(np.sum((t_arr - t_arr.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.abs(t_arr - pred) / np.where(t_arr > 0, t_arr, 1.0)
    return ComplexityFit(
        c_linear=float(coef[0]),
        c_log=float(coef[1]),
        c_const=float(coef[2]),
        r_squared=r2,
        max_rel_residual=float(rel.max()),
    )
