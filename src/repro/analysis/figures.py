"""Terminal figure rendering (no plotting dependencies).

The paper's Figure 5 is a grouped bar chart; :func:`bar_chart` renders
the same thing in plain text so ``python -m repro FIG5 --chart`` can
show the *figure*, not just the table, anywhere a terminal exists.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import InputError

__all__ = ["bar_chart", "grouped_bar_chart"]

_BLOCK = "█"
_PARTIAL = " ▏▎▍▌▋▊▉"


def _bar(value: float, scale: float, width: int) -> str:
    """Unicode bar of ``value`` against ``scale`` in ``width`` cells."""
    if scale <= 0:
        return ""
    cells = value / scale * width
    full = int(cells)
    frac = int((cells - full) * 8)
    bar = _BLOCK * full
    if frac:
        bar += _PARTIAL[frac]
    return bar


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise InputError("labels and values must have equal lengths")
    if not labels:
        return "(empty chart)"
    scale = max(values)
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        lines.append(
            f"{str(label):>{label_w}} | "
            f"{_bar(value, scale, width):<{width}} "
            f"{value_format.format(value)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    *,
    width: int = 50,
    value_format: str = "{:.2f}",
) -> str:
    """Grouped horizontal bars: ``{group: {series: value}}``.

    Renders each group as a block of bars sharing one global scale —
    the textual equivalent of Figure 5's thread-count groups of
    size-colored bars.
    """
    if not groups:
        return "(empty chart)"
    all_values = [v for series in groups.values() for v in series.values()]
    scale = max(all_values) if all_values else 1.0
    series_w = max(
        (len(str(s)) for series in groups.values() for s in series), default=1
    )
    lines = []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            lines.append(
                f"  {str(name):>{series_w}} | "
                f"{_bar(value, scale, width):<{width}} "
                f"{value_format.format(value)}"
            )
    return "\n".join(lines)
