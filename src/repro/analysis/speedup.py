"""Speedup and efficiency arithmetic, including the classical laws.

Amdahl [14] and Gustafson [15] are cited by the paper; the FIG5
experiment reports the Amdahl bound implied by the measured serial
fraction alongside the model speedups so the reader can see Merge
Path's serial part (the log-depth partition) is negligible.
"""

from __future__ import annotations

from ..errors import InputError

__all__ = ["speedup", "efficiency", "amdahl_speedup", "gustafson_speedup",
           "serial_fraction_from_speedup"]


def speedup(t1: float, tp: float) -> float:
    """Classical speedup ``T(1) / T(p)``."""
    if t1 <= 0 or tp <= 0:
        raise InputError(f"times must be positive, got t1={t1}, tp={tp}")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """Parallel efficiency ``speedup / p`` ∈ (0, 1] for real programs."""
    if p < 1:
        raise InputError(f"p must be >= 1, got {p}")
    return speedup(t1, tp) / p


def amdahl_speedup(serial_fraction: float, p: int) -> float:
    """Amdahl's law: ``1 / (s + (1 - s)/p)``."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise InputError(f"serial fraction must be in [0,1], got {serial_fraction}")
    if p < 1:
        raise InputError(f"p must be >= 1, got {p}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p)


def gustafson_speedup(serial_fraction: float, p: int) -> float:
    """Gustafson's law (scaled speedup): ``p - s·(p - 1)``."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise InputError(f"serial fraction must be in [0,1], got {serial_fraction}")
    if p < 1:
        raise InputError(f"p must be >= 1, got {p}")
    return p - serial_fraction * (p - 1)


def serial_fraction_from_speedup(measured_speedup: float, p: int) -> float:
    """Invert Amdahl: the serial fraction explaining a measured speedup.

    Returns 0.0 when the measurement meets or exceeds ``p`` (super-
    linear measurements happen with cache effects; clamp rather than
    report a negative fraction).
    """
    if p < 2:
        raise InputError(f"need p >= 2 to infer a serial fraction, got {p}")
    if measured_speedup <= 0:
        raise InputError(f"speedup must be positive, got {measured_speedup}")
    if measured_speedup >= p:
        return 0.0
    # S = 1 / (s + (1-s)/p)  =>  s = (p/S - 1) / (p - 1)
    return (p / measured_speedup - 1.0) / (p - 1.0)
