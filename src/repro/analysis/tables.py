"""Plain-text table rendering for experiment results.

The benchmarks and the ``python -m repro`` CLI print every regenerated
table/figure through these helpers so output formatting is uniform and
file-diffable (EXPERIMENTS.md embeds the same rendering).
"""

from __future__ import annotations

from typing import Sequence

from ..types import ExperimentResult

__all__ = ["render_table", "render_result", "format_value"]


def format_value(v: object) -> str:
    """Compact human formatting: floats to 3 significant decimals,
    large ints with thousands separators."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 1:
            return f"{v:.3f}".rstrip("0").rstrip(".")
        return f"{v:.4g}"
    if isinstance(v, int) and abs(v) >= 10000:
        return f"{v:,}"
    return str(v)


def render_table(columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated table."""
    header = [str(c) for c in columns]
    body = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for r in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_result(result: ExperimentResult) -> str:
    """Render an :class:`~repro.types.ExperimentResult` with its notes."""
    rows = [[row.get(c, "") for c in result.columns] for row in result.rows]
    parts = [
        f"== {result.exp_id}: {result.title} ==",
        render_table(result.columns, rows),
    ]
    for note in result.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)
