"""Public-API index generation: ``python -m repro api``.

Walks ``repro.__all__`` (plus the subpackage entry points) and prints
each public name with the first line of its docstring — an index that
can never drift from the code because it *is* the code.
"""

from __future__ import annotations

import inspect

__all__ = ["api_index", "render_api_index"]

#: Subpackages whose own __all__ is included in the index.
SUBPACKAGES = (
    "repro.core",
    "repro.backends",
    "repro.pram",
    "repro.cache",
    "repro.machine",
    "repro.baselines",
    "repro.workloads",
    "repro.analysis",
    "repro.gpu",
    "repro.external",
    "repro.experiments",
)


def _summary(obj: object) -> str:
    # typing aliases (e.g. repro.pram.Program) carry no docstring of
    # their own; classify rather than flag them
    if getattr(type(obj), "__module__", "").startswith("typing"):
        return "(type alias)"
    doc = inspect.getdoc(obj) or ""
    first = doc.split("\n", 1)[0].strip()
    return first or "(undocumented)"


def api_index() -> dict[str, list[tuple[str, str]]]:
    """``{module: [(name, one-line summary), ...]}`` for the public API."""
    import importlib

    out: dict[str, list[tuple[str, str]]] = {}
    top = importlib.import_module("repro")
    out["repro"] = [
        (name, _summary(getattr(top, name)))
        for name in top.__all__
        if not name.startswith("_") and not isinstance(getattr(top, name), str)
    ]
    for mod_name in SUBPACKAGES:
        mod = importlib.import_module(mod_name)
        names = getattr(mod, "__all__", [])
        out[mod_name] = [
            (name, _summary(getattr(mod, name))) for name in names
        ]
    return out


def render_api_index() -> str:
    """The index as aligned plain text."""
    lines: list[str] = []
    for mod, entries in api_index().items():
        lines.append(f"{mod}")
        lines.append("=" * len(mod))
        width = max((len(n) for n, _ in entries), default=0)
        for name, summary in entries:
            lines.append(f"  {name:<{width}}  {summary}")
        lines.append("")
    return "\n".join(lines)
