"""Execution backends: how per-segment work actually runs.

The paper's Algorithm 1 is backend-agnostic — it only requires that each
processor can (a) read the shared inputs, (b) write a disjoint slice of
the shared output, and (c) hit a barrier at the end.  This package
provides four interchangeable realizations:

``SerialBackend``
    Runs segments one after the other in the calling thread.  The
    baseline for the single-thread overhead experiment (REM6PCT).
``ThreadBackend``
    ``concurrent.futures.ThreadPoolExecutor``.  True shared memory, no
    copies; numpy kernels release the GIL during their C loops so large
    vectorized segments overlap.
``ProcessBackend``
    ``multiprocessing`` workers over ``multiprocessing.shared_memory``
    blocks, sidestepping the GIL entirely.  This is the closest CPython
    analogue of the paper's OpenMP threads.
``SimulatedBackend``
    Executes segments serially while *accounting* them as parallel: it
    records per-task operation counts and reports PRAM time (max over
    processors) and work (sum).  Used to regenerate Figure 5 at paper
    scale on any host.

Use :func:`get_backend` to resolve a backend by name.
"""

from .base import Backend, TaskBatch, TaskResult, get_backend, available_backends
from .serial import SerialBackend
from .threads import ThreadBackend
from .processes import ProcessBackend
from .simulated import SimulatedBackend
from .mpi import MPIBackend, mpi_available

__all__ = [
    "Backend",
    "TaskBatch",
    "TaskResult",
    "get_backend",
    "available_backends",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SimulatedBackend",
    "MPIBackend",
    "mpi_available",
]
