"""Backend protocol and registry.

A backend executes a batch of independent tasks — one per merge-path
segment — and reports per-task timing.  Tasks never need to communicate
(the paper's Remark after Algorithm 1: cores write disjoint addresses),
so the interface is a bare fork/join: :meth:`Backend.run_tasks` blocks
until every task finished, which is the barrier at the end of
Algorithm 1.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import BackendError, BackendUnavailableError, InputError, TaskFailure

__all__ = [
    "Backend",
    "TaskBatch",
    "TaskResult",
    "get_backend",
    "available_backends",
    "register_backend",
]


@dataclass(slots=True)
class TaskBatch:
    """A labelled batch of independent tasks for one fork/join dispatch.

    This is the unit of the batched execution engine
    (:mod:`repro.execution`): every entry point gathers *all* the
    segment tasks of one phase — every pair of a sort round, every
    sub-segment of an SPM block — into a single ``TaskBatch`` and
    submits it with one :meth:`Backend.run_batch` call, so the number
    of backend dispatches per call is ``O(log N)`` rather than
    ``O(p · log N)``.

    ``label`` names the phase for the ``exec.batch`` trace span;
    ``meta`` carries free-form attributes (round index, pair count, …)
    recorded on that span.
    """

    tasks: Sequence[Callable[[], Any]]
    label: str = "batch"
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.tasks)


@dataclass(slots=True)
class TaskResult:
    """Outcome of one task executed by a backend.

    ``value`` is whatever the task callable returned; ``elapsed_s`` is
    the task's own wall-clock duration (used for load-balance
    diagnostics, not for the Figure 5 speedup numbers, which come from
    end-to-end timing).
    """

    index: int
    value: Any
    elapsed_s: float


class Backend(abc.ABC):
    """Abstract fork/join executor over independent tasks."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Optional :class:`repro.obs.Tracer`; when set, every task executed
    #: through :meth:`_attempt`/:meth:`_timed` is wrapped in a
    #: ``backend.task`` span recorded on the worker thread that ran it.
    #: ``None`` (the class default) costs nothing on the hot path.
    tracer = None

    #: Number of :meth:`run_batch` dispatches this instance has served.
    #: Entry points snapshot it around a call to publish the
    #: ``exec.dispatches_per_call`` metric; a plain int (class default
    #: 0, shadowed per instance on first dispatch) keeps the hot path
    #: lock-free — concurrent callers may undercount, never block.
    dispatches: int = 0

    @abc.abstractmethod
    def run_tasks(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> list[TaskResult]:
        """Execute every task and block until all complete (the barrier).

        Results are returned in task order regardless of completion
        order.  Contract for failures: the backend attempts **every**
        task of the batch — a task exception never aborts the remaining
        tasks — and then raises a single
        :class:`~repro.errors.BatchError` collecting one
        :class:`~repro.errors.TaskFailure` per failed task (index, kind,
        message, underlying exception).  This gives callers the full
        damage report and, because merge-path tasks are idempotent and
        write disjoint output slices (Theorem 14), lets a supervisor
        such as :class:`repro.resilience.ResilientBackend` re-execute
        exactly the failed indices.
        """

    # Optional hook: backends (and resilience wrappers) that can run the
    # zero-copy shared-memory merge path implement
    # ``merge_partition(a, b, partition) -> ndarray | None``; returning
    # None means "no fast path here, use the generic task route".
    # :func:`repro.core.parallel_merge.merge_partition` probes for it.

    def run_batch(self, batch: TaskBatch) -> list[TaskResult]:
        """Dispatch one :class:`TaskBatch` (the batched-engine entry).

        Semantically identical to ``run_tasks(batch.tasks)`` — one
        fork/join barrier over every task — but additionally counts the
        dispatch on :attr:`dispatches` and, when a tracer is installed,
        encloses the whole barrier in an ``exec.batch`` span carrying
        the batch label, size, and metadata.  Wrappers (resilient /
        fault-injecting backends) inherit this method, so a supervised
        batch is still *one* dispatch from the caller's point of view
        no matter how many per-task retries happen underneath.
        """
        self.dispatches += 1
        tracer = self.tracer
        if tracer is None:
            return self.run_tasks(batch.tasks)
        with tracer.span(
            "exec.batch", label=batch.label, size=len(batch.tasks),
            backend=self.name, **batch.meta,
        ):
            return self.run_tasks(batch.tasks)

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Convenience: apply ``fn`` to each item as one task batch."""
        results = self.run_batch(
            TaskBatch([(lambda it=item: fn(it)) for item in items], label="map")
        )
        return [r.value for r in results]

    def _run_body(self, index: int, task: Callable[[], Any]) -> Any:
        """Execute the task body, under a ``backend.task`` span if traced."""
        tracer = self.tracer
        if tracer is None:
            return task()
        with tracer.span("backend.task", index=index, backend=self.name):
            return task()

    def _timed(self, index: int, task: Callable[[], Any]) -> TaskResult:
        t0 = time.perf_counter()
        try:
            value = self._run_body(index, task)
        except Exception as exc:  # noqa: BLE001 - uniformly wrapped
            raise BackendError(f"task {index} failed: {exc!r}") from exc
        return TaskResult(index=index, value=value, elapsed_s=time.perf_counter() - t0)

    def _attempt(
        self, index: int, task: Callable[[], Any]
    ) -> tuple[TaskResult | None, TaskFailure | None]:
        """Run one task, classifying rather than raising its failure."""
        t0 = time.perf_counter()
        try:
            value = self._run_body(index, task)
        except Exception as exc:  # noqa: BLE001 - collected into BatchError
            return None, TaskFailure(
                index=index, kind="exception", message=repr(exc), error=exc
            )
        return TaskResult(index=index, value=value,
                          elapsed_s=time.perf_counter() - t0), None

    def close(self) -> None:
        """Release pooled resources; default is a no-op."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register a backend factory under ``name`` (idempotent overwrite)."""
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))


def get_backend(name: str, **kwargs: Any) -> Backend:
    """Instantiate a backend by registry name.

    ``kwargs`` are forwarded to the backend constructor (e.g.
    ``max_workers``).
    """
    _ensure_builtin()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise InputError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    try:
        return factory(**kwargs)
    except BackendUnavailableError:
        raise
    except ImportError as exc:
        # A backend whose constructor imports an absent optional
        # dependency surfaces as a structured unavailability, never as a
        # bare ImportError the caller has to pattern-match.
        raise BackendUnavailableError(name, missing=exc.name or str(exc)) from exc


def _ensure_builtin() -> None:
    """Populate the registry lazily to avoid import cycles."""
    if _REGISTRY:
        return
    from .serial import SerialBackend
    from .simulated import SimulatedBackend
    from .threads import ThreadBackend
    from .processes import ProcessBackend

    from .mpi import MPIBackend

    register_backend("serial", SerialBackend)
    register_backend("threads", ThreadBackend)
    register_backend("processes", ProcessBackend)
    register_backend("simulated", SimulatedBackend)
    # constructing the MPI backend without mpi4py raises BackendError
    # with installation guidance; registration itself is always safe.
    register_backend("mpi", MPIBackend)
