"""Optional MPI backend (mpi4py) for distributed-memory hosts.

Merge Path's partition needs no communication beyond the read-only
inputs, which makes it a natural fit for MPI's owner-computes style:
rank 0 broadcasts the arrays (numpy buffers, the fast upper-case mpi4py
path), every rank merges its own merge-path segment locally, and rank 0
gathers the disjoint slices with ``Gatherv`` — a faithful
distributed-memory realization of Algorithm 1.

mpi4py is *not* a dependency of this package (the reference environment
is offline); everything here degrades gracefully:

* :func:`mpi_available` reports whether mpi4py can be imported;
* :class:`MPIBackend` raises a clear :class:`~repro.errors.BackendError`
  at construction when it cannot.

Run under MPI as::

    mpiexec -n 4 python -m mpi4py your_script.py
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..errors import BackendUnavailableError, BatchError
from ..types import Partition
from .base import Backend, TaskResult

__all__ = ["mpi_available", "MPIBackend", "mpi_merge_partition"]


def mpi_available() -> bool:
    """True when mpi4py is importable in this interpreter."""
    try:
        import mpi4py  # noqa: F401
    except ImportError:
        return False
    return True


def _require_mpi():
    try:
        from mpi4py import MPI
    except ImportError as exc:
        raise BackendUnavailableError(
            "mpi",
            missing="mpi4py (not importable in this interpreter)",
            hint="install mpi4py and run under mpiexec, or fall back "
            "along the degradation chain (processes → threads → serial), "
            "e.g. via repro.resilience.resolve_backend('mpi')",
        ) from exc
    return MPI


class MPIBackend(Backend):
    """Fork/join over MPI ranks (rank 0 coordinates).

    :meth:`run_tasks` scatters task indices round-robin over ranks;
    tasks must be importable callables on every rank.  For merging, the
    zero-copy collective path :func:`mpi_merge_partition` is preferred.
    """

    name = "mpi"

    def __init__(self) -> None:
        self._mpi = _require_mpi()
        self.comm = self._mpi.COMM_WORLD

    @property
    def rank(self) -> int:
        return self.comm.Get_rank()

    @property
    def size(self) -> int:
        return self.comm.Get_size()

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        # Every rank executes its round-robin share; rank 0 gathers both
        # the results and the failures so a batch reports all broken
        # task indices, not just the first on the lowest rank.
        mine = [
            (i, task) for i, task in enumerate(tasks) if i % self.size == self.rank
        ]
        local = []
        local_failures = []
        for i, task in mine:
            result, failure = self._attempt(i, task)
            if failure is not None:
                local_failures.append(failure)
            else:
                local.append(result)
        gathered = self.comm.gather(local, root=0)
        gathered_failures = self.comm.gather(local_failures, root=0)
        if self.rank != 0:
            return []
        failures = [f for chunk in gathered_failures for f in chunk]
        if failures:
            raise BatchError(failures, total=len(tasks))
        flat = [r for chunk in gathered for r in chunk]
        flat.sort(key=lambda r: r.index)
        return flat


def mpi_merge_partition(
    a: np.ndarray, b: np.ndarray, partition: Partition
) -> np.ndarray | None:
    """Collective Algorithm 1 over MPI ranks.

    Call on every rank with identical ``partition`` (it is cheap to
    recompute, or broadcast it).  Rank ``r`` merges segment ``r`` (ranks
    beyond the segment count idle).  Returns the merged array on rank 0
    and ``None`` elsewhere.
    """
    MPI = _require_mpi()
    from ..core.sequential import merge_vectorized, result_dtype

    comm = MPI.COMM_WORLD
    rank = comm.Get_rank()
    dtype = result_dtype(a, b)

    if rank < len(partition.segments):
        seg = partition.segments[rank]
        local = merge_vectorized(
            a[seg.a_start : seg.a_end], b[seg.b_start : seg.b_end], check=False
        ).astype(dtype, copy=False)
    else:
        local = np.empty(0, dtype=dtype)

    counts = comm.gather(len(local), root=0)
    if rank == 0:
        out = np.empty(partition.total_length, dtype=dtype)
        displs = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=displs[1:])
        comm.Gatherv(local, [out, counts, displs, MPI._typedict[dtype.char]],
                     root=0)
        return out
    comm.Gatherv(local, None, root=0)
    return None
