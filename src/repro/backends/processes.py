"""Process-pool backend over POSIX shared memory.

CPython's GIL prevents thread-level speedup for interpreter-bound code,
so this backend reproduces the paper's shared-memory threads with
*processes* plus ``multiprocessing.shared_memory``: the two input arrays
and the output array live in named shared-memory blocks; each worker
attaches, merges its merge-path segment with the vectorized kernel and
writes its disjoint output slice in place.  No data is pickled per task
— only segment coordinates travel over the pipe, mirroring the paper's
observation that processors exchange nothing but partition indices.

Two interfaces are provided:

* :meth:`ProcessBackend.run_tasks` — the generic fork/join; tasks must
  be picklable (module-level functions / ``functools.partial``).
* :func:`merge_partition_shared` — the zero-copy fast path used by
  :func:`repro.core.parallel_merge.parallel_merge` when this backend is
  selected.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import BackendError
from ..types import Partition
from ..validation import check_positive
from .base import Backend, TaskResult

__all__ = ["ProcessBackend", "merge_partition_shared"]


def _timed_call(payload: tuple[int, Callable[[], Any]]) -> tuple[int, Any, float]:
    """Worker wrapper for the generic path (runs in the child)."""
    import time

    index, task = payload
    t0 = time.perf_counter()
    value = task()
    return index, value, time.perf_counter() - t0


def _merge_segment_shm(
    args: tuple[str, str, str, str, int, int, int, int, int, int, int, int],
) -> int:
    """Merge one segment entirely inside a worker process.

    Attaches to the three shared-memory blocks by name, views them as
    numpy arrays and merges ``A[a0:a1]`` with ``B[b0:b1]`` into
    ``S[o0:o1]``.  Returns the segment index for bookkeeping.
    """
    # Imported here so the module stays importable on platforms where
    # shared memory is restricted; the backend raises at construction.
    from ..core.sequential import merge_into

    (name_a, name_b, name_out, dtype_str, a_total, b_total,
     a0, a1, b0, b1, o0, o1) = args
    dtype = np.dtype(dtype_str)
    shm_a = shared_memory.SharedMemory(name=name_a)
    shm_b = shared_memory.SharedMemory(name=name_b)
    shm_out = shared_memory.SharedMemory(name=name_out)
    try:
        a = np.ndarray((a_total,), dtype=dtype, buffer=shm_a.buf)
        b = np.ndarray((b_total,), dtype=dtype, buffer=shm_b.buf)
        out = np.ndarray((a_total + b_total,), dtype=dtype, buffer=shm_out.buf)
        merge_into(out[o0:o1], a[a0:a1], b[b0:b1], kernel="vectorized")
    finally:
        # Close (not unlink): the parent owns the blocks' lifetime.
        shm_a.close()
        shm_b.close()
        shm_out.close()
    return o0


class ProcessBackend(Backend):
    """Fork/join over a ``multiprocessing`` pool."""

    name = "processes"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None:
            check_positive(max_workers, "max_workers")
        self._max_workers = max_workers or mp.cpu_count()
        self._pool: mp.pool.Pool | None = None

    def _ensure_pool(self) -> mp.pool.Pool:
        if self._pool is None:
            self._pool = mp.get_context("fork").Pool(self._max_workers)
        return self._pool

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        pool = self._ensure_pool()
        try:
            raw = pool.map(_timed_call, list(enumerate(tasks)))
        except Exception as exc:  # noqa: BLE001 - uniformly wrapped
            raise BackendError(f"process task batch failed: {exc!r}") from exc
        raw.sort(key=lambda r: r[0])
        return [TaskResult(index=i, value=v, elapsed_s=t) for i, v, t in raw]

    def merge_partition(
        self, a: np.ndarray, b: np.ndarray, partition: Partition
    ) -> np.ndarray:
        """Zero-copy parallel merge of a pre-computed partition."""
        return merge_partition_shared(
            a, b, partition, max_workers=self._max_workers, pool=self._ensure_pool()
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


def merge_partition_shared(
    a: np.ndarray,
    b: np.ndarray,
    partition: Partition,
    *,
    max_workers: int | None = None,
    pool: mp.pool.Pool | None = None,
) -> np.ndarray:
    """Merge a partition with worker processes over shared memory.

    Copies ``a`` and ``b`` once into shared-memory blocks (analogous to
    the arrays already residing in RAM on the paper's machine), fans the
    segments out, and copies the shared output back into a regular
    array before releasing the blocks.
    """
    dtype = np.promote_types(a.dtype, b.dtype)
    total = len(a) + len(b)
    itemsize = dtype.itemsize
    own_pool = pool is None

    shm_a = shared_memory.SharedMemory(create=True, size=max(1, len(a) * itemsize))
    shm_b = shared_memory.SharedMemory(create=True, size=max(1, len(b) * itemsize))
    shm_o = shared_memory.SharedMemory(create=True, size=max(1, total * itemsize))
    try:
        np.ndarray((len(a),), dtype=dtype, buffer=shm_a.buf)[:] = a
        np.ndarray((len(b),), dtype=dtype, buffer=shm_b.buf)[:] = b
        jobs = [
            (
                shm_a.name, shm_b.name, shm_o.name, dtype.str,
                len(a), len(b),
                s.a_start, s.a_end, s.b_start, s.b_end, s.out_start, s.out_end,
            )
            for s in partition.segments
            if s.length > 0
        ]
        if own_pool:
            workers = max_workers or mp.cpu_count()
            pool = mp.get_context("fork").Pool(min(workers, max(1, len(jobs))))
        assert pool is not None
        try:
            pool.map(_merge_segment_shm, jobs)
        finally:
            if own_pool:
                pool.close()
                pool.join()
        out = np.ndarray((total,), dtype=dtype, buffer=shm_o.buf).copy()
    finally:
        for shm in (shm_a, shm_b, shm_o):
            shm.close()
            shm.unlink()
    return out
