"""Process-pool backend over POSIX shared memory.

CPython's GIL prevents thread-level speedup for interpreter-bound code,
so this backend reproduces the paper's shared-memory threads with
*processes* plus ``multiprocessing.shared_memory``: the two input arrays
and the output array live in named shared-memory blocks; each worker
attaches, merges its merge-path segment with the vectorized kernel and
writes its disjoint output slice in place.  No data is pickled per task
— only segment coordinates travel over the pipe, mirroring the paper's
observation that processors exchange nothing but partition indices.

The pool is a ``concurrent.futures.ProcessPoolExecutor`` rather than a
``multiprocessing.Pool`` deliberately: when a worker process dies
(SIGKILL, OOM, segfault in an extension), ``Pool.map`` blocks forever on
the lost result, whereas the executor's management thread detects the
death and fails every in-flight future with ``BrokenProcessPool``.
:meth:`ProcessBackend.run_tasks` converts that into a
:class:`~repro.errors.BatchError` whose ``worker-death`` failures name
the affected task indices, then discards the broken pool so the next
batch (e.g. a retry by :class:`repro.resilience.ResilientBackend`) gets
a fresh one.

Three interfaces are provided:

* :meth:`ProcessBackend.run_tasks` — the generic fork/join; tasks must
  be picklable (module-level functions / ``functools.partial``).
* :func:`merge_partition_shared` — the zero-copy fast path used by
  :func:`repro.core.parallel_merge.parallel_merge` when this backend is
  selected.
* :class:`SharedMergeArena` — the staging object behind the fast path,
  exposed so resilience wrappers can re-dispatch individual segment
  tasks (they are picklable and idempotent) without re-staging the
  arrays.
"""

from __future__ import annotations

import functools
import multiprocessing as mp
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import BatchError, TaskFailure
from ..types import Partition
from ..validation import check_positive
from .base import Backend, TaskBatch, TaskResult

__all__ = ["ProcessBackend", "SharedMergeArena", "merge_partition_shared"]


def _timed_call(index: int, task: Callable[[], Any]) -> tuple[int, Any, float]:
    """Worker wrapper for the generic path (runs in the child)."""
    import time

    t0 = time.perf_counter()
    value = task()
    return index, value, time.perf_counter() - t0


def _merge_segment_shm(
    args: tuple[str, str, str, str, int, int, int, int, int, int, int, int],
) -> int:
    """Merge one segment entirely inside a worker process.

    Attaches to the three shared-memory blocks by name, views them as
    numpy arrays and merges ``A[a0:a1]`` with ``B[b0:b1]`` into
    ``S[o0:o1]``.  Returns the segment index for bookkeeping.  The call
    is idempotent — same inputs, same disjoint output bytes — so a
    supervisor may re-execute or even duplicate it freely (Theorem 14).
    """
    # Imported here so the module stays importable on platforms where
    # shared memory is restricted; the backend raises at construction.
    from ..core.sequential import merge_into

    (name_a, name_b, name_out, dtype_str, a_total, b_total,
     a0, a1, b0, b1, o0, o1) = args
    dtype = np.dtype(dtype_str)
    shm_a = shared_memory.SharedMemory(name=name_a)
    shm_b = shared_memory.SharedMemory(name=name_b)
    shm_out = shared_memory.SharedMemory(name=name_out)
    try:
        a = np.ndarray((a_total,), dtype=dtype, buffer=shm_a.buf)
        b = np.ndarray((b_total,), dtype=dtype, buffer=shm_b.buf)
        out = np.ndarray((a_total + b_total,), dtype=dtype, buffer=shm_out.buf)
        merge_into(out[o0:o1], a[a0:a1], b[b0:b1], kernel="vectorized")
    finally:
        # Close (not unlink): the parent owns the blocks' lifetime.
        shm_a.close()
        shm_b.close()
        shm_out.close()
    return o0


class ProcessBackend(Backend):
    """Fork/join over a ``ProcessPoolExecutor`` (fork context)."""

    name = "processes"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None:
            check_positive(max_workers, "max_workers")
        self._max_workers = max_workers or mp.cpu_count()
        self._pool: ProcessPoolExecutor | None = None
        # Pool creation/teardown is locked: resilience supervisors may
        # dispatch single-task batches from several threads at once, and
        # two of them must not race a broken-pool replacement.
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    mp_context=mp.get_context("fork"),
                )
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop a broken pool so the next batch rebuilds a healthy one."""
        with self._lock:
            if self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        tasks = list(tasks)
        pool = self._ensure_pool()
        futures: dict[int, Any] = {}
        failures: list[TaskFailure] = []
        broken = False
        for i, task in enumerate(tasks):
            try:
                futures[i] = pool.submit(_timed_call, i, task)
            except (BrokenProcessPool, RuntimeError) as exc:
                # The pool died while we were still submitting (a worker
                # of an earlier future was killed); everything not yet
                # submitted is a worker-death casualty too.
                broken = True
                failures.append(TaskFailure(
                    index=i, kind="worker-death",
                    message=f"pool broken before dispatch: {exc!r}", error=exc,
                ))
        results: list[TaskResult] = []
        for i, fut in futures.items():
            try:
                idx, value, elapsed = fut.result()
            except BrokenProcessPool as exc:
                broken = True
                failures.append(TaskFailure(
                    index=i, kind="worker-death",
                    message="worker process died before returning a result "
                    f"({exc!r})", error=exc,
                ))
            except Exception as exc:  # noqa: BLE001 - collected
                failures.append(TaskFailure(
                    index=i, kind="exception", message=repr(exc), error=exc,
                ))
            else:
                results.append(TaskResult(index=idx, value=value, elapsed_s=elapsed))
        if broken:
            self._discard_pool(pool)
        if failures:
            raise BatchError(failures, total=len(tasks))
        return results

    def merge_partition(
        self, a: np.ndarray, b: np.ndarray, partition: Partition
    ) -> np.ndarray:
        """Zero-copy parallel merge of a pre-computed partition."""
        return merge_partition_shared(a, b, partition, backend=self)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class SharedMergeArena:
    """Shared-memory staging for one partitioned merge.

    Copies ``a`` and ``b`` once into named shared-memory blocks
    (analogous to the arrays already residing in RAM on the paper's
    machine) and materializes one picklable, idempotent task per
    non-empty segment.  ``result()`` copies the merged output back out;
    ``close()`` releases the blocks.  Late writes from abandoned
    speculative attempts are harmless: every task writes the same bytes
    to its own disjoint slice.
    """

    def __init__(self, a: np.ndarray, b: np.ndarray, partition: Partition) -> None:
        dtype = np.promote_types(a.dtype, b.dtype)
        self._dtype = dtype
        self._total = len(a) + len(b)
        itemsize = dtype.itemsize
        self._shm_a = shared_memory.SharedMemory(
            create=True, size=max(1, len(a) * itemsize))
        self._shm_b = shared_memory.SharedMemory(
            create=True, size=max(1, len(b) * itemsize))
        self._shm_o = shared_memory.SharedMemory(
            create=True, size=max(1, self._total * itemsize))
        try:
            np.ndarray((len(a),), dtype=dtype, buffer=self._shm_a.buf)[:] = a
            np.ndarray((len(b),), dtype=dtype, buffer=self._shm_b.buf)[:] = b
            self.jobs = [
                (
                    self._shm_a.name, self._shm_b.name, self._shm_o.name,
                    dtype.str, len(a), len(b),
                    s.a_start, s.a_end, s.b_start, s.b_end,
                    s.out_start, s.out_end,
                )
                for s in partition.segments
                if s.length > 0
            ]
        except BaseException:
            self.close()
            raise

    def tasks(self) -> list[Callable[[], int]]:
        """One picklable callable per non-empty segment."""
        return [functools.partial(_merge_segment_shm, args) for args in self.jobs]

    def result(self) -> np.ndarray:
        """Copy the merged output out of shared memory."""
        return np.ndarray(
            (self._total,), dtype=self._dtype, buffer=self._shm_o.buf
        ).copy()

    def close(self) -> None:
        for shm in (self._shm_a, self._shm_b, self._shm_o):
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __enter__(self) -> "SharedMergeArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def merge_partition_shared(
    a: np.ndarray,
    b: np.ndarray,
    partition: Partition,
    *,
    max_workers: int | None = None,
    backend: Backend | None = None,
) -> np.ndarray:
    """Merge a partition with worker processes over shared memory.

    Stages the arrays in a :class:`SharedMergeArena`, fans the segment
    tasks out on ``backend`` (a temporary :class:`ProcessBackend` when
    none is given), and copies the shared output back into a regular
    array before releasing the blocks.
    """
    own_backend = backend is None
    be = backend if backend is not None else ProcessBackend(
        max_workers=max_workers
    )
    with SharedMergeArena(a, b, partition) as arena:
        try:
            be.run_batch(TaskBatch(arena.tasks(), label="merge.shared"))
        finally:
            if own_backend:
                be.close()
        return arena.result()
