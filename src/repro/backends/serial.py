"""Serial backend: run every task in the calling thread, in order.

This is both the correctness baseline and the reference for the
single-thread-overhead experiment (REM6PCT): running Algorithm 1 with
``p = 1`` on this backend measures exactly the partitioning + dispatch
overhead the paper's Section VI remark quantifies at ~6%.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..errors import BatchError
from .base import Backend, TaskResult

__all__ = ["SerialBackend"]


class SerialBackend(Backend):
    """Execute tasks sequentially in submission order."""

    name = "serial"

    def __init__(self, max_workers: int | None = None) -> None:
        # max_workers accepted for interface symmetry with the pooled
        # backends; a serial executor has exactly one worker regardless.
        pass

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        results = []
        failures = []
        for i, task in enumerate(tasks):
            result, failure = self._attempt(i, task)
            if failure is not None:
                failures.append(failure)
            else:
                results.append(result)
        if failures:
            raise BatchError(failures, total=len(tasks))
        return results
