"""Simulated-parallel backend: serial execution, PRAM accounting.

Runs tasks one at a time (so it works on any host, including the
single-core CI container this reproduction was built in) but records
per-task wall-clock and, when tasks report operation counts, exposes
PRAM-style aggregates:

* ``time`` = max over tasks (what p truly-parallel processors would take),
* ``work`` = sum over tasks (total operations, must stay ~O(N)).

The Figure 5 experiment pairs this backend with the machine timing model
in :mod:`repro.machine.timing` to regenerate the paper's speedup curves
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .base import Backend, TaskResult
from .serial import SerialBackend

__all__ = ["SimulatedBackend", "SimulatedBatch"]


@dataclass(slots=True)
class SimulatedBatch:
    """PRAM accounting for the most recent batch."""

    task_times_s: list[float]

    @property
    def parallel_time_s(self) -> float:
        """Modeled elapsed time: slowest task (processors run concurrently)."""
        return max(self.task_times_s, default=0.0)

    @property
    def total_work_s(self) -> float:
        """Total busy time across all modeled processors."""
        return sum(self.task_times_s)

    @property
    def modeled_speedup(self) -> float:
        """work / time — the speedup p ideal processors would achieve."""
        t = self.parallel_time_s
        return self.total_work_s / t if t > 0 else 1.0


class SimulatedBackend(Backend):
    """Serial execution with fork/join (PRAM) accounting.

    After each :meth:`run_tasks` call, :attr:`last_batch` holds the
    modeled parallel time and total work for that batch.
    """

    name = "simulated"

    def __init__(self, max_workers: int | None = None) -> None:
        # max_workers accepted for interface symmetry; the simulation
        # derives parallelism from the number of tasks submitted.
        self._inner = SerialBackend()
        self.last_batch: SimulatedBatch | None = None

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        results = self._inner.run_tasks(tasks)
        self.last_batch = SimulatedBatch([r.elapsed_s for r in results])
        return results
