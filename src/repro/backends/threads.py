"""Thread-pool backend.

CPython threads share the address space, so numpy input arrays and the
output array are accessed with zero copies — the same memory model the
paper's OpenMP implementation uses.  The GIL serializes *Python*
bytecode, but the vectorized merge kernel spends its time inside numpy C
loops (``searchsorted``, fancy assignment) which release the GIL, so
large segments genuinely overlap on multi-core hosts.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from ..errors import BatchError
from ..validation import check_positive
from .base import Backend, TaskResult

__all__ = ["ThreadBackend"]


class ThreadBackend(Backend):
    """Fork/join over a persistent, lazily created ``ThreadPoolExecutor``.

    The pool is created on the first batch and reused for every
    subsequent one — pool construction is *not* part of any dispatch.
    The batched execution engine (:mod:`repro.execution`) keeps one
    instance per ``(name, max_workers)`` alive across calls, so entry
    points invoked with a string backend name no longer pay
    per-call pool setup/teardown.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None:
            check_positive(max_workers, "max_workers")
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        pool = self._ensure_pool()
        futures = [
            pool.submit(self._attempt, i, task)
            for i, task in enumerate(tasks)
        ]
        # Every future is drained — a failed task never hides the
        # outcomes of the tasks submitted after it.
        results = []
        failures = []
        for f in futures:
            result, failure = f.result()
            if failure is not None:
                failures.append(failure)
            else:
                results.append(result)
        if failures:
            raise BatchError(failures, total=len(tasks))
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
