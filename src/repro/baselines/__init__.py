"""Baseline and related-work algorithms (Section V comparisons).

* :mod:`repro.baselines.naive_split` — the incorrect equal-split
  strategy the paper's introduction dismisses, kept as an executable
  counterexample.
* :mod:`repro.baselines.shiloach_vishkin` — the [6]-style partition
  whose worst-case segment is ``2N/p`` (the 2× latency hit quantified
  by the LB experiment).
* :mod:`repro.baselines.akl_santoro` — [5]: recursive median
  bisection, ``O(N/p + log N · log p)``, conflict-free.
* :mod:`repro.baselines.deo_sarkar` — [2]: direct multiselection of
  equispaced output ranks; partition-equivalent to Merge Path.
* :mod:`repro.baselines.bitonic` — Batcher's bitonic sorting network
  [4], the merging-free sorter of the related-work discussion.
* :mod:`repro.baselines.heap_kway` — binary-heap k-way merge, the
  classic sequential alternative the k-way extension is measured
  against.
"""

from .naive_split import naive_split_partition, naive_split_merge
from .shiloach_vishkin import sv_partition, sv_merge
from .akl_santoro import akl_santoro_partition, akl_santoro_merge
from .deo_sarkar import deo_sarkar_partition, deo_sarkar_merge
from .bitonic import (
    bitonic_sort,
    bitonic_merge_network,
    comparator_count,
    odd_even_merge,
    odd_even_merge_network,
)
from .heap_kway import heap_kway_merge

__all__ = [
    "naive_split_partition",
    "naive_split_merge",
    "sv_partition",
    "sv_merge",
    "akl_santoro_partition",
    "akl_santoro_merge",
    "deo_sarkar_partition",
    "deo_sarkar_merge",
    "bitonic_sort",
    "bitonic_merge_network",
    "comparator_count",
    "odd_even_merge",
    "odd_even_merge_network",
    "heap_kway_merge",
]
