"""Akl–Santoro merge partitioning ([5], Section V).

Optimal Parallel Merging and Sorting Without Memory Conflicts (1987):
find the pair ``(A[i], B[j])`` straddling the *median* of the output,
split both arrays there, and recurse on the two halves until there are
``p`` partitions — ``O(log p)`` sequential *rounds* of ``O(log N)``
median searches, versus Merge Path's single round of ``p - 1``
independent searches.  The resulting cut points are identical to Merge
Path's (both cut the output at equispaced ranks with the same A-first
tie rule); what differs is the dependency structure, which is what the
LB experiment reports (``rounds`` column).

The EREW property (processors touch disjoint addresses after
partitioning) comes for free: the segments are element-wise disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.selection import kth_of_union
from ..core.sequential import merge_vectorized, result_dtype
from ..types import Partition, PathPoint, Segment
from ..validation import as_array, check_mergeable, check_positive

__all__ = ["akl_santoro_partition", "akl_santoro_merge", "PartitionTrace"]


@dataclass(slots=True)
class PartitionTrace:
    """Cost accounting of the recursive bisection."""

    rounds: int = 0
    median_searches: int = 0


def akl_santoro_partition(
    a: np.ndarray, b: np.ndarray, p: int, *, trace: PartitionTrace | None = None
) -> Partition:
    """Recursively bisect the output rank space into ``p`` segments.

    Each recursion level halves the number of pending cut groups, so
    the level count (``trace.rounds``) is ``ceil(log2 p)``; every median
    search within a level could run concurrently on a real machine, but
    levels are inherently sequential — the structural disadvantage
    versus Merge Path.
    """
    check_positive(p, "p")
    a = as_array(a, "A")
    b = as_array(b, "B")
    n = len(a) + len(b)
    # Desired interior output ranks, identical to Merge Path's cuts.
    ranks = [(k * n) // p for k in range(1, p)]
    cuts: dict[int, PathPoint] = {0: PathPoint(0, 0), n: PathPoint(len(a), len(b))}

    # Recursive bisection over (rank interval, enclosing split points).
    pending = [(ranks, 0, n)] if ranks else []
    rounds = 0
    while pending:
        rounds += 1
        next_pending = []
        for group, lo_rank, hi_rank in pending:
            if not group:
                continue
            mid_idx = len(group) // 2
            r = group[mid_idx]
            lo_pt, hi_pt = cuts[lo_rank], cuts[hi_rank]
            sub_a = a[lo_pt.i : hi_pt.i]
            sub_b = b[lo_pt.j : hi_pt.j]
            if r == lo_rank:
                point = lo_pt
            elif r == hi_rank:
                point = hi_pt
            else:
                _, local = kth_of_union(sub_a, sub_b, r - lo_rank)
                point = PathPoint(lo_pt.i + local.i, lo_pt.j + local.j)
                if trace is not None:
                    trace.median_searches += 1
            cuts[r] = point
            left = group[:mid_idx]
            right = group[mid_idx + 1 :]
            if left:
                next_pending.append((left, lo_rank, r))
            if right:
                next_pending.append((right, r, hi_rank))
        pending = next_pending
    if trace is not None:
        trace.rounds = rounds

    boundary_ranks = sorted(set([0, *ranks, n]))
    points = [cuts[r] for r in boundary_ranks]
    segs = []
    for k, (s, e) in enumerate(zip(points, points[1:])):
        segs.append(
            Segment(
                index=k,
                a_start=s.i, a_end=e.i,
                b_start=s.j, b_end=e.j,
                out_start=s.diagonal, out_end=e.diagonal,
            )
        )
    # Re-pad to exactly p segments when duplicate ranks collapsed
    # (p > n, including the fully empty merge where n == 0).
    if not segs:
        segs.append(Segment(0, 0, 0, 0, 0, 0, 0))
    while len(segs) < p:
        last = segs[-1]
        segs.append(
            Segment(len(segs), last.a_end, last.a_end, last.b_end, last.b_end,
                    last.out_end, last.out_end)
        )
    return Partition(len(a), len(b), tuple(segs))


def akl_santoro_merge(a, b, p: int) -> np.ndarray:
    """Merge via the Akl–Santoro partition (balanced, EREW-friendly)."""
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    part = akl_santoro_partition(a, b, p)
    out = np.empty(len(a) + len(b), dtype=result_dtype(a, b))
    for seg in part.segments:
        out[seg.out_start : seg.out_end] = merge_vectorized(
            a[seg.a_start : seg.a_end], b[seg.b_start : seg.b_end], check=False
        )
    return out
