"""Batcher's bitonic sorting network ([4], Section V).

The related-work foil: a sorter that needs *no* merging of sorted
arrays, at the price of ``O(N log² N)`` comparators versus merge sort's
``O(N log N)`` comparisons.  Implemented as an explicit network (list of
compare-exchange wire pairs) so the SORT experiment can count
comparators and depth exactly, plus a vectorized executor that applies
each stage with numpy min/max — the natural data-parallel realization.

Only power-of-two sizes form a classical bitonic network; arbitrary
sizes are handled by padding with a +inf sentinel, the standard trick.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import InputError
from ..validation import as_array

__all__ = [
    "bitonic_network",
    "bitonic_merge_network",
    "bitonic_sort",
    "comparator_count",
    "network_depth",
    "odd_even_merge_network",
    "odd_even_merge",
]


def bitonic_network(n: int) -> list[list[tuple[int, int]]]:
    """Full bitonic sorting network for ``n = 2^k`` wires.

    Returns a list of *stages*; each stage is a list of disjoint
    ``(i, j)`` comparator pairs (``i < j`` means "ascending
    compare-exchange: put min at i").  Stages are the network's clock
    ticks: all comparators within one stage act on disjoint wires and
    run concurrently, so ``len(stages)`` is the sort's parallel depth —
    the ``O(log² N)`` cycles of the paper's Section V.
    """
    if n < 1 or n & (n - 1):
        raise InputError(f"bitonic network needs a power-of-two size, got {n}")
    stages: list[list[tuple[int, int]]] = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            stage = []
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    if i & k:
                        stage.append((partner, i))  # descending box
                    else:
                        stage.append((i, partner))  # ascending box
            stages.append(stage)
            j //= 2
        k *= 2
    return stages


def bitonic_merge_network(n: int) -> list[list[tuple[int, int]]]:
    """The final merge phase of the bitonic network (a bitonic merger).

    Sorts any *bitonic* sequence of length ``n = 2^k``; ``log2 n``
    stages of ``n/2`` comparators.
    """
    if n < 1 or n & (n - 1):
        raise InputError(f"bitonic merger needs a power-of-two size, got {n}")
    stages = []
    j = n // 2
    while j >= 1:
        stage = []
        for i in range(n):
            partner = i ^ j
            if partner > i:
                stage.append((i, partner))
        stages.append(stage)
        j //= 2
    return stages


def comparator_count(stages: list[list[tuple[int, int]]]) -> int:
    """Total compare-exchange elements in a network."""
    return sum(len(s) for s in stages)


def network_depth(stages: list[list[tuple[int, int]]]) -> int:
    """Parallel depth (number of stages)."""
    return len(stages)


def bitonic_sort(x) -> np.ndarray:
    """Sort via the bitonic network, executed stage-by-stage with numpy.

    Non-power-of-two inputs are padded with the dtype's maximum (or
    ``+inf``) and trimmed afterwards.  Note bitonic sorting is *not*
    stable; only values are guaranteed.
    """
    arr = as_array(x, "x").copy()
    n = len(arr)
    if n <= 1:
        return arr
    size = 1 << math.ceil(math.log2(n))
    if size != n:
        if np.issubdtype(arr.dtype, np.integer):
            pad_val = np.iinfo(arr.dtype).max
        elif np.issubdtype(arr.dtype, np.floating):
            pad_val = np.inf
        else:
            raise InputError(
                f"cannot pad dtype {arr.dtype}; use a power-of-two length"
            )
        arr = np.concatenate([arr, np.full(size - n, pad_val, dtype=arr.dtype)])
    for stage in bitonic_network(size):
        i_idx = np.fromiter((i for i, _ in stage), dtype=np.intp, count=len(stage))
        j_idx = np.fromiter((j for _, j in stage), dtype=np.intp, count=len(stage))
        lo = np.minimum(arr[i_idx], arr[j_idx])
        hi = np.maximum(arr[i_idx], arr[j_idx])
        arr[i_idx] = lo
        arr[j_idx] = hi
    return arr[:n]


def odd_even_merge_network(n: int) -> list[list[tuple[int, int]]]:
    """Batcher's odd-even *merge* network for two sorted halves.

    Merges ``x[:n/2]`` and ``x[n/2:]`` (each sorted) with
    ``O(n log n)`` comparators in ``log2 n`` stages — the
    comparator-network way to merge, against which Merge Path's
    ``O(n)``-work, O(1)-depth-overhead partitioning is the foil: the
    network needs no partitioning at all but pays a log factor of extra
    comparators, the classic circuit-vs-algorithm trade.

    ``n`` must be a power of two.
    """
    if n < 2 or n & (n - 1):
        raise InputError(f"odd-even merger needs a power-of-two size, got {n}")

    stages: list[list[tuple[int, int]]] = []

    def build(lo: int, length: int, stride: int, acc: dict[int, list]) -> None:
        """Recursive odd-even merge over indices lo, lo+stride, ..."""
        step = stride * 2
        if step < length:
            build(lo, length, step, acc)           # even subsequence
            build(lo + stride, length, step, acc)  # odd subsequence
            depth = _merge_depth(length, stride)
            for i in range(lo + stride, lo + length - stride, step):
                acc.setdefault(depth, []).append((i, i + stride))
        else:
            acc.setdefault(0, []).append((lo, lo + stride))

    acc: dict[int, list] = {}
    build(0, n, 1, acc)
    for depth in sorted(acc):
        stages.append(acc[depth])
    return stages


def _merge_depth(length: int, stride: int) -> int:
    """Stage index of the comparators with the given stride."""
    d = 1
    s = stride
    while s * 2 < length:
        s *= 2
        d += 1
    return d


def odd_even_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays via the odd-even network (values only).

    Pads to the next power of two with sentinels; not stable.
    """
    a = as_array(a, "A")
    b = as_array(b, "B")
    total = len(a) + len(b)
    if total == 0:
        return np.array([], dtype=np.promote_types(a.dtype, b.dtype)
                        if len(a) or len(b) else np.int64)
    size = 1 << math.ceil(math.log2(max(2, total)))
    dtype = np.promote_types(a.dtype, b.dtype)
    if np.issubdtype(dtype, np.integer):
        pad_val = np.iinfo(dtype).max
    elif np.issubdtype(dtype, np.floating):
        pad_val = np.inf
    else:
        raise InputError(f"cannot pad dtype {dtype}")
    # network merges two sorted *halves*: pad each side to size/2
    half = size // 2
    if len(a) > half or len(b) > half:
        # unequal split exceeds a half: fall back to one extra doubling
        size *= 2
        half = size // 2
    arr = np.full(size, pad_val, dtype=dtype)
    arr[:len(a)] = a
    arr[half:half + len(b)] = b
    for stage in odd_even_merge_network(size):
        i_idx = np.fromiter((i for i, _ in stage), dtype=np.intp,
                            count=len(stage))
        j_idx = np.fromiter((j for _, j in stage), dtype=np.intp,
                            count=len(stage))
        lo = np.minimum(arr[i_idx], arr[j_idx])
        hi = np.maximum(arr[i_idx], arr[j_idx])
        arr[i_idx] = lo
        arr[j_idx] = hi
    return arr[:total]
