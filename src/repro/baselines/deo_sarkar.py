"""Deo–Sarkar partitioned merge ([2], Section V).

"Parallel algorithms for merging and sorting" (1991): directly find,
for each processor, the element that is the ``k·N/p``-th smallest of
the output via a two-array rank search — no recursion, one independent
``O(log N)`` search per cut, CREW.  The paper positions Merge Path as
"very similar" to this algorithm, the difference being the geometric
grid/diagonal formulation; consequently this implementation *must*
produce exactly the Merge Path partition, a property the test suite
asserts on random and adversarial inputs (partition equivalence).
"""

from __future__ import annotations

import numpy as np

from ..core.selection import kth_of_union
from ..core.sequential import merge_vectorized, result_dtype
from ..types import Partition, PathPoint, Segment
from ..validation import as_array, check_mergeable, check_positive

__all__ = ["deo_sarkar_partition", "deo_sarkar_merge"]


def deo_sarkar_partition(a: np.ndarray, b: np.ndarray, p: int) -> Partition:
    """Cut the output at ranks ``k·N/p`` via independent rank searches."""
    check_positive(p, "p")
    a = as_array(a, "A")
    b = as_array(b, "B")
    n = len(a) + len(b)
    points = [PathPoint(0, 0)]
    prev_rank = 0
    for k in range(1, p):
        r = (k * n) // p
        if r <= 0 or r >= n:
            points.append(points[-1] if r <= prev_rank else PathPoint(len(a), len(b)))
            continue
        _, pt = kth_of_union(a, b, r)
        points.append(pt)
        prev_rank = r
    points.append(PathPoint(len(a), len(b)))
    segs = tuple(
        Segment(
            index=k,
            a_start=s.i, a_end=e.i,
            b_start=s.j, b_end=e.j,
            out_start=s.diagonal, out_end=e.diagonal,
        )
        for k, (s, e) in enumerate(zip(points, points[1:]))
    )
    return Partition(len(a), len(b), segs)


def deo_sarkar_merge(a, b, p: int) -> np.ndarray:
    """Merge via the Deo–Sarkar partition."""
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    part = deo_sarkar_partition(a, b, p)
    out = np.empty(len(a) + len(b), dtype=result_dtype(a, b))
    for seg in part.segments:
        out[seg.out_start : seg.out_end] = merge_vectorized(
            a[seg.a_start : seg.a_end], b[seg.b_start : seg.b_end], check=False
        )
    return out
