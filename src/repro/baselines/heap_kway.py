"""Binary-heap k-way merge — the classic sequential alternative.

The tournament the k-way merge-path extension is compared against:
maintain a min-heap of (value, array index, element index); pop-push
``N`` times at ``O(log T)`` apiece.  Tie-breaking includes the array
index so equal values are emitted in array order — identical output to
:func:`repro.core.kway.kway_merge`.

Implemented with an explicit array-backed binary heap rather than
``heapq`` so the comparison count is observable for the benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..types import MergeStats
from ..validation import as_array, check_sorted

__all__ = ["heap_kway_merge"]


def heap_kway_merge(
    arrays: Sequence[np.ndarray],
    *,
    check: bool = True,
    stats: MergeStats | None = None,
) -> np.ndarray:
    """Stable k-way merge with an explicit binary min-heap."""
    arrays = [as_array(arr, f"arrays[{t}]") for t, arr in enumerate(arrays)]
    if check:
        for t, arr in enumerate(arrays):
            check_sorted(arr, f"arrays[{t}]")
    arrays = [arr for arr in arrays if len(arr)]
    total = sum(len(arr) for arr in arrays)
    if not arrays:
        return np.empty(0)
    dtype = arrays[0].dtype
    for arr in arrays[1:]:
        dtype = np.promote_types(dtype, arr.dtype)
    out = np.empty(total, dtype=dtype)

    # Heap entries are (value, array_idx, elem_idx); tuple order gives
    # the array-order tie rule for free.
    heap: list[tuple] = [(arr[0], t, 0) for t, arr in enumerate(arrays)]
    _heapify(heap, stats)
    k = 0
    while heap:
        value, t, i = heap[0]
        out[k] = value
        k += 1
        if i + 1 < len(arrays[t]):
            _replace_root(heap, (arrays[t][i + 1], t, i + 1), stats)
        else:
            _pop_root(heap, stats)
    if stats is not None:
        stats.moves += total
    return out


def _less(x: tuple, y: tuple, stats: MergeStats | None) -> bool:
    if stats is not None:
        stats.comparisons += 1
    return x < y


def _sift_down(heap: list, pos: int, stats: MergeStats | None) -> None:
    n = len(heap)
    item = heap[pos]
    while True:
        child = 2 * pos + 1
        if child >= n:
            break
        right = child + 1
        if right < n and _less(heap[right], heap[child], stats):
            child = right
        if _less(heap[child], item, stats):
            heap[pos] = heap[child]
            pos = child
        else:
            break
    heap[pos] = item


def _heapify(heap: list, stats: MergeStats | None) -> None:
    for pos in range(len(heap) // 2 - 1, -1, -1):
        _sift_down(heap, pos, stats)


def _replace_root(heap: list, item: tuple, stats: MergeStats | None) -> None:
    heap[0] = item
    _sift_down(heap, 0, stats)


def _pop_root(heap: list, stats: MergeStats | None) -> None:
    last = heap.pop()
    if heap:
        heap[0] = last
        _sift_down(heap, 0, stats)
