"""The naive equal-split parallel merge — an executable counterexample.

The paper's introduction: "A naive approach to parallel merge would
entail partitioning each of the two arrays into equal-length contiguous
sub-arrays and assigning a pair of same-numbered sub-arrays to each
core... Unfortunately, this is incorrect."  This module implements it
faithfully so tests and examples can *demonstrate* the failure (e.g.
when every element of A exceeds every element of B) and so the docs can
show why correct partitioning — the merge path — is the actual problem.
"""

from __future__ import annotations

import numpy as np

from ..core.sequential import merge_vectorized, result_dtype
from ..types import Partition, Segment
from ..validation import as_array, check_mergeable, check_positive

__all__ = ["naive_split_partition", "naive_split_merge", "is_sorted"]


def naive_split_partition(a_len: int, b_len: int, p: int) -> Partition:
    """Cut each array independently into ``p`` equal contiguous pieces.

    Segment ``k`` pairs the ``k``-th piece of A with the ``k``-th piece
    of B.  Note the returned object *fails*
    :meth:`~repro.types.Partition.validate` in general — the pieces do
    not correspond to contiguous merge-path ranges — which is exactly
    the point.
    """
    check_positive(p, "p")
    segs = []
    out = 0
    for k in range(p):
        a0, a1 = (k * a_len) // p, ((k + 1) * a_len) // p
        b0, b1 = (k * b_len) // p, ((k + 1) * b_len) // p
        length = (a1 - a0) + (b1 - b0)
        segs.append(
            Segment(
                index=k, a_start=a0, a_end=a1, b_start=b0, b_end=b1,
                out_start=out, out_end=out + length,
            )
        )
        out += length
    return Partition(a_len, b_len, tuple(segs))


def naive_split_merge(a, b, p: int) -> np.ndarray:
    """Merge each same-numbered piece pair and concatenate.

    Returns an array that contains all elements of ``A`` and ``B`` but
    is, in general, **not sorted** — callers should check with
    :func:`is_sorted`.  (It *is* sorted when the inputs interleave
    uniformly, which is why the bug is easy to miss on friendly data.)
    """
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    part = naive_split_partition(len(a), len(b), p)
    out = np.empty(len(a) + len(b), dtype=result_dtype(a, b))
    for seg in part.segments:
        out[seg.out_start : seg.out_end] = merge_vectorized(
            a[seg.a_start : seg.a_end], b[seg.b_start : seg.b_end], check=False
        )
    return out


def is_sorted(x: np.ndarray) -> bool:
    """True when ``x`` is non-decreasing."""
    x = np.asarray(x)
    return bool(np.all(x[:-1] <= x[1:])) if len(x) > 1 else True
