"""Shiloach–Vishkin-style partitioned merge ([6], Section V).

The 1981 scheme partitions by *input position* rather than output
position: each of the ``p`` processors takes the ``k``-th equal slice of
``A`` and pairs it with the B-range bracketed by its slice's boundary
values (found by binary search / rank).  Every element lands in exactly
one segment and concatenating the merged segments is sorted — but the
segment *sizes* are data dependent: a processor is responsible for
``|A|/p`` A-elements plus however many B-elements fall between its
boundaries, which can be anywhere from 0 to all of B.  The paper's
Section V: a processor "may be assigned as many as 2N/p elements...
such a load imbalance can cause a 2X increase in latency", and with the
adversarial inputs in :mod:`repro.workloads.adversarial` the LB
experiment drives it to the full ``|A|/p + |B|`` extreme.
"""

from __future__ import annotations

import numpy as np

from ..core.sequential import merge_vectorized, result_dtype
from ..types import Partition, Segment
from ..validation import as_array, check_mergeable, check_positive

__all__ = ["sv_partition", "sv_merge"]


def sv_partition(a: np.ndarray, b: np.ndarray, p: int) -> Partition:
    """Partition by equal A-slices with rank-matched B-ranges.

    B is cut at the ranks of the A slice boundaries
    (``searchsorted(b, a[cut], side='left')``, consistent with the
    A-before-B tie rule), so the concatenation of segment merges is the
    correct stable merge — only the balance differs from Merge Path.
    """
    check_positive(p, "p")
    a = as_array(a, "A")
    b = as_array(b, "B")
    a_cuts = [(k * len(a)) // p for k in range(p + 1)]
    b_cuts = [0]
    for k in range(1, p):
        idx = a_cuts[k]
        if idx >= len(a):
            b_cuts.append(len(b))
        else:
            # All B elements strictly below A[idx] go to earlier
            # segments; ties go after the A element (A-first rule).
            b_cuts.append(int(np.searchsorted(b, a[idx], side="left")))
    b_cuts.append(len(b))
    # Guard monotonicity (searchsorted on sorted boundaries already is).
    segs = []
    out = 0
    for k in range(p):
        length = (a_cuts[k + 1] - a_cuts[k]) + (b_cuts[k + 1] - b_cuts[k])
        segs.append(
            Segment(
                index=k,
                a_start=a_cuts[k], a_end=a_cuts[k + 1],
                b_start=b_cuts[k], b_end=b_cuts[k + 1],
                out_start=out, out_end=out + length,
            )
        )
        out += length
    return Partition(len(a), len(b), tuple(segs))


def sv_merge(a, b, p: int) -> np.ndarray:
    """Merge via the SV-style partition (correct but imbalanced)."""
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    part = sv_partition(a, b, p)
    out = np.empty(len(a) + len(b), dtype=result_dtype(a, b))
    for seg in part.segments:
        out[seg.out_start : seg.out_end] = merge_vectorized(
            a[seg.a_start : seg.a_end], b[seg.b_start : seg.b_end], check=False
        )
    return out
