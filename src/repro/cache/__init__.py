"""Cache simulator substrate (Section IV experiments).

The paper's cache-efficiency claims (Algorithm 2 keeps the working set
resident; 3-way associativity suffices; basic parallel merge thrashes a
shared cache once arrays outgrow it) were evaluated by the authors only
on an incomplete Hypercore prototype — so this reproduction, like the
paper itself, substitutes a simulator:

* :mod:`repro.cache.set_assoc` — a set-associative cache with LRU (or
  FIFO) replacement and full hit/miss/eviction statistics.
* :mod:`repro.cache.hierarchy` — multi-level private/shared hierarchies
  (per-core L1/L2, per-socket shared L3) with an invalidation-based
  coherence cost model.
* :mod:`repro.cache.trace` — memory-access traces: each algorithm
  variant emits a per-core stream of (array, index, read/write) events
  at element granularity which the hierarchy replays.
* :mod:`repro.cache.traced_merge` — trace emitters for the sequential
  merge, Algorithm 1 and Algorithm 2, sharing the partition logic with
  the production kernels.
* :mod:`repro.cache.stats` — aggregated counters.
"""

from .set_assoc import SetAssociativeCache, ReplacementPolicy
from .hierarchy import CacheHierarchy, CoreCaches, build_hierarchy
from .trace import Access, AddressMap, TraceBuilder, interleave_round_robin
from .stats import CacheStats, HierarchyStats
from .prefetch import PrefetchStats, SequentialPrefetcher
from .traced_merge import (
    trace_sequential_merge,
    trace_parallel_merge,
    trace_segmented_merge,
)

__all__ = [
    "SetAssociativeCache",
    "ReplacementPolicy",
    "CacheHierarchy",
    "CoreCaches",
    "build_hierarchy",
    "Access",
    "AddressMap",
    "TraceBuilder",
    "interleave_round_robin",
    "CacheStats",
    "HierarchyStats",
    "PrefetchStats",
    "SequentialPrefetcher",
    "trace_sequential_merge",
    "trace_parallel_merge",
    "trace_segmented_merge",
]
