"""Multi-level private/shared cache hierarchy with coherence costs.

Models the paper's evaluation machine shape: per-core private L1 and
L2, per-socket shared L3, DRAM behind everything.  Replays an
interleaved element-granularity trace:

* An access looks up the issuing core's L1, then L2, then its socket's
  L3; the first hit serves it, deeper levels fill on the way back (all
  levels are allocate-on-miss, write-back).
* **Coherence** is a simplified invalidation protocol at line
  granularity: a *write* by core ``c`` invalidates the line in every
  other core's private caches (and counts one invalidation event per
  sharer); a *read* of a line another core holds *dirty* forces that
  core's copy clean (one invalidation event) before the fill.  This
  captures the two expensive events on the real machine — RFO
  invalidations and dirty-line interventions — without modeling MESI
  state machines in full.

The one-socket, shared-single-cache configuration (``l1 == l2 == l3``
shared by all cores) models the Hypercore-like machine of Section VI;
:func:`build_hierarchy` builds either shape from a
:class:`~repro.machine.specs.MachineSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import InputError
from ..machine.specs import MachineSpec
from ..validation import check_positive
from .set_assoc import ReplacementPolicy, SetAssociativeCache
from .stats import HierarchyStats
from .trace import Access, AddressMap

__all__ = ["CoreCaches", "CacheHierarchy", "build_hierarchy"]


@dataclass(slots=True)
class CoreCaches:
    """The private caches of one core."""

    l1: SetAssociativeCache
    l2: SetAssociativeCache


class CacheHierarchy:
    """p cores with private L1/L2 over per-socket shared L3s.

    Parameters
    ----------
    cores:
        Private cache pairs, one per core.
    l3s:
        Shared caches, one per socket.
    cores_per_socket:
        Socket assignment: core ``c`` uses ``l3s[c // cores_per_socket]``.
    """

    def __init__(
        self,
        cores: list[CoreCaches],
        l3s: list[SetAssociativeCache],
        cores_per_socket: int,
    ) -> None:
        if not cores or not l3s:
            raise InputError("need at least one core and one L3")
        check_positive(cores_per_socket, "cores_per_socket")
        if (len(cores) + cores_per_socket - 1) // cores_per_socket > len(l3s):
            raise InputError("not enough L3s for the core count")
        self.cores = cores
        self.l3s = l3s
        self.cores_per_socket = cores_per_socket
        self.stats = HierarchyStats()

    def _socket(self, core: int) -> SetAssociativeCache:
        return self.l3s[core // self.cores_per_socket]

    def access(self, core: int, address: int, write: bool) -> None:
        """Replay one byte-address access by ``core``."""
        if not 0 <= core < len(self.cores):
            raise InputError(f"core {core} out of range")
        cc = self.cores[core]

        # Coherence first: writes invalidate all other private copies;
        # reads only need exclusive service if another core dirtied it
        # (approximated: any private copy elsewhere counts on writes).
        if write:
            for other, oc in enumerate(self.cores):
                if other == core:
                    continue
                inv = oc.l1.invalidate(address)
                inv |= oc.l2.invalidate(address)
                if inv:
                    self.stats.coherence_invalidations += 1

        hit1, _ = cc.l1.access(address, write)
        if hit1:
            return
        hit2, _ = cc.l2.access(address, write)
        if hit2:
            return
        l3 = self._socket(core)
        hit3, _ = l3.access(address, write)
        if not hit3:
            self.stats.dram_accesses += 1

    def replay(self, accesses: Iterable[Access], amap: AddressMap) -> HierarchyStats:
        """Replay a full interleaved trace; returns the final stats."""
        for acc in accesses:
            self.access(acc.core, amap.byte_address(acc.array, acc.index), acc.write)
        return self.collect_stats()

    def collect_stats(self) -> HierarchyStats:
        """Aggregate per-cache counters into the hierarchy totals."""
        agg = HierarchyStats(
            dram_accesses=self.stats.dram_accesses,
            coherence_invalidations=self.stats.coherence_invalidations,
        )
        for cc in self.cores:
            agg.l1.add(cc.l1.stats)
            agg.l2.add(cc.l2.stats)
        for l3 in self.l3s:
            agg.l3.add(l3.stats)
        self.stats = agg
        return agg



def build_hierarchy(
    spec: MachineSpec,
    p: int,
    *,
    l1_assoc: int = 8,
    l2_assoc: int = 8,
    l3_assoc: int = 16,
    policy: ReplacementPolicy = ReplacementPolicy.LRU,
) -> CacheHierarchy:
    """Build a hierarchy for ``p`` active cores of ``spec``.

    Cores are packed socket-first (cores 0..5 on socket 0 for the
    T610), matching how OpenMP pins threads with compact affinity.
    """
    check_positive(p, "p")
    if p > spec.total_cores:
        raise InputError(f"p={p} exceeds {spec.name!r} cores {spec.total_cores}")
    cores = [
        CoreCaches(
            l1=SetAssociativeCache(
                spec.l1d_bytes, spec.line_bytes, l1_assoc, policy, f"L1.c{c}"
            ),
            l2=SetAssociativeCache(
                spec.l2_bytes, spec.line_bytes, l2_assoc, policy, f"L2.c{c}"
            ),
        )
        for c in range(p)
    ]
    sockets = (p + spec.cores_per_socket - 1) // spec.cores_per_socket
    l3s = [
        SetAssociativeCache(
            spec.l3_bytes, spec.line_bytes, l3_assoc, policy, f"L3.s{s}"
        )
        for s in range(max(1, sockets))
    ]
    return CacheHierarchy(cores, l3s, spec.cores_per_socket)
