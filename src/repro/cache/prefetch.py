"""Next-N-lines sequential prefetcher.

Section VI contains a quietly important sentence: "In view of the
sophisticated cache management and prefetching of this system, we left
this issue to the hardware and implemented the basic version of our
algorithm rather than the segmented one."  I.e. on the Xeon, hardware
prefetchers hide the basic merge's misses, so SPM wasn't needed —
SPM's target is *simple* caches (Hypercore).

This module makes that argument measurable: a
:class:`SequentialPrefetcher` wraps any
:class:`~repro.cache.set_assoc.SetAssociativeCache` and, on each demand
miss, prefetches the next ``degree`` lines.  Replaying the basic
parallel merge with prefetch on should collapse its *demand* misses
toward zero (its p concurrent streams are each perfectly sequential —
the friendliest possible pattern), while total traffic (demand +
prefetch fills) stays near the compulsory floor — reproducing the
paper's reasoning for why Figure 5 used the basic algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..validation import check_positive
from .set_assoc import SetAssociativeCache

__all__ = ["PrefetchStats", "SequentialPrefetcher"]


@dataclass(slots=True)
class PrefetchStats:
    """Prefetcher-level counters (the wrapped cache keeps its own)."""

    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_issued: int = 0
    prefetch_useless: int = 0  # prefetched a line already resident

    @property
    def demand_accesses(self) -> int:
        return self.demand_hits + self.demand_misses

    @property
    def demand_miss_rate(self) -> float:
        return (
            self.demand_misses / self.demand_accesses
            if self.demand_accesses
            else 0.0
        )

    @property
    def fills(self) -> int:
        """Total lines brought in from the next level (memory traffic)."""
        return self.demand_misses + self.prefetch_issued - self.prefetch_useless


class SequentialPrefetcher:
    """Wraps a cache with next-``degree``-lines prefetch on demand miss.

    The model is the classic streamer: a demand miss to line ``L``
    issues prefetches for ``L+1 .. L+degree``.  Prefetches install
    lines as clean (they never mark dirty) and are not counted as
    demand traffic; a later demand access to a prefetched line is a
    demand *hit* — that is the entire point of the hardware.
    """

    def __init__(self, cache: SetAssociativeCache, degree: int = 2) -> None:
        check_positive(degree, "degree")
        self.cache = cache
        self.degree = degree
        self.stats = PrefetchStats()

    def access(self, address: int, write: bool = False) -> bool:
        """One demand access; returns hit/miss (after prefetch effects)."""
        hit, _ = self.cache.access(address, write)
        if hit:
            self.stats.demand_hits += 1
            return True
        self.stats.demand_misses += 1
        # stream out the next lines
        line = self.cache.line_bytes
        base = (address // line) * line
        for k in range(1, self.degree + 1):
            target = base + k * line
            if self.cache.contains(target):
                self.stats.prefetch_useless += 1
                self.stats.prefetch_issued += 1
                continue
            self.cache.access(target, write=False)
            # compensate the wrapped cache's stats: that access was a
            # prefetch fill, not a demand miss
            self.cache.stats.misses -= 1
            self.stats.prefetch_issued += 1
        return False
