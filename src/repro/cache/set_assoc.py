"""Set-associative cache model with LRU / FIFO replacement.

Addresses are byte addresses; a cache of ``size_bytes`` capacity,
``line_bytes`` lines and ``assoc`` ways has ``size_bytes / line_bytes /
assoc`` sets, indexed by the low line-address bits — the standard
indexing the paper's 3-way-associativity remark presumes.  The model is
write-back / write-allocate and tracks per-line dirty state so
writebacks and coherence invalidations are priced correctly.
"""

from __future__ import annotations

import enum
from collections import OrderedDict

from ..errors import InputError
from ..validation import check_positive
from .stats import CacheStats

__all__ = ["ReplacementPolicy", "SetAssociativeCache"]


class ReplacementPolicy(enum.Enum):
    """Victim selection within a set."""

    LRU = "LRU"
    FIFO = "FIFO"


class SetAssociativeCache:
    """One cache: an array of sets, each an ordered map of line tags.

    Parameters
    ----------
    size_bytes:
        Total capacity; must be a multiple of ``line_bytes * assoc``.
    line_bytes:
        Line size (power of two).
    assoc:
        Ways per set.  ``assoc == size_bytes // line_bytes`` makes the
        cache fully associative.
    policy:
        Replacement policy (LRU default).
    name:
        Label used in stats reporting.
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int,
        assoc: int,
        policy: ReplacementPolicy = ReplacementPolicy.LRU,
        name: str = "cache",
    ) -> None:
        check_positive(size_bytes, "size_bytes")
        check_positive(line_bytes, "line_bytes")
        check_positive(assoc, "assoc")
        if line_bytes & (line_bytes - 1):
            raise InputError(f"line_bytes must be a power of two, got {line_bytes}")
        lines = size_bytes // line_bytes
        if lines * line_bytes != size_bytes:
            raise InputError("size_bytes must be a multiple of line_bytes")
        if lines < assoc:
            raise InputError(
                f"capacity of {lines} lines cannot hold one {assoc}-way set"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.assoc = assoc
        # Odd associativities (the paper's 3-way remark) rarely divide the
        # line count evenly; floor the set count, so effective capacity is
        # num_sets * assoc lines (<= size_bytes, as on real odd-way caches).
        self.num_sets = lines // assoc
        self.size_bytes = self.num_sets * assoc * line_bytes
        self.policy = policy
        self.stats = CacheStats()
        # set index -> OrderedDict {tag: dirty}; order == recency (LRU)
        # or insertion (FIFO), oldest first.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> tuple[int, int]:
        line_addr = address // self.line_bytes
        return line_addr % self.num_sets, line_addr // self.num_sets

    def contains(self, address: int) -> bool:
        """Non-mutating presence probe (no stats impact)."""
        set_idx, tag = self._locate(address)
        return tag in self._sets[set_idx]

    def access(self, address: int, write: bool = False) -> tuple[bool, int | None]:
        """Look up one byte address; fill on miss.

        Returns ``(hit, evicted_line_addr)`` where ``evicted_line_addr``
        is the line address of a victim evicted to make room (None when
        no eviction happened).  A dirty victim additionally bumps the
        writeback counter.
        """
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        evicted: int | None = None
        if tag in ways:
            hit = True
            self.stats.hits += 1
            if self.policy is ReplacementPolicy.LRU:
                ways.move_to_end(tag)
            if write:
                ways[tag] = True
        else:
            hit = False
            self.stats.misses += 1
            if len(ways) >= self.assoc:
                victim_tag, dirty = ways.popitem(last=False)
                self.stats.evictions += 1
                if dirty:
                    self.stats.writebacks += 1
                evicted = victim_tag * self.num_sets + set_idx
            ways[tag] = write
        return hit, evicted

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address`` (coherence); True if present."""
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        if tag in ways:
            del ways[tag]
            return True
        return False

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines written back."""
        dirty = 0
        for ways in self._sets:
            dirty += sum(1 for d in ways.values() if d)
            ways.clear()
        self.stats.writebacks += dirty
        return dirty

    @property
    def resident_lines(self) -> int:
        """Lines currently cached."""
        return sum(len(ways) for ways in self._sets)
