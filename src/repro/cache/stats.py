"""Counters for cache simulations."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheStats", "HierarchyStats"]


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counts for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """misses / accesses (0.0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """hits / accesses (0.0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def add(self, other: "CacheStats") -> None:
        """Accumulate another cache's counters."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.writebacks += other.writebacks


@dataclass(slots=True)
class HierarchyStats:
    """Aggregated hierarchy counters for one simulated run.

    ``dram_accesses`` counts line fills that had to come from memory —
    the paper's figure of merit for Section IV (every DRAM touch is the
    "ten-fold higher access latency" event SPM exists to avoid).
    ``coherence_invalidations`` counts cross-core invalidations of
    dirty/shared lines, the "extremely high overhead" coherence events.
    """

    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    l3: CacheStats = field(default_factory=CacheStats)
    dram_accesses: int = 0
    coherence_invalidations: int = 0

    @property
    def total_accesses(self) -> int:
        """Element accesses issued to the hierarchy (== L1 lookups)."""
        return self.l1.accesses

    def miss_per_kilo_access(self, level: str = "dram") -> float:
        """Misses (or DRAM fills) per 1000 element accesses."""
        if not self.total_accesses:
            return 0.0
        count = {
            "l1": self.l1.misses,
            "l2": self.l2.misses,
            "l3": self.l3.misses,
            "dram": self.dram_accesses,
        }[level]
        return 1000.0 * count / self.total_accesses
