"""Memory-access traces and address mapping.

Algorithms emit traces in *element* coordinates — ``(core, array name,
element index, is_write)`` — which :class:`AddressMap` converts to byte
addresses by laying the named arrays out contiguously (4 KB aligned,
like separate allocations).  Per-core streams are interleaved
round-robin by :func:`interleave_round_robin` to model p cores
progressing at the same rate, which is exactly the lockstep abstraction
the paper's load-balance result justifies (Corollary 7: every core does
identical work per step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import InputError
from ..validation import check_positive

__all__ = ["Access", "AddressMap", "TraceBuilder", "interleave_round_robin"]


@dataclass(frozen=True, slots=True)
class Access:
    """One element-granularity memory access by one core."""

    core: int
    array: str
    index: int
    write: bool = False


class AddressMap:
    """Lays named arrays out in a flat byte address space.

    Parameters
    ----------
    arrays:
        ``name -> element count`` in layout order.
    element_bytes:
        Bytes per element (4 for the paper's int32 workloads).
    alignment:
        Base alignment per array (default 4096, one page).
    """

    def __init__(
        self,
        arrays: dict[str, int],
        element_bytes: int = 4,
        alignment: int = 4096,
    ) -> None:
        check_positive(element_bytes, "element_bytes")
        check_positive(alignment, "alignment")
        self.element_bytes = element_bytes
        self._base: dict[str, int] = {}
        self._len: dict[str, int] = {}
        cursor = 0
        for name, count in arrays.items():
            if count < 0:
                raise InputError(f"array {name!r} has negative length")
            self._base[name] = cursor
            self._len[name] = count
            cursor += count * element_bytes
            cursor = (cursor + alignment - 1) // alignment * alignment

    def byte_address(self, array: str, index: int) -> int:
        """Byte address of ``array[index]``."""
        try:
            base = self._base[array]
        except KeyError:
            raise InputError(f"unmapped array {array!r}") from None
        if not 0 <= index < self._len[array]:
            raise InputError(
                f"{array}[{index}] out of bounds (len {self._len[array]})"
            )
        return base + index * self.element_bytes

    def footprint_bytes(self) -> int:
        """Total mapped bytes (upper edge of the last array)."""
        return max(
            (self._base[n] + self._len[n] * self.element_bytes for n in self._base),
            default=0,
        )


class TraceBuilder:
    """Collects per-core access lists with a tiny emitting API."""

    def __init__(self, cores: int) -> None:
        check_positive(cores, "cores")
        self.cores = cores
        self.streams: list[list[Access]] = [[] for _ in range(cores)]

    def read(self, core: int, array: str, index: int) -> None:
        """Record a read of ``array[index]`` by ``core``."""
        self.streams[core].append(Access(core, array, index, write=False))

    def write(self, core: int, array: str, index: int) -> None:
        """Record a write of ``array[index]`` by ``core``."""
        self.streams[core].append(Access(core, array, index, write=True))

    @property
    def total_accesses(self) -> int:
        return sum(len(s) for s in self.streams)


def interleave_round_robin(streams: Sequence[Sequence[Access]]) -> Iterator[Access]:
    """Merge per-core streams one access per core per round.

    Cores with exhausted streams drop out; order within a round is core
    id, which is deterministic and unbiased for the aggregate counters
    the experiments report.
    """
    iters = [iter(s) for s in streams]
    live = list(range(len(iters)))
    while live:
        next_live = []
        for c in live:
            try:
                yield next(iters[c])
                next_live.append(c)
            except StopIteration:
                pass
        live = next_live
