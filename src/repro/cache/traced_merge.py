"""Trace emitters: the merge algorithms as memory-access streams.

Each function reuses the *production* partition logic from
:mod:`repro.core.merge_path` / :mod:`repro.core.segmented_merge` (so the
traced access pattern is the real one), but instead of moving data it
records the element accesses a straightforward two-pointer
implementation performs:

* sequential merge: read A[i], read B[j] alternately, write S[k];
* Algorithm 1: p concurrent per-segment merges, interleaved round-robin
  — each core streams through its own distant regions of A, B and S
  simultaneously, which is what floods a small shared cache;
* Algorithm 2 (SPM): the same, but block by block, so at any instant
  only ~L elements of each array are live.

Binary-search probe accesses are included (they are the paper's
concurrent-read events) ahead of each core's merge stream.
"""

from __future__ import annotations

import numpy as np

from ..core.merge_path import diagonal_bounds, partition_merge_path
from ..core.segmented_merge import plan_segments
from ..types import Partition, Segment
from ..validation import as_array, check_mergeable, check_positive
from .trace import Access, TraceBuilder, interleave_round_robin

__all__ = [
    "trace_sequential_merge",
    "trace_parallel_merge",
    "trace_segmented_merge",
]


def _emit_search(
    tb: TraceBuilder, core: int, a: np.ndarray, b: np.ndarray, d: int
) -> None:
    """Record the probe reads of one diagonal binary search."""
    lo, hi = diagonal_bounds(d, len(a), len(b))
    while lo < hi:
        mid = (lo + hi) // 2
        tb.read(core, "A", mid)
        tb.read(core, "B", d - 1 - mid)
        if a[mid] <= b[d - 1 - mid]:
            lo = mid + 1
        else:
            hi = mid


def _emit_segment_merge(
    tb: TraceBuilder,
    core: int,
    a: np.ndarray,
    b: np.ndarray,
    seg: Segment,
    a_offset: int = 0,
    b_offset: int = 0,
    out_offset: int = 0,
) -> None:
    """Record a two-pointer merge of one segment.

    ``a``/``b`` are the arrays the segment's coordinates refer to;
    offsets translate to global trace coordinates (used by SPM, whose
    sub-segments are window-relative).
    """
    i, j = seg.a_start, seg.b_start
    k = seg.out_start
    while i < seg.a_end and j < seg.b_end:
        tb.read(core, "A", a_offset + i)
        tb.read(core, "B", b_offset + j)
        if a[i] <= b[j]:
            i += 1
        else:
            j += 1
        tb.write(core, "S", out_offset + k)
        k += 1
    while i < seg.a_end:
        tb.read(core, "A", a_offset + i)
        tb.write(core, "S", out_offset + k)
        i += 1
        k += 1
    while j < seg.b_end:
        tb.read(core, "B", b_offset + j)
        tb.write(core, "S", out_offset + k)
        j += 1
        k += 1


def trace_sequential_merge(a, b) -> list[Access]:
    """Access stream of a single-core sequential merge."""
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    tb = TraceBuilder(1)
    whole = Segment(0, 0, len(a), 0, len(b), 0, len(a) + len(b))
    _emit_segment_merge(tb, 0, a, b, whole)
    return tb.streams[0]


def trace_parallel_merge(a, b, p: int) -> list[Access]:
    """Interleaved access stream of Algorithm 1 on ``p`` cores."""
    check_positive(p, "p")
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    tb = TraceBuilder(p)
    part: Partition = partition_merge_path(a, b, p, check=False)
    n = len(a) + len(b)
    for pid, seg in enumerate(part.segments):
        d = (pid * n) // p
        if 0 < d < n:
            _emit_search(tb, pid, a, b, d)
        d_end = ((pid + 1) * n) // p
        if 0 < d_end < n:
            _emit_search(tb, pid, a, b, d_end)
        _emit_segment_merge(tb, pid, a, b, seg)
    return list(interleave_round_robin(tb.streams))


def trace_segmented_merge(a, b, p: int, L: int) -> list[Access]:
    """Interleaved access stream of Algorithm 2 (SPM) on ``p`` cores.

    Blocks are serial (their streams are concatenated); within a block
    the ``p`` sub-segment streams are interleaved, including the
    window-confined partition searches.
    """
    check_positive(p, "p")
    check_positive(L, "L")
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    out: list[Access] = []
    for plan in plan_segments(a, b, p, L, check=False):
        blk = plan.block
        wa = a[blk.a_start : blk.a_end]
        wb = b[blk.b_start : blk.b_end]
        tb = TraceBuilder(p)
        lb = blk.length
        for pid, seg in enumerate(plan.partition.segments):
            d = (pid * lb) // p
            if 0 < d < lb:
                # Window-relative search; shift probe indices to global.
                lo, hi = diagonal_bounds(d, len(wa), len(wb))
                while lo < hi:
                    mid = (lo + hi) // 2
                    tb.read(pid, "A", blk.a_start + mid)
                    tb.read(pid, "B", blk.b_start + d - 1 - mid)
                    if wa[mid] <= wb[d - 1 - mid]:
                        lo = mid + 1
                    else:
                        hi = mid
            _emit_segment_merge(
                tb, pid, wa, wb, seg,
                a_offset=blk.a_start,
                b_offset=blk.b_start,
                out_offset=blk.out_start,
            )
        out.extend(interleave_round_robin(tb.streams))
    return out
