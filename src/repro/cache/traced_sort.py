"""Trace emitters for full sorts: cache-aware vs cache-oblivious.

Section IV's discussion distinguishes the paper's *cache-aware*
approach (explicit ``C``-sized blocks) from the *cache-oblivious*
family it cites ([11–13]).  The cleanest executable comparison:

* :func:`trace_recursive_mergesort` — plain recursive (top-down) merge
  sort with an auxiliary buffer.  This is the textbook cache-oblivious
  algorithm: it makes ``Θ((N/B)·log2(N/C))`` cache misses on an ideal
  cache *without knowing C* — asymptotically within a log-base factor
  of optimal, the classic oblivious trade-off.
* :func:`trace_cache_aware_sort` — the paper's Section IV.C structure:
  sort ``C/3``-sized blocks (traced as in-block recursive sorts, which
  are fully cache-resident), then SPM merge rounds.

Replaying both through the same simulated cache quantifies what
awareness of ``C`` buys (and costs): the aware sort's merge rounds run
at the compulsory floor; the oblivious sort pays extra fills whenever a
recursion level's working set first exceeds ``C``.
"""

from __future__ import annotations

import numpy as np

from ..core.segmented_merge import block_length
from ..validation import as_array, check_positive
from .trace import Access, TraceBuilder
from .traced_merge import trace_segmented_merge

__all__ = ["trace_recursive_mergesort", "trace_cache_aware_sort"]


def trace_recursive_mergesort(x) -> tuple[list[Access], np.ndarray]:
    """Access stream of top-down merge sort of array ``X`` (scratch ``Y``).

    Returns ``(trace, sorted_copy)``.  Single core; each merge level
    reads its ranges from ``X``, writes ``Y``, then copies back — the
    standard formulation whose recursion makes it cache-oblivious.
    """
    x = as_array(x, "x")
    tb = TraceBuilder(1)
    data = x.copy()

    def sort(lo: int, hi: int) -> None:
        if hi - lo <= 1:
            return
        mid = (lo + hi) // 2
        sort(lo, mid)
        sort(mid, hi)
        # merge X[lo:mid] + X[mid:hi] -> Y[lo:hi]
        i, j, k = lo, mid, lo
        while i < mid and j < hi:
            tb.read(0, "X", i)
            tb.read(0, "X", j)
            if data[i] <= data[j]:
                tb.write(0, "Y", k)
                i += 1
            else:
                tb.write(0, "Y", k)
                j += 1
            k += 1
        while i < mid:
            tb.read(0, "X", i)
            tb.write(0, "Y", k)
            i += 1
            k += 1
        while j < hi:
            tb.read(0, "X", j)
            tb.write(0, "Y", k)
            j += 1
            k += 1
        # the data movement itself (host-side, for correctness)
        merged = np.concatenate([data[lo:mid], data[mid:hi]])
        merged.sort(kind="mergesort")
        data[lo:hi] = merged
        # copy back Y -> X
        for idx in range(lo, hi):
            tb.read(0, "Y", idx)
            tb.write(0, "X", idx)

    import sys

    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, 10_000))
    try:
        sort(0, len(x))
    finally:
        sys.setrecursionlimit(old)
    return tb.streams[0], data


def trace_cache_aware_sort(
    x, p: int, cache_elements: int
) -> tuple[list[Access], np.ndarray]:
    """Access stream of the Section IV.C cache-aware sort.

    Block-local sorts are traced as single-core recursive sorts confined
    to their block (their whole working set fits in cache by
    construction, so their extra log-factor of traffic all hits);
    merge rounds are SPM traces with ``p`` cores.  Address space:
    ``X`` (data) / ``Y`` (scratch), matching the oblivious trace for a
    fair replay.
    """
    check_positive(p, "p")
    check_positive(cache_elements, "cache_elements")
    x = as_array(x, "x")
    n = len(x)
    L = block_length(cache_elements)
    trace: list[Access] = []
    runs: list[np.ndarray] = []
    # Stage 1+2: block-local sorts (traced within block offsets).
    for lo in range(0, n, L):
        chunk = x[lo : lo + L]
        sub_trace, sorted_chunk = trace_recursive_mergesort(chunk)
        trace.extend(
            Access(a.core, a.array, a.index + lo, a.write) for a in sub_trace
        )
        runs.append(sorted_chunk)
    # Stage 3: SPM merge rounds; map the pairwise merges onto X/Y with
    # alternating roles per round (ping-pong), indices offset per pair.
    offset_runs = [(lo, run) for lo, run in zip(range(0, n, L), runs)]
    src, dst = "X", "Y"
    while len(offset_runs) > 1:
        next_runs = []
        for i in range(0, len(offset_runs) - 1, 2):
            (lo_a, run_a), (_lo_b, run_b) = offset_runs[i], offset_runs[i + 1]
            pair_trace = trace_segmented_merge(run_a, run_b, p, L)
            for acc in pair_trace:
                if acc.array == "A":
                    trace.append(Access(acc.core, src, lo_a + acc.index, acc.write))
                elif acc.array == "B":
                    trace.append(
                        Access(acc.core, src, lo_a + len(run_a) + acc.index,
                               acc.write)
                    )
                else:  # output
                    trace.append(Access(acc.core, dst, lo_a + acc.index, acc.write))
            merged = np.concatenate([run_a, run_b])
            merged.sort(kind="mergesort")
            next_runs.append((lo_a, merged))
        if len(offset_runs) % 2:
            next_runs.append(offset_runs[-1])
        offset_runs = next_runs
        src, dst = dst, src
    return trace, offset_runs[0][1]
