"""Conformance subsystem: one oracle, every implementation.

The paper's claims are *invariants* — the merge path crosses each cross
diagonal at a unique flip point (Proposition 13), ``p`` equispaced
diagonals yield segments whose sizes differ by at most one (Theorem 14 /
Corollary 7), parallel merge is lock-free because output slices are
disjoint, and every merge in the package is stable (``A`` before equal
``B``).  This package machine-checks all of them uniformly, against
every merge and sort entry point in the codebase:

``registry``
    Enumerates each implementation (core kernels, execution backends,
    baselines, GPU model, PRAM programs, k-way, streaming, in-place,
    set operations) behind a uniform callable signature.
``workloads``
    Deterministic case generation: adversarial patterns, heavy
    duplicates, empty/singleton inputs, ``p >> N``, and signed-zero
    stability probes (``-0.0`` in A, ``+0.0`` in B compare equal but
    are distinguishable by sign bit, making tie order observable even
    through value-only APIs).
``fuzzer``
    Drives each implementation against the sequential oracle and
    shrinks any mismatch to a small reproducer.
``invariants``
    Theorem 14 balance, Proposition 13 flip-point uniqueness, and
    output-slice disjointness checkers.
``races``
    Per-slice write-set tracking on the threads backend: flags
    overlapping writes or writes outside a task's declared slice.
``runner``
    ``run_conformance(tier=...)`` — the ``python -m repro conformance``
    entry point and the pytest quick tier.
``chaos``
    The fault-injection tier (``run_conformance(..., chaos=True)`` /
    ``--chaos``): every injectable implementation re-runs through
    fault-wrapped backends and must still match the oracle via the
    resilience layer's retries, timeouts, and speculation.
"""

from .chaos import ChaosBackendCache

from .fuzzer import Mismatch, compare_merge, compare_sort, minimize_merge_case
from .invariants import (
    check_flip_point_uniqueness,
    check_partition_balance,
    check_slice_disjointness,
)
from .races import RaceFinding, audited_parallel_merge
from .registry import Implementation, build_registry
from .runner import (
    DEFAULT_SEED,
    ConformanceReport,
    ImplementationReport,
    render_report,
    run_conformance,
)
from .workloads import MergeCase, SortCase, merge_cases, sort_cases

__all__ = [
    "Implementation",
    "build_registry",
    "MergeCase",
    "SortCase",
    "merge_cases",
    "sort_cases",
    "Mismatch",
    "compare_merge",
    "compare_sort",
    "minimize_merge_case",
    "check_partition_balance",
    "check_flip_point_uniqueness",
    "check_slice_disjointness",
    "RaceFinding",
    "audited_parallel_merge",
    "ChaosBackendCache",
    "run_conformance",
    "render_report",
    "ConformanceReport",
    "ImplementationReport",
    "DEFAULT_SEED",
]
