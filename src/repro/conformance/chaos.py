"""Chaos tier: conformance under deterministic fault injection.

The differential oracle already proves every implementation correct on
a calm machine; the chaos tier proves the *resilient* execution path
correct on a hostile one.  It rebuilds the registry over a
:class:`ChaosBackendCache` whose backends are wrapped as::

    ResilientBackend(FaultyBackend(real backend, FaultInjector), policy)

so every task batch an injectable implementation dispatches runs under
seeded injected errors, stragglers, hangs, and (on the process pool)
real worker deaths — and must still produce oracle-identical output via
retries, timeout abandonment, and speculation.  Telemetry deltas around
each implementation's cases attribute the recovery work per verdict.

Fault decisions fire *before* the task body (see
:mod:`repro.resilience.faults`), so even non-idempotent task sets (the
in-place merge) are safe to retry: a faulted attempt never ran.
Speculation is enabled only on the thread pool, whose merge tasks are
idempotent disjoint-slice writers (Theorem 14).

Two run-level checks complete the tier:

* ``chaos-worker-death`` — a scripted SIGKILL of a process-pool worker
  mid-merge must surface as a prompt ``worker-death``
  :class:`~repro.errors.BatchError` on the bare backend (no deadlock)
  and be transparently recovered by the resilient wrapper;
* ``chaos-degradation`` — a chain headed by a permanently failing
  backend must fall through to ``serial`` with a
  :class:`~repro.resilience.DegradationWarning` and still produce the
  oracle answer.
"""

from __future__ import annotations

import time
import warnings
import zlib

import numpy as np

from ..backends.base import Backend
from ..errors import BackendError, BatchError
from ..obs import MetricsRegistry
from ..resilience import (
    DegradationWarning,
    DegradingBackend,
    FaultInjector,
    FaultyBackend,
    ResilientBackend,
    RetryPolicy,
)
from .fuzzer import run_kway_case, run_merge_case, run_sort_case
from .registry import BackendCache, Implementation
from .workloads import KwayCase, MergeCase, SortCase

__all__ = ["ChaosBackendCache", "chaos_check", "chaos_run_checks"]

#: Per-impl case budget: enough dispatches to make injection certain
#: (``always_first`` guarantees one regardless), few enough to keep the
#: quick tier fast.
_MAX_CASES = 4
_MIN_ELEMENTS = 8
_MAX_ELEMENTS = 512

_TELEMETRY_KEYS = (
    "dispatches", "retries", "timeouts", "speculations", "worker_deaths"
)


def _chaos_seed(base: int, salt: str) -> int:
    """Stable per-salt seed (no Python-hash randomization)."""
    return (base << 16) ^ zlib.crc32(salt.encode())


class ChaosBackendCache(BackendCache):
    """A :class:`BackendCache` whose backends come fault-injected.

    ``get(name)`` returns the real backend wrapped in
    ``ResilientBackend(FaultyBackend(...))`` with a per-backend injector
    and recovery policy.  :meth:`arm` re-seeds the injectors and resets
    task-identity tracking per implementation, so each implementation's
    very first dispatch is guaranteed a fault (``always_first``) and
    :meth:`snapshot` deltas attribute injections and recoveries to it.
    """

    def __init__(self, seed: int = 0, max_workers: int = 4) -> None:
        super().__init__(max_workers)
        self._seed = seed
        self._wrapped: dict[str, tuple[FaultyBackend, FaultInjector,
                                       ResilientBackend]] = {}
        #: Unified metrics registry: every wrapped backend's telemetry
        #: emits its recovery counters here, so the chaos verdict
        #: deltas come from the same counting path the rest of the
        #: observability layer uses.
        self.metrics = MetricsRegistry()

    def _configure(self, name: str) -> tuple[FaultInjector, RetryPolicy]:
        seed = _chaos_seed(self._seed, name)
        if name == "threads":
            # The full menu: errors, stragglers, hangs; recovery uses
            # retries, per-attempt deadlines, and speculation (safe:
            # thread tasks are idempotent disjoint-slice writers).
            injector = FaultInjector(
                seed, error_rate=0.15, delay_rate=0.2, hang_rate=0.03,
                delay_s=0.03, hang_s=1.5, always_first="error",
            )
            policy = RetryPolicy(
                max_retries=3, timeout_s=0.5, backoff_base_s=0.002,
                backoff_cap_s=0.01, seed=seed, speculate=True,
                straggler_factor=3.0, speculation_floor_s=0.05,
            )
        elif name == "processes":
            # Scripted first-dispatch worker death plus transient
            # errors; no speculation (keep the pool load bounded).
            injector = FaultInjector(
                seed, error_rate=0.1, always_first="death",
            )
            policy = RetryPolicy(
                max_retries=3, timeout_s=10.0, backoff_base_s=0.01,
                backoff_cap_s=0.05, seed=seed, speculate=False,
            )
        elif name == "serial":
            # Transient errors only; no deadlines (serial cannot hang
            # without hanging the suite) and no speculation (the
            # in-place merge tasks are not idempotent).
            injector = FaultInjector(
                seed, error_rate=0.2, always_first="error",
            )
            policy = RetryPolicy(
                max_retries=3, timeout_s=None, backoff_base_s=0.002,
                backoff_cap_s=0.01, seed=seed, speculate=False,
            )
        else:  # simulated / mpi: resilience layer only, no injection
            injector = FaultInjector(seed, armed=False)
            policy = RetryPolicy(max_retries=1, seed=seed, speculate=False)
        return injector, policy

    def get(self, name: str) -> Backend:
        entry = self._wrapped.get(name)
        if entry is None:
            real = super().get(name)
            injector, policy = self._configure(name)
            faulty = FaultyBackend(real, injector)
            resilient = ResilientBackend(faulty, policy, owns_inner=False)
            resilient.telemetry.bind(self.metrics)
            entry = (faulty, injector, resilient)
            self._wrapped[name] = entry
        return entry[2]

    def arm(self, salt: str) -> None:
        """Fresh injection epoch for one implementation's cases."""
        for faulty, injector, _resilient in self._wrapped.values():
            faulty.reset()
            injector.rearm(_chaos_seed(self._seed, f"{salt}:{injector.seed}"))

    def disarm(self) -> None:
        for _faulty, injector, _resilient in self._wrapped.values():
            injector.disarm()

    def snapshot(self) -> dict[str, int]:
        """Cumulative injection + recovery counters across all backends.

        Recovery counts are read off the unified metrics registry every
        wrapped backend's telemetry emits into (``resilience.*``
        counters) — the same numbers ``parallel_merge(metrics=...)``
        exposes — so there is no chaos-private counting path.
        """
        counts = {"injected": 0}
        for _faulty, injector, _resilient in self._wrapped.values():
            counts["injected"] += injector.injected
        for key in _TELEMETRY_KEYS:
            counts[key] = int(self.metrics.value(f"resilience.{key}"))
        return counts

    def close(self) -> None:
        for _faulty, _injector, resilient in self._wrapped.values():
            resilient.close()  # owns_inner=False: real backends below
        self._wrapped.clear()
        super().close()


def _select(cases, size):
    picked = []
    for case in cases:
        if _MIN_ELEMENTS <= size(case) <= _MAX_ELEMENTS:
            picked.append(case)
        if len(picked) >= _MAX_CASES:
            break
    return picked


def chaos_check(
    impl: Implementation,
    cache: ChaosBackendCache,
    mcases: list[MergeCase],
    scases: list[SortCase],
    kcases: list[KwayCase],
):
    """Run one implementation's chaos cases; returns a ``CheckResult``.

    ``impl`` must come from a registry built over ``cache`` so its
    closures dispatch through the fault-injected backends.
    """
    from .runner import CheckResult

    if not impl.injectable:
        return CheckResult(
            "chaos", "skip", "does not route tasks through the backend cache"
        )
    cache.arm(impl.name)
    before = cache.snapshot()
    ran = 0
    failure: str | None = None
    if impl.kind in ("merge", "keyed", "setop"):
        selected = [(c.name, lambda c=c: run_merge_case(impl, c))
                    for c in _select(mcases, lambda c: c.total)]
    elif impl.kind == "sort":
        selected = [(c.name, lambda c=c: run_sort_case(impl, c))
                    for c in _select(scases, lambda c: len(c.x))]
    else:  # kway
        selected = [(c.name, lambda c=c: run_kway_case(impl, c))
                    for c in _select(kcases, lambda c: c.total)]
    for case_name, run in selected:
        ran += 1
        detail = run()
        if detail is not None:
            failure = f"{case_name}: {detail}"
            break
    after = cache.snapshot()
    delta = {k: after[k] - before[k] for k in after}
    stats = (
        f"injected={delta['injected']} retries={delta['retries']} "
        f"timeouts={delta['timeouts']} speculations={delta['speculations']} "
        f"worker_deaths={delta['worker_deaths']}"
    )
    if failure is not None:
        return CheckResult(
            "chaos", "fail",
            f"under fault injection: {failure} ({stats})", cases=ran,
        )
    if ran == 0:
        return CheckResult("chaos", "skip", "no cases within size budget")
    if delta["injected"] == 0:
        return CheckResult(
            "chaos", "fail",
            "no faults were injected — the chaos tier has lost its teeth",
            cases=ran,
        )
    return CheckResult(
        "chaos", "pass", f"{stats} over {ran} case(s)", cases=ran
    )


# ----------------------------------------------------------------------
# Run-level checks
# ----------------------------------------------------------------------
def _worker_death_check(seed: int):
    """A killed pool worker must fail fast on the bare backend and be
    recovered transparently by the resilient wrapper."""
    from ..backends.processes import ProcessBackend, SharedMergeArena
    from ..core.merge_path import partition_merge_path
    from .runner import CheckResult

    rng = np.random.default_rng(seed)
    a = np.sort(rng.integers(0, 10_000, 600))
    b = np.sort(rng.integers(0, 10_000, 600))
    partition = partition_merge_path(a, b, 4, check=False)
    expected = np.sort(np.concatenate([a, b]), kind="stable")

    # 1. Bare backend: scripted death -> prompt BatchError, no deadlock.
    injector = FaultInjector(seed, scripted={(0, 0): "death"})
    bare = FaultyBackend(ProcessBackend(max_workers=2), injector)
    t0 = time.monotonic()
    try:
        with SharedMergeArena(a, b, partition) as arena:
            try:
                bare.run_tasks(arena.tasks())
            except BatchError as exc:
                detect_s = time.monotonic() - t0
                kinds = {f.kind for f in exc.failures}
                if "worker-death" not in kinds:
                    return CheckResult(
                        "chaos-worker-death", "fail",
                        f"killed worker surfaced as {sorted(kinds)}, "
                        "not 'worker-death'",
                    )
            else:
                return CheckResult(
                    "chaos-worker-death", "fail",
                    "killed worker raised no BatchError",
                )
    finally:
        bare.close()
    if detect_s > 30.0:
        return CheckResult(
            "chaos-worker-death", "fail",
            f"death detection took {detect_s:.1f}s — effectively a deadlock",
        )

    # 2. Resilient wrapper: same scripted death, merged output must
    # still match the oracle and the telemetry must show the recovery.
    injector2 = FaultInjector(seed, scripted={(0, 0): "death"})
    resilient = ResilientBackend(
        FaultyBackend(ProcessBackend(max_workers=2), injector2),
        RetryPolicy(max_retries=2, timeout_s=10.0, backoff_base_s=0.01,
                    seed=seed, speculate=False),
    )
    try:
        merged = resilient.merge_partition(a, b, partition)
    except BackendError as exc:
        return CheckResult(
            "chaos-worker-death", "fail",
            f"resilient wrapper failed to recover: {exc}",
        )
    finally:
        telemetry = resilient.last_batch
        resilient.close()
    if not np.array_equal(merged, expected):
        return CheckResult(
            "chaos-worker-death", "fail",
            "recovered merge output differs from the oracle",
        )
    if telemetry is None or telemetry.worker_deaths == 0 or telemetry.retries == 0:
        return CheckResult(
            "chaos-worker-death", "fail",
            "recovery left no worker-death/retry telemetry",
        )
    return CheckResult(
        "chaos-worker-death", "pass",
        f"bare detection in {detect_s:.2f}s; recovered with "
        f"{telemetry.describe()}", cases=2,
    )


def _degradation_check(seed: int):
    """A permanently failing level must degrade to serial with a warning
    and the oracle answer."""
    from ..backends.serial import SerialBackend
    from ..core.parallel_merge import parallel_merge
    from .runner import CheckResult

    rng = np.random.default_rng(seed)
    a = np.sort(rng.integers(0, 1000, 200))
    b = np.sort(rng.integers(0, 1000, 200))
    expected = np.sort(np.concatenate([a, b]), kind="stable")

    doomed = FaultyBackend(
        SerialBackend(),
        FaultInjector(seed, error_rate=1.0, faulty_attempts=None),
    )
    chain = DegradingBackend(
        [doomed, "serial"],
        policy=RetryPolicy(max_retries=1, backoff_base_s=0.001, seed=seed,
                           speculate=False),
    )
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            merged = parallel_merge(a, b, 4, backend=chain)
    except BackendError as exc:
        return CheckResult(
            "chaos-degradation", "fail", f"chain failed outright: {exc}"
        )
    finally:
        chain.close()
    if not np.array_equal(merged, expected):
        return CheckResult(
            "chaos-degradation", "fail",
            "degraded merge output differs from the oracle",
        )
    degradations = [
        w for w in caught if issubclass(w.category, DegradationWarning)
    ]
    if not degradations:
        return CheckResult(
            "chaos-degradation", "fail",
            "fallback happened without a DegradationWarning",
        )
    if chain.active_backend != "serial":
        return CheckResult(
            "chaos-degradation", "fail",
            f"active level is {chain.active_backend!r}, expected 'serial'",
        )
    return CheckResult(
        "chaos-degradation", "pass",
        f"fell back to serial with {len(degradations)} warning(s): "
        f"{str(degradations[0].message)[:80]}", cases=1,
    )


def chaos_run_checks(seed: int):
    """The run-level chaos checks (worker death + degradation)."""
    return (_worker_death_check(seed), _degradation_check(seed))
