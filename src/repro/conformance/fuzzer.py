"""Differential oracle fuzzing with reproducer minimization.

Every implementation is driven over the deterministic workload grid and
compared against the sequential oracle (stable sort of the
concatenation — the definitionally correct stable merge).  A mismatch
is captured as a structured :class:`Mismatch` and then *shrunk*: the
minimizer greedily deletes chunks and single elements from the inputs
(and lowers ``p``) while the failure persists, so the report carries a
small, copy-pasteable reproducer rather than a 250-element dump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .invariants import stable_merge_oracle
from .registry import Implementation
from .workloads import KwayCase, MergeCase, SortCase

__all__ = [
    "Mismatch",
    "compare_merge",
    "compare_keyed",
    "compare_setop",
    "compare_kway",
    "compare_sort",
    "run_merge_case",
    "run_sort_case",
    "run_kway_case",
    "minimize_merge_case",
    "minimize_sort_case",
]

#: Cap on oracle re-runs during one minimization, so a pathological
#: shrink cannot blow the tier's time budget.
SHRINK_BUDGET = 400


@dataclass(frozen=True)
class Mismatch:
    """A confirmed implementation/oracle divergence, minimized.

    ``inputs`` holds the *minimized* failing inputs; ``reproducer`` is a
    self-contained snippet that rebuilds them and re-runs the check.
    """

    impl: str
    case: str
    detail: str
    inputs: dict[str, object]
    reproducer: str

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return (
            f"{self.impl} failed on case {self.case!r}: {self.detail}\n"
            f"reproducer:\n{self.reproducer}"
        )


def _first_divergence(got: np.ndarray, ref: np.ndarray) -> str:
    if len(got) != len(ref):
        return f"output length {len(got)} != expected {len(ref)}"
    diff = np.nonzero(got != ref)[0]
    if diff.size:
        k = int(diff[0])
        return f"first divergence at index {k}: got {got[k]!r}, expected {ref[k]!r}"
    return "outputs differ"


def compare_merge(
    out: object, a: np.ndarray, b: np.ndarray, *, stable: bool
) -> str | None:
    """Return a failure description, or ``None`` when ``out`` matches the
    oracle (including signed-zero tie order for stable implementations)."""
    ref = stable_merge_oracle(a, b)
    if not isinstance(out, np.ndarray):
        return f"returned {type(out).__name__}, expected ndarray"
    if out.shape != ref.shape:
        return f"output length {len(out)} != |A|+|B| = {len(ref)}"
    if not np.array_equal(out, ref):
        return _first_divergence(out, ref)
    if stable and np.issubdtype(ref.dtype, np.floating):
        got_signs = np.signbit(out)
        ref_signs = np.signbit(ref)
        if not np.array_equal(got_signs, ref_signs):
            k = int(np.nonzero(got_signs != ref_signs)[0][0])
            return (
                f"stability violation: tie order differs at index {k} "
                f"(signed-zero probe: A's -0.0 must precede B's +0.0)"
            )
    return None


def compare_keyed(out: object, a: np.ndarray, b: np.ndarray) -> str | None:
    """Check a gather-index permutation against the stable argsort oracle."""
    ref = np.argsort(np.concatenate([a, b]), kind="stable")
    if not isinstance(out, np.ndarray):
        return f"returned {type(out).__name__}, expected index ndarray"
    if out.shape != ref.shape:
        return f"permutation length {len(out)} != |A|+|B| = {len(ref)}"
    if not np.array_equal(np.asarray(out, dtype=np.int64), ref):
        k = int(np.nonzero(np.asarray(out, dtype=np.int64) != ref)[0][0])
        return (
            f"gather permutation differs from stable order at position {k}: "
            f"got index {int(out[k])}, expected {int(ref[k])}"
        )
    return None


#: std::set_* multiset semantics, per distinct value with multiplicity
#: ``ca`` in A and ``cb`` in B.
_SETOP_COUNT: dict[str, Callable[[int, int], int]] = {
    "union": lambda ca, cb: max(ca, cb),
    "intersection": lambda ca, cb: min(ca, cb),
    "difference": lambda ca, cb: max(ca - cb, 0),
    "symmetric_difference": lambda ca, cb: abs(ca - cb),
}


def compare_setop(out: object, a: np.ndarray, b: np.ndarray, op: str) -> str | None:
    """Check a multiset operation against an independent Counter oracle.

    Deliberately *not* built on the production count-space machinery:
    plain ``collections.Counter`` over Python scalars, so the oracle
    shares no code with the implementation under test.
    """
    from collections import Counter

    counts_a = Counter(a.tolist())
    counts_b = Counter(b.tolist())
    combine = _SETOP_COUNT[op]
    ref_list: list = []
    for v in sorted(set(counts_a) | set(counts_b)):
        ref_list.extend([v] * combine(counts_a[v], counts_b[v]))
    if not isinstance(out, np.ndarray):
        return f"returned {type(out).__name__}, expected ndarray"
    if len(out) != len(ref_list):
        return f"output length {len(out)} != expected {len(ref_list)}"
    ref = np.asarray(ref_list, dtype=out.dtype) if ref_list else out[:0]
    if len(ref) and not np.array_equal(out, ref):
        return _first_divergence(out, ref)
    return None


def compare_kway(out: object, arrays: tuple[np.ndarray, ...]) -> str | None:
    if arrays:
        merged = np.concatenate(arrays)
        ref = np.sort(merged, kind="stable")
    else:
        ref = np.empty(0)
    if not isinstance(out, np.ndarray):
        return f"returned {type(out).__name__}, expected ndarray"
    if out.shape != ref.shape:
        return f"output length {len(out)} != total {len(ref)}"
    if len(ref) and not np.array_equal(out, ref):
        return _first_divergence(out, ref)
    return None


def compare_sort(out: object, x: np.ndarray) -> str | None:
    ref = np.sort(x, kind="stable")
    if not isinstance(out, np.ndarray):
        return f"returned {type(out).__name__}, expected ndarray"
    if out.shape != ref.shape:
        return f"output length {len(out)} != input length {len(ref)}"
    if not np.array_equal(out, ref):
        return _first_divergence(out, ref)
    return None


# ----------------------------------------------------------------------
# Case execution
# ----------------------------------------------------------------------
def run_merge_case(impl: Implementation, case: MergeCase) -> str | None:
    """Run one merge/keyed case; returns the failure detail or None."""
    if impl.max_elements is not None and case.total > impl.max_elements:
        return None
    try:
        out = impl.fn(case.a, case.b, case.p)
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        return f"raised {exc!r}"
    if impl.kind == "keyed":
        return compare_keyed(out, case.a, case.b)
    if impl.kind == "setop":
        return compare_setop(out, case.a, case.b, impl.name.rsplit(".", 1)[-1])
    stable = impl.stable and case.stability_probe
    return compare_merge(out, case.a, case.b, stable=stable)


def run_sort_case(impl: Implementation, case: SortCase) -> str | None:
    if impl.max_elements is not None and len(case.x) > impl.max_elements:
        return None
    try:
        out = impl.fn(case.x, case.p)
    except Exception as exc:  # noqa: BLE001
        return f"raised {exc!r}"
    return compare_sort(out, case.x)


def run_kway_case(impl: Implementation, case: KwayCase) -> str | None:
    if impl.max_elements is not None and case.total > impl.max_elements:
        return None
    try:
        out = impl.fn(case.arrays, case.p)
    except Exception as exc:  # noqa: BLE001
        return f"raised {exc!r}"
    return compare_kway(out, case.arrays)


# ----------------------------------------------------------------------
# Minimization
# ----------------------------------------------------------------------
def _array_literal(x: np.ndarray) -> str:
    return f"np.array({x.tolist()!r}, dtype=np.{x.dtype.name})"


def _shrink_array(x: np.ndarray) -> list[np.ndarray]:
    """Candidate reductions of one array, large deletions first."""
    out: list[np.ndarray] = []
    n = len(x)
    if n == 0:
        return out
    half = n // 2
    if half:
        out.append(x[half:])  # drop first half
        out.append(x[:n - half])  # drop second half
    for k in range(min(n, 24)):
        out.append(np.delete(x, k))
    return out


def minimize_merge_case(
    impl: Implementation, case: MergeCase, *, budget: int = SHRINK_BUDGET
) -> MergeCase:
    """Greedy ddmin-style shrink of a failing merge case.

    Each step tries, in order: deleting a block or single element of A,
    the same for B, then lowering ``p``.  Any candidate that still
    fails becomes the new case; the loop ends at a local minimum or
    when the re-run budget is exhausted.  Deterministic throughout.
    """
    attempts = 0

    def fails(a: np.ndarray, b: np.ndarray, p: int) -> bool:
        nonlocal attempts
        attempts += 1
        probe = MergeCase(case.name, a, b, p, case.stability_probe)
        return run_merge_case(impl, probe) is not None

    a, b, p = case.a, case.b, case.p
    improved = True
    while improved and attempts < budget:
        improved = False
        for na in _shrink_array(a):
            if attempts >= budget:
                break
            if fails(na, b, p):
                a, improved = na, True
                break
        if improved:
            continue
        for nb in _shrink_array(b):
            if attempts >= budget:
                break
            if fails(a, nb, p):
                b, improved = nb, True
                break
        if improved:
            continue
        for np_ in (1, 2, p // 2):
            if attempts >= budget:
                break
            if 0 < np_ < p and fails(a, b, np_):
                p, improved = np_, True
                break
    return MergeCase(case.name, a, b, p, case.stability_probe)


def minimize_sort_case(
    impl: Implementation, case: SortCase, *, budget: int = SHRINK_BUDGET
) -> SortCase:
    """Greedy shrink of a failing sort case (same strategy as merges)."""
    attempts = 0

    def fails(x: np.ndarray, p: int) -> bool:
        nonlocal attempts
        attempts += 1
        return run_sort_case(impl, SortCase(case.name, x, p)) is not None

    x, p = case.x, case.p
    improved = True
    while improved and attempts < budget:
        improved = False
        for nx in _shrink_array(x):
            if attempts >= budget:
                break
            if fails(nx, p):
                x, improved = nx, True
                break
        if improved:
            continue
        for np_ in (1, 2, p // 2):
            if attempts >= budget:
                break
            if 0 < np_ < p and fails(x, np_):
                p, improved = np_, True
                break
    return SortCase(case.name, x, p)


def merge_reproducer(impl: Implementation, case: MergeCase, seed: int) -> str:
    """Self-contained snippet that replays a minimized merge mismatch."""
    if impl.kind == "keyed":
        comparator = "compare_keyed"
        check = "compare_keyed(out, a, b)"
    elif impl.kind == "setop":
        comparator = "compare_setop"
        check = f"compare_setop(out, a, b, {impl.name.rsplit('.', 1)[-1]!r})"
    else:
        comparator = "compare_merge"
        check = (
            f"compare_merge(out, a, b, "
            f"stable={impl.stable and case.stability_probe})"
        )
    return "\n".join(
        [
            "import numpy as np",
            "from repro.conformance.registry import build_registry",
            f"from repro.conformance.fuzzer import {comparator}",
            f"# case {case.name!r} (workload seed {seed}), minimized",
            f"a = {_array_literal(case.a)}",
            f"b = {_array_literal(case.b)}",
            f"impl = build_registry('full')[{impl.name!r}]",
            f"out = impl.fn(a, b, {case.p})",
            f"print({check})  # None would mean: no longer failing",
        ]
    )


def sort_reproducer(impl: Implementation, case: SortCase, seed: int) -> str:
    """Self-contained snippet that replays a minimized sort mismatch."""
    return "\n".join(
        [
            "import numpy as np",
            "from repro.conformance.registry import build_registry",
            "from repro.conformance.fuzzer import compare_sort",
            f"# case {case.name!r} (workload seed {seed}), minimized",
            f"x = {_array_literal(case.x)}",
            f"impl = build_registry('full')[{impl.name!r}]",
            f"out = impl.fn(x, {case.p})",
            "print(compare_sort(out, x))  # None would mean: no longer failing",
        ]
    )
