"""Machine-checks for the paper's structural invariants.

All checkers return ``None`` on success and a human-readable failure
description on violation, so the runner can aggregate them uniformly
without exception plumbing.

* :func:`check_partition_balance` — Theorem 14 / Corollary 7: the ``p``
  segments have sizes differing by at most one, tile the output
  exactly, and their independent merges concatenate to the oracle.
* :func:`check_flip_point_uniqueness` — Proposition 13: on every cross
  diagonal there is exactly one point satisfying the flip conditions,
  and it is the one the binary search returns.  Brute force over the
  feasible range, so only run on small inputs.
* :func:`check_slice_disjointness` — the lock-freedom precondition: the
  partition's output ranges are disjoint, contiguous and cover
  ``[0, N)``; likewise the A- and B-ranges.
"""

from __future__ import annotations

import numpy as np

from ..core.merge_path import diagonal_bounds, diagonal_intersection, partition_merge_path
from ..core.sequential import merge_vectorized
from ..types import Partition

__all__ = [
    "check_partition_balance",
    "check_flip_point_uniqueness",
    "check_slice_disjointness",
    "check_kway_balance",
    "stable_merge_oracle",
]


def stable_merge_oracle(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Ground-truth stable merge: stable sort of ``A ++ B``.

    Concatenating A first and sorting with a stable algorithm realises
    exactly the A-before-equal-B order, including the relative order of
    signed zeros used by the stability probes.
    """
    dtype = np.promote_types(a.dtype, b.dtype) if len(a) or len(b) else np.int64
    merged = np.concatenate([a, b]).astype(dtype, copy=False)
    return np.sort(merged, kind="stable")


def check_partition_balance(a: np.ndarray, b: np.ndarray, p: int) -> str | None:
    """Theorem 14: p equispaced diagonals give equal independent segments."""
    part = partition_merge_path(a, b, p, check=False)
    if len(part.segments) != p:
        return f"expected {p} segments, got {len(part.segments)}"
    try:
        part.validate()
    except AssertionError as exc:
        return f"partition does not tile the merge path: {exc}"
    lengths = part.segment_lengths
    if max(lengths) - min(lengths) > 1:
        return (
            f"segment sizes {lengths} differ by "
            f"{max(lengths) - min(lengths)} > 1 (Theorem 14 violated)"
        )
    n = len(a) + len(b)
    lo, hi = n // p, -(-n // p)
    bad = [s for s in lengths if not lo <= s <= hi]
    if bad:
        return f"segment sizes {lengths} outside {{floor,ceil}}(N/p) = {{{lo},{hi}}}"
    pieces = [
        merge_vectorized(a[s.a_start : s.a_end], b[s.b_start : s.b_end], check=False)
        for s in part.segments
    ]
    got = np.concatenate(pieces) if pieces else np.array([])
    ref = stable_merge_oracle(a, b)
    if not np.array_equal(got, ref):
        return "independent segment merges do not concatenate to the oracle merge"
    return None


def check_flip_point_uniqueness(a: np.ndarray, b: np.ndarray) -> str | None:
    """Proposition 13: each cross diagonal has exactly one flip point.

    A feasible point ``(i, d - i)`` is a flip point when
    ``A[i - 1] <= B[d - i]`` (or ``i`` is at its lower bound) and
    ``A[i] > B[d - i - 1]`` (or ``i`` is at its upper bound).  O(N^2)
    brute force — callers keep ``|A| + |B|`` small.
    """
    n = len(a) + len(b)
    for d in range(n + 1):
        lo, hi = diagonal_bounds(d, len(a), len(b))
        flips = [
            i
            for i in range(lo, hi + 1)
            if (i == lo or a[i - 1] <= b[d - i])
            and (i == hi or a[i] > b[d - i - 1])
        ]
        if len(flips) != 1:
            return (
                f"diagonal {d} has {len(flips)} flip points {flips}; "
                "Proposition 13 requires exactly one"
            )
        found = diagonal_intersection(a, b, d)
        if found.i != flips[0]:
            return (
                f"binary search returned i={found.i} on diagonal {d}, "
                f"but the unique flip point is i={flips[0]}"
            )
    return None


def check_kway_balance(arrays: tuple[np.ndarray, ...], p: int) -> str | None:
    """k-way analogue of Theorem 14: output ranges differ by at most 1.

    Also checks the per-array cut columns are monotone (each processor
    owns a contiguous slab of every input — the disjointness
    precondition of the k-way merge tasks).
    """
    from ..core.kway import kway_partition

    if not arrays:
        return None
    cuts = kway_partition(list(arrays), p, check=False)
    sizes = [
        sum(cuts[k + 1]) - sum(cuts[k]) for k in range(p)
    ]
    total = sum(len(arr) for arr in arrays)
    lo, hi = total // p, -(-total // p)
    bad = [s for s in sizes if not lo <= s <= hi]
    if bad:
        return (
            f"k-way output range sizes {sizes} outside "
            f"{{floor,ceil}}(N/p) = {{{lo},{hi}}}"
        )
    for t in range(len(arrays)):
        col = [row[t] for row in cuts]
        if any(x > y for x, y in zip(col, col[1:])):
            return f"cut column for array {t} is not monotone: {col}"
    return None


def check_slice_disjointness(partition: Partition) -> str | None:
    """Output (and input) ranges must tile without overlap — the reason
    Algorithm 1 needs no locks."""
    out_cursor = 0
    a_cursor = 0
    b_cursor = 0
    for seg in partition.segments:
        if seg.out_start < out_cursor:
            return (
                f"segment {seg.index} output [{seg.out_start}, {seg.out_end}) "
                f"overlaps the previous segment (ends at {out_cursor})"
            )
        if seg.out_start != out_cursor:
            return (
                f"gap before segment {seg.index}: output resumes at "
                f"{seg.out_start}, previous ended at {out_cursor}"
            )
        if seg.a_start != a_cursor or seg.b_start != b_cursor:
            return (
                f"segment {seg.index} input ranges are not contiguous with "
                f"the previous segment"
            )
        out_cursor = seg.out_end
        a_cursor = seg.a_end
        b_cursor = seg.b_end
    if out_cursor != partition.total_length:
        return (
            f"segments cover [0, {out_cursor}) but the output has "
            f"{partition.total_length} elements"
        )
    return None
