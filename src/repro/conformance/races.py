"""Backend race detection via per-slice write-set tracking.

The paper's lock-freedom argument (Remark after Algorithm 1) is that
processors write *disjoint* output slices, so no synchronization is
needed.  The PRAM simulator proves this per cycle for the lockstep
model; this module proves it for the **real threads backend**: the
output array is replaced by an ndarray subclass that records every
write — which flat addresses, by which task — and an audit afterwards
flags

* any address written more than once (a write-write race),
* any write outside the writing task's declared output slice
  (a claim violation — the write would race with the slice's owner),
* any address never written (a coverage hole: the barrier would return
  an uninitialized region).

The tracking array piggybacks on the *actual* production kernels
(:func:`repro.core.sequential.merge_into`) and the *actual* thread
pool, so what is audited is the code that runs in production, not a
model of it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..backends import get_backend
from ..core.merge_path import partition_merge_path
from ..core.sequential import merge_into, result_dtype
from ..types import Partition
from .invariants import stable_merge_oracle

__all__ = [
    "RaceFinding",
    "WriteAudit",
    "WriteTrackingArray",
    "audited_parallel_merge",
]


@dataclass(frozen=True)
class RaceFinding:
    """One detected violation of the disjoint-writes contract."""

    kind: str  # "double-write" | "out-of-slice" | "uncovered" | "wrong-result"
    detail: str


class WriteAudit:
    """Thread-safe recorder of (task, flat address range) write events."""

    def __init__(self, base_addr: int, itemsize: int, length: int) -> None:
        self.base_addr = base_addr
        self.itemsize = itemsize
        self.length = length
        self._lock = threading.Lock()
        self._local = threading.local()
        #: list of (task_id, flat int64 index array) in commit order
        self.events: list[tuple[int, np.ndarray]] = []

    def set_task(self, task_id: int | None) -> None:
        """Tag subsequent writes from this thread with ``task_id``."""
        self._local.task = task_id

    def current_task(self) -> int:
        return getattr(self._local, "task", -1)

    def record(self, view: np.ndarray, key: object) -> None:
        """Record a ``view[key] = ...`` write in base-array coordinates."""
        offset = (view.__array_interface__["data"][0] - self.base_addr) // self.itemsize
        idx = np.atleast_1d(np.arange(view.shape[0], dtype=np.int64)[key])
        event = (self.current_task(), idx + offset)
        with self._lock:
            self.events.append(event)

    # ------------------------------------------------------------------
    # Post-run analysis
    # ------------------------------------------------------------------
    def findings(self, partition: Partition | None = None) -> list[RaceFinding]:
        """Audit the recorded write events against the disjointness contract."""
        out: list[RaceFinding] = []
        counts = np.zeros(self.length, dtype=np.int64)
        for task_id, idx in self.events:
            counts[idx] += 1
            if partition is not None and 0 <= task_id < len(partition.segments):
                seg = partition.segments[task_id]
                stray = idx[(idx < seg.out_start) | (idx >= seg.out_end)]
                if stray.size:
                    out.append(
                        RaceFinding(
                            "out-of-slice",
                            f"task {task_id} wrote address {int(stray[0])} "
                            f"outside its slice [{seg.out_start}, {seg.out_end})",
                        )
                    )
        doubled = np.nonzero(counts > 1)[0]
        if doubled.size:
            writers = sorted(
                task_id
                for task_id, idx in self.events
                if int(doubled[0]) in set(int(i) for i in idx)
            )
            out.append(
                RaceFinding(
                    "double-write",
                    f"address {int(doubled[0])} written {int(counts[doubled[0]])} "
                    f"times (tasks {writers}); {doubled.size} address(es) affected",
                )
            )
        holes = np.nonzero(counts == 0)[0]
        if holes.size:
            out.append(
                RaceFinding(
                    "uncovered",
                    f"{holes.size} address(es) never written, first at "
                    f"{int(holes[0])}",
                )
            )
        return out


class WriteTrackingArray(np.ndarray):
    """ndarray subclass that reports every ``__setitem__`` to a WriteAudit.

    Slicing preserves the subclass, so the views handed to worker tasks
    keep reporting; addresses are reconstructed from the view's buffer
    pointer, which is exact for the contiguous 1-D slices Algorithm 1
    produces.
    """

    _audit: WriteAudit | None

    def __array_finalize__(self, obj: object) -> None:
        self._audit = getattr(obj, "_audit", None)

    def __setitem__(self, key: object, value: object) -> None:
        audit = getattr(self, "_audit", None)
        if audit is not None:
            audit.record(self, key)
        super().__setitem__(key, value)


def audited_parallel_merge(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    *,
    backend: str = "threads",
    kernel: str = "vectorized",
    partition: Partition | None = None,
) -> list[RaceFinding]:
    """Run Algorithm 1 on the real ``backend`` with write tracking.

    Mirrors :func:`repro.core.parallel_merge.merge_partition` task for
    task — same partitioner, same ``merge_into`` kernel, same thread
    pool — but the output array records its writers.  Passing an
    explicit ``partition`` lets tests inject a *corrupted* partition
    (overlapping slices) and verify the detector fires.

    Returns the list of findings (empty == race-free and correct).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    part = partition if partition is not None else partition_merge_path(a, b, p)
    n = len(a) + len(b)
    base = np.empty(n, dtype=result_dtype(a, b))
    audit = WriteAudit(
        base_addr=base.__array_interface__["data"][0],
        itemsize=base.itemsize,
        length=n,
    )
    out = base.view(WriteTrackingArray)
    out._audit = audit

    def make_task(seg):
        def task() -> None:
            audit.set_task(seg.index)
            try:
                merge_into(
                    out[seg.out_start : seg.out_end],
                    a[seg.a_start : seg.a_end],
                    b[seg.b_start : seg.b_end],
                    kernel=kernel,
                )
            finally:
                audit.set_task(None)

        return task

    tasks = [make_task(seg) for seg in part.segments if seg.length > 0]
    be = get_backend(backend, max_workers=max(1, p))
    try:
        be.run_tasks(tasks)
    finally:
        be.close()

    findings = audit.findings(part)
    ref = stable_merge_oracle(a, b)
    if not np.array_equal(base, ref):
        findings.append(
            RaceFinding("wrong-result", "merged output differs from the oracle")
        )
    return findings
