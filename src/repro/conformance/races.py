"""Backend race detection via per-slice write-set tracking.

The paper's lock-freedom argument (Remark after Algorithm 1) is that
processors write *disjoint* output slices, so no synchronization is
needed.  The PRAM simulator proves this per cycle for the lockstep
model; this module proves it for the **real threads backend**: the
output array is replaced by an ndarray subclass that records every
write — which flat addresses, by which task — and an audit afterwards
flags

* any address written more than once (a write-write race),
* any write outside the writing task's declared output slice
  (a claim violation — the write would race with the slice's owner),
* any address never written (a coverage hole: the barrier would return
  an uninitialized region).

The tracking array piggybacks on the *actual* production kernels
(:func:`repro.core.sequential.merge_into`) and the *actual* thread
pool, so what is audited is the code that runs in production, not a
model of it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..backends import get_backend
from ..core.merge_path import partition_merge_path
from ..core.sequential import merge_into, result_dtype
from ..types import Partition
from .invariants import stable_merge_oracle

__all__ = [
    "RaceFinding",
    "WriteAudit",
    "WriteTrackingArray",
    "audited_parallel_merge",
    "audited_batched_round",
]


@dataclass(frozen=True)
class RaceFinding:
    """One detected violation of the disjoint-writes contract."""

    kind: str  # "double-write" | "out-of-slice" | "uncovered" | "wrong-result"
    detail: str


class WriteAudit:
    """Thread-safe recorder of (task, flat address range) write events."""

    def __init__(self, base_addr: int, itemsize: int, length: int) -> None:
        self.base_addr = base_addr
        self.itemsize = itemsize
        self.length = length
        self._lock = threading.Lock()
        self._local = threading.local()
        #: list of (task_id, flat int64 index array) in commit order
        self.events: list[tuple[int, np.ndarray]] = []

    def set_task(self, task_id: int | None) -> None:
        """Tag subsequent writes from this thread with ``task_id``."""
        self._local.task = task_id

    def current_task(self) -> int:
        return getattr(self._local, "task", -1)

    def record(self, view: np.ndarray, key: object) -> None:
        """Record a ``view[key] = ...`` write in base-array coordinates."""
        offset = (view.__array_interface__["data"][0] - self.base_addr) // self.itemsize
        idx = np.atleast_1d(np.arange(view.shape[0], dtype=np.int64)[key])
        event = (self.current_task(), idx + offset)
        with self._lock:
            self.events.append(event)

    # ------------------------------------------------------------------
    # Post-run analysis
    # ------------------------------------------------------------------
    def findings(
        self,
        partition: Partition | None = None,
        *,
        task_slices: dict[int, tuple[int, int]] | None = None,
    ) -> list[RaceFinding]:
        """Audit the recorded write events against the disjointness contract.

        Declared ownership comes either from ``partition`` (task id =
        segment index, the single-pair case) or from an explicit
        ``task_slices`` map of task id → ``(out_start, out_end)`` —
        the batched-round case, where one dispatch carries segments of
        many pairs at distinct base offsets.
        """
        if task_slices is None and partition is not None:
            task_slices = {
                i: (seg.out_start, seg.out_end)
                for i, seg in enumerate(partition.segments)
            }
        out: list[RaceFinding] = []
        counts = np.zeros(self.length, dtype=np.int64)
        for task_id, idx in self.events:
            counts[idx] += 1
            if task_slices is not None and task_id in task_slices:
                lo, hi = task_slices[task_id]
                stray = idx[(idx < lo) | (idx >= hi)]
                if stray.size:
                    out.append(
                        RaceFinding(
                            "out-of-slice",
                            f"task {task_id} wrote address {int(stray[0])} "
                            f"outside its slice [{lo}, {hi})",
                        )
                    )
        doubled = np.nonzero(counts > 1)[0]
        if doubled.size:
            writers = sorted(
                task_id
                for task_id, idx in self.events
                if int(doubled[0]) in set(int(i) for i in idx)
            )
            out.append(
                RaceFinding(
                    "double-write",
                    f"address {int(doubled[0])} written {int(counts[doubled[0]])} "
                    f"times (tasks {writers}); {doubled.size} address(es) affected",
                )
            )
        holes = np.nonzero(counts == 0)[0]
        if holes.size:
            out.append(
                RaceFinding(
                    "uncovered",
                    f"{holes.size} address(es) never written, first at "
                    f"{int(holes[0])}",
                )
            )
        return out


class WriteTrackingArray(np.ndarray):
    """ndarray subclass that reports every ``__setitem__`` to a WriteAudit.

    Slicing preserves the subclass, so the views handed to worker tasks
    keep reporting; addresses are reconstructed from the view's buffer
    pointer, which is exact for the contiguous 1-D slices Algorithm 1
    produces.
    """

    _audit: WriteAudit | None

    def __array_finalize__(self, obj: object) -> None:
        self._audit = getattr(obj, "_audit", None)

    def __setitem__(self, key: object, value: object) -> None:
        audit = getattr(self, "_audit", None)
        if audit is not None:
            audit.record(self, key)
        super().__setitem__(key, value)


def audited_parallel_merge(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    *,
    backend: str = "threads",
    kernel: str = "vectorized",
    partition: Partition | None = None,
) -> list[RaceFinding]:
    """Run Algorithm 1 on the real ``backend`` with write tracking.

    Mirrors :func:`repro.core.parallel_merge.merge_partition` task for
    task — same partitioner, same ``merge_into`` kernel, same thread
    pool — but the output array records its writers.  Passing an
    explicit ``partition`` lets tests inject a *corrupted* partition
    (overlapping slices) and verify the detector fires.

    Returns the list of findings (empty == race-free and correct).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    part = partition if partition is not None else partition_merge_path(a, b, p)
    n = len(a) + len(b)
    base = np.empty(n, dtype=result_dtype(a, b))
    audit = WriteAudit(
        base_addr=base.__array_interface__["data"][0],
        itemsize=base.itemsize,
        length=n,
    )
    out = base.view(WriteTrackingArray)
    out._audit = audit

    def make_task(seg):
        def task() -> None:
            audit.set_task(seg.index)
            try:
                merge_into(
                    out[seg.out_start : seg.out_end],
                    a[seg.a_start : seg.a_end],
                    b[seg.b_start : seg.b_end],
                    kernel=kernel,
                )
            finally:
                audit.set_task(None)

        return task

    tasks = [make_task(seg) for seg in part.segments if seg.length > 0]
    be = get_backend(backend, max_workers=max(1, p))
    try:
        be.run_tasks(tasks)
    finally:
        be.close()

    findings = audit.findings(part)
    ref = stable_merge_oracle(a, b)
    if not np.array_equal(base, ref):
        findings.append(
            RaceFinding("wrong-result", "merged output differs from the oracle")
        )
    return findings


def audited_batched_round(
    runs: list[np.ndarray],
    procs_per_pair: int,
    *,
    backend: str = "threads",
    kernel: str = "vectorized",
    corrupt_task_slices: dict[int, tuple[int, int]] | None = None,
) -> list[RaceFinding]:
    """Race-audit one *batched* merge round across every pair at once.

    Mirrors :func:`repro.execution.engine.run_merge_round`'s fused
    dispatch — all pairs' segment tasks in a single
    :class:`~repro.backends.TaskBatch` on the real ``backend`` — with
    the whole round's output in one write-tracked array, so a stray
    write from pair ``i`` into pair ``j``'s region (a cross-pair race
    the per-pair auditor cannot see) is detected.  An odd trailing run
    is carried, not dispatched, exactly as in the engine.

    ``corrupt_task_slices`` overrides the declared ownership map so
    tests can verify the detector fires on a batch whose claims lie.

    Returns the list of findings (empty == race-free and correct).
    """
    from ..backends import TaskBatch

    runs = [np.asarray(r) for r in runs]
    if len(runs) < 2:
        return []
    pairs = [(runs[i], runs[i + 1]) for i in range(0, len(runs) - 1, 2)]
    partitions = [
        partition_merge_path(a, b, procs_per_pair, check=False)
        for a, b in pairs
    ]

    total = sum(len(a) + len(b) for a, b in pairs)
    dtype = result_dtype(*pairs[0])
    for a, b in pairs[1:]:
        dtype = np.promote_types(dtype, result_dtype(a, b))
    base = np.empty(total, dtype=dtype)
    audit = WriteAudit(
        base_addr=base.__array_interface__["data"][0],
        itemsize=base.itemsize,
        length=total,
    )
    out = base.view(WriteTrackingArray)
    out._audit = audit

    task_slices: dict[int, tuple[int, int]] = {}
    tasks = []
    offset = 0
    task_id = 0
    for (a, b), part in zip(pairs, partitions):
        for seg in part.segments:
            if seg.length == 0:
                continue

            def make_task(a=a, b=b, seg=seg, off=offset, tid=task_id):
                def task() -> None:
                    audit.set_task(tid)
                    try:
                        merge_into(
                            out[off + seg.out_start : off + seg.out_end],
                            a[seg.a_start : seg.a_end],
                            b[seg.b_start : seg.b_end],
                            kernel=kernel,
                        )
                    finally:
                        audit.set_task(None)

                return task

            tasks.append(make_task())
            task_slices[task_id] = (
                offset + seg.out_start, offset + seg.out_end,
            )
            task_id += 1
        offset += len(a) + len(b)

    be = get_backend(backend, max_workers=max(1, procs_per_pair * len(pairs)))
    try:
        be.run_batch(TaskBatch(tasks, label="sort.round",
                               meta={"pairs": len(pairs)}))
    finally:
        be.close()

    findings = audit.findings(
        task_slices=corrupt_task_slices
        if corrupt_task_slices is not None else task_slices
    )
    ref = np.concatenate([stable_merge_oracle(a, b) for a, b in pairs])
    if not np.array_equal(base, ref):
        findings.append(
            RaceFinding("wrong-result",
                        "batched round output differs from the oracle")
        )
    return findings
