"""Registry of every merge/sort entry point, behind uniform signatures.

Each :class:`Implementation` wraps one public entry point of the
package into a uniform callable per kind:

* ``merge`` — ``fn(a, b, p) -> merged`` for two sorted arrays;
* ``keyed`` — ``fn(a, b, p) -> gather indices`` into ``A ++ B`` (the
  merge path as a permutation; lets the fuzzer check stability at
  *index* resolution, not just value resolution);
* ``kway``  — ``fn(arrays, p) -> merged`` for T sorted arrays;
* ``sort``  — ``fn(x, p) -> sorted``;
* ``setop`` — ``fn(a, b, p) -> result`` with std::set_* multiset
  semantics (checked against an independent ``Counter`` oracle; the
  operation is the entry's name suffix).

``stable=False`` marks implementations that never promised the
A-before-B tie rule (comparator networks); the fuzzer then skips the
signed-zero stability probes.  ``known_unsound=True`` marks the paper's
deliberate counterexample (the naive equal-index split): the runner
asserts such implementations **do** fail — a standing proof that the
oracle has teeth.

Backends that pool workers (threads, processes) are cached per run via
:class:`BackendCache` so the quick tier does not pay pool construction
per case; the runner closes the cache when it finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..backends import Backend, get_backend

__all__ = ["Implementation", "BackendCache", "build_registry"]


@dataclass(frozen=True)
class Implementation:
    """One registered merge/sort entry point.

    ``fn`` follows the uniform signature of ``kind``.  ``max_elements``
    skips cases whose total input size exceeds the implementation's
    practical budget (the lockstep PRAM machine pays thousands of
    Python cycles per element).
    """

    name: str
    layer: str  # core | backend | baseline | gpu | pram | extension
    kind: str  # merge | keyed | kway | sort | setop
    fn: Callable
    stable: bool = True
    known_unsound: bool = False
    max_elements: int | None = None
    tiers: tuple[str, ...] = ("quick", "full")
    #: Backend name to drive through the write-audited race detector
    #: (None: the implementation does not expose the partition +
    #: merge_into structure the tracker instruments).
    race_backend: str | None = None
    #: Whether the implementation routes its tasks through the shared
    #: :class:`BackendCache` — i.e. whether the chaos tier can inject
    #: faults into it by swapping the cache for a fault-wrapped one.
    injectable: bool = False
    notes: str = ""


class BackendCache:
    """Lazily constructed, shared backend instances for one conformance run."""

    def __init__(self, max_workers: int = 4) -> None:
        self._max_workers = max_workers
        self._cache: dict[str, Backend] = {}

    def get(self, name: str) -> Backend:
        if name not in self._cache:
            self._cache[name] = get_backend(name, max_workers=self._max_workers)
        return self._cache[name]

    def close(self) -> None:
        for backend in self._cache.values():
            backend.close()
        self._cache.clear()


def build_registry(
    tier: str = "quick", *, backends: BackendCache | None = None
) -> dict[str, Implementation]:
    """Enumerate every registered implementation for ``tier``.

    A fresh :class:`BackendCache` is created when none is passed; the
    caller owns closing it (``run_conformance`` does).
    """
    cache = backends if backends is not None else BackendCache()

    # Imports live here so `import repro.conformance` stays cheap.
    from ..baselines.akl_santoro import akl_santoro_merge
    from ..baselines.bitonic import bitonic_sort, odd_even_merge
    from ..baselines.deo_sarkar import deo_sarkar_merge
    from ..baselines.heap_kway import heap_kway_merge
    from ..baselines.naive_split import naive_split_merge
    from ..baselines.shiloach_vishkin import sv_merge
    from ..core.cache_sort import cache_efficient_sort
    from ..core.inplace import merge_inplace_parallel
    from ..core.keyed import argmerge, merge_by_key, merge_records
    from ..core.kway import kway_merge
    from ..core.merge_sort import parallel_merge_sort
    from ..core.natural_sort import natural_merge_sort
    from ..core.parallel_merge import parallel_merge
    from ..core.segmented_merge import segmented_parallel_merge
    from ..core.sequential import merge_galloping, merge_two_pointer, merge_vectorized
    from ..core.setops import (
        set_difference,
        set_intersection,
        set_symmetric_difference,
        set_union,
    )
    from ..core.streaming import streaming_merge
    from ..gpu.blocked_merge import blocked_merge
    from ..gpu.model import GPUSpec
    from ..pram.merge_programs import run_parallel_merge_pram

    def _round_merge(a, b, p, backend_name):
        """Drive one batched engine round over the single pair (a, b)."""
        from ..execution.engine import run_merge_round

        a = np.asarray(a)
        b = np.asarray(b)
        if len(a) == 0 and len(b) == 0:
            return np.array([], dtype=np.int64)
        merged = run_merge_round(
            [a, b], max(1, p), backend=cache.get(backend_name)
        )
        return merged[0]

    def _streaming(a, b, p):
        blocks = list(streaming_merge(iter(a), iter(b), L=16))
        if not blocks:
            return np.array([], dtype=np.promote_types(a.dtype, b.dtype)
                            if len(a) or len(b) else np.int64)
        return np.concatenate(blocks)

    def _inplace(a, b, p):
        arr = np.concatenate(
            [np.asarray(a), np.asarray(b)]
        ).astype(np.promote_types(a.dtype, b.dtype) if len(a) or len(b) else np.int64)
        merge_inplace_parallel(arr, len(a), p, backend=cache.get("serial"))
        return arr

    def _pram(a, b, p):
        out, _metrics = run_parallel_merge_pram(
            np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64), p
        )
        return out

    def _keyed_by_key(a, b, p):
        n_a = len(a)
        _keys, vals = merge_by_key(
            a,
            b,
            np.arange(n_a, dtype=np.int64),
            np.arange(n_a, n_a + len(b), dtype=np.int64),
            p=p,
            backend=cache.get("threads"),
        )
        return vals

    def _keyed_records(a, b, p):
        dtype = np.dtype([("key", np.float64), ("idx", np.int64)])
        ra = np.empty(len(a), dtype=dtype)
        ra["key"] = a
        ra["idx"] = np.arange(len(a))
        rb = np.empty(len(b), dtype=dtype)
        rb["key"] = b
        rb["idx"] = np.arange(len(a), len(a) + len(b))
        merged = merge_records(ra, rb, "key", p=p, backend=cache.get("serial"))
        return merged["idx"]

    small_gpu = GPUSpec(
        threads_per_block=4, items_per_thread=3, shared_limit_elements=64
    )

    def _blocked_sort(x):
        from ..gpu.blocked_sort import blocked_sort

        return blocked_sort(np.asarray(x), spec=small_gpu, collect_stats=False)[0]

    def _extsort(x, p):
        from ..external import external_sort

        x = np.asarray(x)
        # A deliberately tiny budget so even quick-tier cases form
        # several runs and exercise the planner + block-merge fan-in.
        memory = max(4, min(64, max(1, len(x)) // 4))
        return external_sort(
            x, memory, parallel=True, backend=cache.get("serial"),
            workers=max(1, p),
        )

    impls = [
        # ---- core sequential kernels --------------------------------
        Implementation(
            "core.kernel.two_pointer", "core", "merge",
            lambda a, b, p: merge_two_pointer(a, b),
        ),
        Implementation(
            "core.kernel.galloping", "core", "merge",
            lambda a, b, p: merge_galloping(a, b),
        ),
        Implementation(
            "core.kernel.vectorized", "core", "merge",
            lambda a, b, p: merge_vectorized(a, b),
        ),
        # ---- Algorithm 1 over execution backends --------------------
        Implementation(
            "backend.parallel_merge.serial", "backend", "merge",
            lambda a, b, p: parallel_merge(a, b, p, backend=cache.get("serial")),
            race_backend="serial", injectable=True,
        ),
        Implementation(
            "backend.parallel_merge.threads", "backend", "merge",
            lambda a, b, p: parallel_merge(a, b, p, backend=cache.get("threads")),
            race_backend="threads", injectable=True,
        ),
        Implementation(
            "backend.parallel_merge.processes", "backend", "merge",
            lambda a, b, p: parallel_merge(a, b, p, backend=cache.get("processes")),
            tiers=("full",), injectable=True,
            notes="shared-memory process pool; full tier only for speed",
        ),
        # ---- batched execution engine (one dispatch per round) ------
        Implementation(
            "exec.round_merge.threads", "backend", "merge",
            lambda a, b, p: _round_merge(a, b, p, "threads"),
            race_backend="threads", injectable=True,
            notes="run_merge_round: all pairs of a sort round as one batch",
        ),
        Implementation(
            "exec.round_merge.processes", "backend", "merge",
            lambda a, b, p: _round_merge(a, b, p, "processes"),
            tiers=("full",), injectable=True,
            notes="RoundArena shared-memory staging; full tier only for speed",
        ),
        # ---- Algorithm 2 (SPM) --------------------------------------
        Implementation(
            "core.segmented_merge.serial", "core", "merge",
            lambda a, b, p: segmented_parallel_merge(
                a, b, p, L=16, backend=cache.get("serial")
            ),
            injectable=True,
        ),
        Implementation(
            "backend.segmented_merge.threads", "backend", "merge",
            lambda a, b, p: segmented_parallel_merge(
                a, b, p, L=16, backend=cache.get("threads")
            ),
            race_backend="threads", injectable=True,
        ),
        # ---- extensions ---------------------------------------------
        Implementation("extension.streaming_merge", "extension", "merge", _streaming),
        Implementation("extension.inplace_parallel", "extension", "merge",
                       _inplace, injectable=True),
        Implementation(
            "extension.kway_merge.pairwise", "extension", "merge",
            lambda a, b, p: kway_merge([a, b], p, backend=cache.get("serial")),
            injectable=True,
        ),
        Implementation(
            "extension.kway_merge", "extension", "kway",
            lambda arrays, p: kway_merge(
                list(arrays), p, backend=cache.get("serial")
            ),
            injectable=True,
        ),
        Implementation("extension.argmerge", "extension", "keyed",
                       lambda a, b, p: argmerge(a, b)),
        Implementation("extension.merge_by_key.threads", "extension", "keyed",
                       _keyed_by_key, injectable=True),
        Implementation("extension.merge_records", "extension", "keyed",
                       _keyed_records, injectable=True),
        # ---- multiset operations (std::set_* semantics) -------------
        Implementation(
            "extension.setops.union", "extension", "setop",
            lambda a, b, p: set_union(a, b),
            stable=False, notes="value-level multiset semantics",
        ),
        Implementation(
            "extension.setops.intersection", "extension", "setop",
            lambda a, b, p: set_intersection(a, b),
            stable=False, notes="value-level multiset semantics",
        ),
        Implementation(
            "extension.setops.difference", "extension", "setop",
            lambda a, b, p: set_difference(a, b),
            stable=False, notes="value-level multiset semantics",
        ),
        Implementation(
            "extension.setops.symmetric_difference", "extension", "setop",
            lambda a, b, p: set_symmetric_difference(a, b),
            stable=False, notes="value-level multiset semantics",
        ),
        # ---- GPU model ----------------------------------------------
        Implementation(
            "gpu.blocked_merge", "gpu", "merge",
            lambda a, b, p: blocked_merge(a, b, small_gpu, collect_stats=False)[0],
        ),
        # ---- PRAM simulator -----------------------------------------
        Implementation(
            "pram.parallel_merge", "pram", "merge", _pram,
            max_elements=96,
            notes="lockstep CREW machine; cycles are Python-slow",
        ),
        # ---- baselines ----------------------------------------------
        Implementation(
            "baseline.shiloach_vishkin", "baseline", "merge",
            lambda a, b, p: sv_merge(a, b, p),
        ),
        Implementation(
            "baseline.akl_santoro", "baseline", "merge",
            lambda a, b, p: akl_santoro_merge(a, b, p),
        ),
        Implementation(
            "baseline.deo_sarkar", "baseline", "merge",
            lambda a, b, p: deo_sarkar_merge(a, b, p),
        ),
        Implementation(
            "baseline.heap_kway", "baseline", "merge",
            lambda a, b, p: heap_kway_merge([a, b]),
        ),
        Implementation(
            "baseline.odd_even_merge", "baseline", "merge",
            lambda a, b, p: odd_even_merge(a, b),
            stable=False,
            notes="comparator network; makes no stability promise",
        ),
        Implementation(
            "baseline.naive_split", "baseline", "merge",
            lambda a, b, p: naive_split_merge(a, b, p),
            known_unsound=True,
            notes="the paper's introduction counterexample; must fail",
        ),
        # ---- sorts --------------------------------------------------
        Implementation(
            "core.parallel_merge_sort.threads", "core", "sort",
            lambda x, p: parallel_merge_sort(x, p, backend=cache.get("threads")),
            stable=False, injectable=True,
        ),
        Implementation(
            "core.cache_efficient_sort", "core", "sort",
            lambda x, p: cache_efficient_sort(
                x, p, 96, backend=cache.get("serial")
            ),
            stable=False, injectable=True,
        ),
        Implementation(
            "core.natural_merge_sort", "core", "sort",
            lambda x, p: natural_merge_sort(x, p, backend=cache.get("serial")),
            stable=False, injectable=True,
        ),
        Implementation(
            "gpu.blocked_sort", "gpu", "sort",
            lambda x, p: _blocked_sort(x),
            stable=False,
        ),
        Implementation(
            "external.spm_sort", "extension", "sort",
            _extsort, stable=False, injectable=True,
            notes="out-of-core SPM-planned external sort, tiny RAM budget "
                  "so every case spills and fans in through block merges "
                  "(stable in fact; the probe harness is merge-only)",
        ),
        Implementation(
            "baseline.bitonic_sort", "baseline", "sort",
            lambda x, p: bitonic_sort(x),
            stable=False,
        ),
    ]

    return {
        impl.name: impl
        for impl in impls
        if tier in impl.tiers
    }
