"""Conformance runner: drive the registry over the workload grid.

``run_conformance`` executes, for **every** registered implementation:

* ``differential`` — output equality with the sequential oracle over
  the full deterministic case grid (exceptions count as failures); the
  first mismatch is minimized into a reproducer;
* ``stability``    — the signed-zero probes (value implementations) or
  exact gather-permutation checks (keyed implementations);
* ``balance``      — Theorem 14 on the partition the implementation's
  inputs induce (segment sizes within ``{floor,ceil}(N/p)`` and
  segment merges concatenating to the oracle);
* ``disjoint``     — structural output-slice disjointness of that
  partition (the lock-freedom precondition);
* ``races``        — the write-set-tracking audit on the real backend,
  for implementations that expose the partition + ``merge_into``
  structure (skip otherwise).

Implementations flagged ``known_unsound`` (the paper's naive-split
counterexample) are required to **fail** the differential check — a
standing mutation test proving the oracle can detect broken merges.

The run is deterministic: same ``(tier, seed)`` → same cases, same
verdicts.  ``DEFAULT_SEED`` pins the pytest quick tier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.merge_path import partition_merge_path
from .fuzzer import (
    Mismatch,
    merge_reproducer,
    minimize_merge_case,
    minimize_sort_case,
    run_kway_case,
    run_merge_case,
    run_sort_case,
    sort_reproducer,
)
from .invariants import (
    check_flip_point_uniqueness,
    check_kway_balance,
    check_partition_balance,
    check_slice_disjointness,
)
from .races import audited_parallel_merge
from .registry import BackendCache, Implementation, build_registry
from .workloads import KwayCase, MergeCase, SortCase, kway_cases, merge_cases, sort_cases

__all__ = [
    "DEFAULT_SEED",
    "CheckResult",
    "ImplementationReport",
    "ConformanceReport",
    "run_conformance",
    "render_report",
]

#: Deterministic workload seed for the pytest quick tier (0xE = 14,
#: for Theorem 14).
DEFAULT_SEED = 0xE

#: Statuses that do not fail a report.
_OK_STATUSES = frozenset({"pass", "skip", "expected-fail"})


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one named check for one implementation."""

    name: str
    status: str  # pass | fail | skip | expected-fail
    detail: str = ""
    cases: int = 0
    mismatch: Mismatch | None = None


@dataclass(frozen=True)
class ImplementationReport:
    """All check outcomes for one registered implementation."""

    impl: Implementation
    checks: tuple[CheckResult, ...]

    @property
    def ok(self) -> bool:
        return all(c.status in _OK_STATUSES for c in self.checks)

    def check(self, name: str) -> CheckResult:
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(name)


@dataclass(frozen=True)
class ConformanceReport:
    """Aggregate result of one conformance run."""

    tier: str
    seed: int
    reports: tuple[ImplementationReport, ...]
    run_checks: tuple[CheckResult, ...] = ()

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports) and all(
            c.status in _OK_STATUSES for c in self.run_checks
        )

    @property
    def implementations(self) -> tuple[str, ...]:
        return tuple(r.impl.name for r in self.reports)

    @property
    def mismatches(self) -> tuple[Mismatch, ...]:
        out = []
        for r in self.reports:
            for c in r.checks:
                if c.mismatch is not None and c.status == "fail":
                    out.append(c.mismatch)
        return tuple(out)


# ----------------------------------------------------------------------
# Per-implementation check drivers
# ----------------------------------------------------------------------
def _differential_merge(
    impl: Implementation, cases: list[MergeCase], seed: int
) -> CheckResult:
    failures = 0
    first: Mismatch | None = None
    ran = 0
    for case in cases:
        if impl.max_elements is not None and case.total > impl.max_elements:
            continue
        ran += 1
        detail = run_merge_case(impl, case)
        if detail is None:
            continue
        failures += 1
        if first is None:
            small = minimize_merge_case(impl, case)
            small_detail = run_merge_case(impl, small) or detail
            first = Mismatch(
                impl=impl.name,
                case=case.name,
                detail=small_detail,
                inputs={"a": small.a, "b": small.b, "p": small.p},
                reproducer=merge_reproducer(impl, small, seed),
            )
    if impl.known_unsound:
        if failures:
            return CheckResult(
                "differential",
                "expected-fail",
                f"counterexample confirmed on {failures}/{ran} cases",
                cases=ran,
                mismatch=first,
            )
        return CheckResult(
            "differential",
            "fail",
            "known-unsound implementation passed every case — "
            "the oracle has lost its teeth",
            cases=ran,
        )
    if failures:
        assert first is not None
        return CheckResult(
            "differential",
            "fail",
            f"{failures}/{ran} cases failed; first (minimized): {first.detail}",
            cases=ran,
            mismatch=first,
        )
    return CheckResult("differential", "pass", cases=ran)


def _differential_sort(
    impl: Implementation, cases: list[SortCase], seed: int
) -> CheckResult:
    failures = 0
    first: Mismatch | None = None
    ran = 0
    for case in cases:
        if impl.max_elements is not None and len(case.x) > impl.max_elements:
            continue
        ran += 1
        detail = run_sort_case(impl, case)
        if detail is None:
            continue
        failures += 1
        if first is None:
            small = minimize_sort_case(impl, case)
            small_detail = run_sort_case(impl, small) or detail
            first = Mismatch(
                impl=impl.name,
                case=case.name,
                detail=small_detail,
                inputs={"x": small.x, "p": small.p},
                reproducer=sort_reproducer(impl, small, seed),
            )
    if failures:
        assert first is not None
        return CheckResult(
            "differential",
            "fail",
            f"{failures}/{ran} cases failed; first (minimized): {first.detail}",
            cases=ran,
            mismatch=first,
        )
    return CheckResult("differential", "pass", cases=ran)


def _differential_kway(impl: Implementation, cases: list[KwayCase]) -> CheckResult:
    failures = []
    ran = 0
    for case in cases:
        if impl.max_elements is not None and case.total > impl.max_elements:
            continue
        ran += 1
        detail = run_kway_case(impl, case)
        if detail is not None:
            failures.append(f"{case.name}: {detail}")
    if failures:
        return CheckResult(
            "differential", "fail", "; ".join(failures[:3]), cases=ran
        )
    return CheckResult("differential", "pass", cases=ran)


def _stability_check(
    impl: Implementation, cases: list[MergeCase], seed: int
) -> CheckResult:
    if impl.known_unsound:
        return CheckResult("stability", "skip", "known-unsound implementation")
    if impl.kind == "keyed":
        # Every keyed case checks the exact gather permutation, which
        # subsumes the signed-zero probe; run the duplicate-heavy grid.
        probes = [
            c
            for c in cases
            if c.stability_probe
            or "zipf" in c.name
            or "all_equal" in c.name
            or "singleton" in c.name
        ]
    elif not impl.stable:
        return CheckResult(
            "stability", "skip", "implementation makes no stability promise"
        )
    else:
        probes = [c for c in cases if c.stability_probe]
    ran = 0
    for case in probes:
        if impl.max_elements is not None and case.total > impl.max_elements:
            continue
        ran += 1
        detail = run_merge_case(impl, case)
        if detail is not None:
            small = minimize_merge_case(impl, case)
            small_detail = run_merge_case(impl, small) or detail
            return CheckResult(
                "stability",
                "fail",
                f"{case.name}: {small_detail}",
                cases=ran,
                mismatch=Mismatch(
                    impl=impl.name,
                    case=case.name,
                    detail=small_detail,
                    inputs={"a": small.a, "b": small.b, "p": small.p},
                    reproducer=merge_reproducer(impl, small, seed),
                ),
            )
    return CheckResult("stability", "pass", cases=ran)


def _balance_and_disjoint(
    impl: Implementation,
    mcases: list[MergeCase],
    scases: list[SortCase],
    kcases: list[KwayCase],
    partition_cache: dict[tuple[str, str], str | None],
) -> tuple[CheckResult, CheckResult]:
    """Theorem 14 balance + slice disjointness on the impl's case grid.

    The partition checks depend only on the case, so results are shared
    across implementations through ``partition_cache``; what varies per
    implementation is *which* cases are in budget.
    """
    balance_fail = None
    disjoint_fail = None
    ran = 0

    def record(kind: str, case_name: str, balance: str | None, disjoint: str | None):
        nonlocal balance_fail, disjoint_fail
        if balance is not None and balance_fail is None:
            balance_fail = f"{case_name}: {balance}"
        if disjoint is not None and disjoint_fail is None:
            disjoint_fail = f"{case_name}: {disjoint}"

    if impl.kind in ("merge", "keyed", "setop"):
        for case in mcases:
            if impl.max_elements is not None and case.total > impl.max_elements:
                continue
            ran += 1
            key = ("merge", case.name)
            if key not in partition_cache:
                part = partition_merge_path(case.a, case.b, case.p, check=False)
                partition_cache[key] = check_partition_balance(
                    case.a, case.b, case.p
                )
                partition_cache[("disjoint", case.name)] = check_slice_disjointness(
                    part
                )
            record(
                "merge",
                case.name,
                partition_cache[key],
                partition_cache[("disjoint", case.name)],
            )
    elif impl.kind == "sort":
        for case in scases:
            if impl.max_elements is not None and len(case.x) > impl.max_elements:
                continue
            ran += 1
            key = ("sort", case.name)
            if key not in partition_cache:
                ordered = np.sort(case.x, kind="stable")
                half = len(ordered) // 2
                a, b = ordered[:half], ordered[half:]
                partition_cache[key] = check_partition_balance(a, b, case.p)
                partition_cache[("disjoint-sort", case.name)] = (
                    check_slice_disjointness(
                        partition_merge_path(a, b, case.p, check=False)
                    )
                )
            record(
                "sort",
                case.name,
                partition_cache[key],
                partition_cache[("disjoint-sort", case.name)],
            )
    elif impl.kind == "kway":
        for case in kcases:
            if impl.max_elements is not None and case.total > impl.max_elements:
                continue
            ran += 1
            key = ("kway", case.name)
            if key not in partition_cache:
                partition_cache[key] = check_kway_balance(case.arrays, case.p)
            record("kway", case.name, partition_cache[key], None)

    balance = (
        CheckResult("balance", "fail", balance_fail, cases=ran)
        if balance_fail
        else CheckResult("balance", "pass", cases=ran)
    )
    disjoint = (
        CheckResult("disjoint", "fail", disjoint_fail, cases=ran)
        if disjoint_fail
        else CheckResult("disjoint", "pass", cases=ran)
    )
    return balance, disjoint


def _race_check(impl: Implementation, cases: list[MergeCase]) -> CheckResult:
    if impl.race_backend is None:
        return CheckResult(
            "races", "skip", "no partition+merge_into structure to instrument"
        )
    audited = 0
    for case in cases:
        if case.total == 0 or case.stability_probe:
            continue
        audited += 1
        findings = audited_parallel_merge(
            case.a, case.b, case.p, backend=impl.race_backend
        )
        if findings:
            first = findings[0]
            return CheckResult(
                "races",
                "fail",
                f"{case.name}: [{first.kind}] {first.detail}",
                cases=audited,
            )
        if audited >= 4:
            break
    return CheckResult("races", "pass", cases=audited)


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
def run_conformance(
    tier: str = "quick",
    *,
    seed: int = DEFAULT_SEED,
    registry: dict[str, Implementation] | None = None,
    chaos: bool = False,
) -> ConformanceReport:
    """Run the full conformance battery for one tier.

    ``registry`` overrides the built-in registry (used by the mutation
    tests to inject deliberately broken implementations).

    ``chaos=True`` adds the fault-injection tier: every injectable
    implementation is additionally driven through fault-wrapped
    backends (seeded errors, stragglers, hangs, worker deaths — see
    :mod:`repro.conformance.chaos`) and must still match the oracle via
    the resilience layer; two run-level checks cover real worker-death
    recovery and the graceful-degradation chain.
    """
    cache = BackendCache()
    chaos_cache = None
    chaos_reg: dict[str, Implementation] = {}
    if chaos:
        from .chaos import ChaosBackendCache

        chaos_cache = ChaosBackendCache(seed=seed)
        chaos_reg = build_registry(tier, backends=chaos_cache)
    try:
        reg = registry if registry is not None else build_registry(tier, backends=cache)
        mcases = list(merge_cases(tier, seed))
        scases = list(sort_cases(tier, seed))
        kcases = list(kway_cases(tier, seed))

        partition_cache: dict[tuple[str, str], str | None] = {}
        reports: list[ImplementationReport] = []
        for impl in reg.values():
            checks: list[CheckResult] = []
            if impl.kind in ("merge", "keyed", "setop"):
                checks.append(_differential_merge(impl, mcases, seed))
                checks.append(_stability_check(impl, mcases, seed))
            elif impl.kind == "sort":
                checks.append(_differential_sort(impl, scases, seed))
                checks.append(
                    CheckResult("stability", "skip",
                                "implementation makes no stability promise")
                    if not impl.stable
                    else _stability_check(impl, mcases, seed)
                )
            elif impl.kind == "kway":
                checks.append(_differential_kway(impl, kcases))
                checks.append(
                    CheckResult(
                        "stability", "skip",
                        "covered by the pairwise merge registration",
                    )
                )
            else:
                raise ValueError(f"unknown implementation kind {impl.kind!r}")
            balance, disjoint = _balance_and_disjoint(
                impl, mcases, scases, kcases, partition_cache
            )
            checks.append(balance)
            checks.append(disjoint)
            checks.append(_race_check(impl, mcases))
            if chaos_cache is not None:
                from .chaos import chaos_check

                chaos_impl = chaos_reg.get(impl.name, impl)
                checks.append(
                    chaos_check(chaos_impl, chaos_cache, mcases, scases, kcases)
                )
            reports.append(ImplementationReport(impl, tuple(checks)))

        # Run-level: Proposition 13 flip-point uniqueness, brute-forced
        # on the small cases (quadratic check, so bounded inputs only).
        flip_detail = None
        flip_count = 0
        for case in mcases:
            if case.total == 0 or case.total > 64:
                continue
            flip_count += 1
            detail = check_flip_point_uniqueness(case.a, case.b)
            if detail is not None:
                flip_detail = f"{case.name}: {detail}"
                break
        run_checks = (
            CheckResult(
                "flip-point-uniqueness",
                "fail" if flip_detail else "pass",
                flip_detail or "",
                cases=flip_count,
            ),
        )
        if chaos_cache is not None:
            from .chaos import chaos_run_checks

            chaos_cache.disarm()  # run-level checks build their own faults
            run_checks = run_checks + chaos_run_checks(seed)
        return ConformanceReport(
            tier=tier,
            seed=seed,
            reports=tuple(reports),
            run_checks=run_checks,
        )
    finally:
        if chaos_cache is not None:
            chaos_cache.close()
        cache.close()


def render_report(report: ConformanceReport) -> str:
    """Human-readable table + failure details with reproducers."""
    lines: list[str] = []
    lines.append(
        f"conformance tier={report.tier} seed={report.seed} — "
        f"{len(report.reports)} implementations"
    )
    columns = ("differential", "stability", "balance", "disjoint", "races")
    if any(c.name == "chaos" for r in report.reports for c in r.checks):
        columns = columns + ("chaos",)
    header = f"{'implementation':<36} {'kind':<6} " + " ".join(
        f"{name:<12}" for name in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    marks = {"pass": "ok", "fail": "FAIL", "skip": "-", "expected-fail": "xfail"}
    for r in report.reports:
        cells = []
        for name in columns:
            try:
                c = r.check(name)
                cells.append(f"{marks[c.status]:<12}")
            except KeyError:
                cells.append(f"{'-':<12}")
        lines.append(f"{r.impl.name:<36} {r.impl.kind:<6} " + " ".join(cells))
    for c in report.run_checks:
        lines.append(
            f"[run] {c.name}: {marks[c.status]}"
            + (f" ({c.detail})" if c.detail else "")
            + f" on {c.cases} case(s)"
        )
    chaos_details = [
        f"  {r.impl.name:<36} {c.detail}"
        for r in report.reports
        for c in r.checks
        if c.name == "chaos" and c.status == "pass" and c.detail
    ]
    if chaos_details:
        lines.append("")
        lines.append("chaos recovery per implementation:")
        lines.extend(chaos_details)
    failures = [
        (r, c)
        for r in report.reports
        for c in r.checks
        if c.status == "fail"
    ] + [(None, c) for c in report.run_checks if c.status == "fail"]
    if failures:
        lines.append("")
        lines.append(f"{len(failures)} FAILING check(s):")
        for r, c in failures:
            owner = r.impl.name if r is not None else "run-level"
            lines.append(f"  {owner} :: {c.name}: {c.detail}")
            if c.mismatch is not None:
                lines.append("  minimized reproducer:")
                for ln in c.mismatch.reproducer.splitlines():
                    lines.append(f"    {ln}")
    else:
        lines.append("all checks passed")
    return "\n".join(lines)
