"""Deterministic conformance workloads.

Every case is reconstructible from ``(tier, seed)`` alone — the fuzzer
reports carry the case name and seed so a mismatch can be replayed
exactly (see ``docs/testing.md``).  The generated grid covers:

* the statistical families of :mod:`repro.workloads.generators`;
* every adversarial pair of :mod:`repro.workloads.adversarial`;
* degenerate shapes: empty A and/or B, singletons, ``p >> N``;
* heavy duplicates (all-equal and Zipf vocabularies);
* **signed-zero stability probes** — float arrays where A's tie
  elements are ``-0.0`` and B's are ``+0.0``.  The two compare equal
  under ``<``/``<=``/``==`` (so every kernel treats them as ties) but
  ``numpy.signbit`` tells them apart, so the A-before-B tie rule is
  observable through value-only APIs: a stable merge must emit every
  signbit-set zero before every signbit-clear zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..workloads.adversarial import ADVERSARIAL_PAIRS
from ..workloads.generators import sorted_pair

__all__ = [
    "MergeCase",
    "SortCase",
    "KwayCase",
    "merge_cases",
    "sort_cases",
    "kway_cases",
    "stability_probe_pair",
]


@dataclass(frozen=True)
class MergeCase:
    """One differential-fuzzing input for a two-array merge."""

    name: str
    a: np.ndarray
    b: np.ndarray
    p: int
    #: True when the case carries signed-zero markers whose output order
    #: is meaningful only for implementations that promise stability.
    stability_probe: bool = False

    @property
    def total(self) -> int:
        return len(self.a) + len(self.b)


@dataclass(frozen=True)
class SortCase:
    """One differential-fuzzing input for a sort."""

    name: str
    x: np.ndarray
    p: int


@dataclass(frozen=True)
class KwayCase:
    """One differential-fuzzing input for a k-way merge."""

    name: str
    arrays: tuple[np.ndarray, ...] = field(default_factory=tuple)
    p: int = 1

    @property
    def total(self) -> int:
        return sum(len(arr) for arr in self.arrays)


def stability_probe_pair(
    seed: int, *, ties: int = 6, flank: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """A sorted float pair whose only ties are signed zeros.

    ``A`` contributes ``-0.0`` ties, ``B`` contributes ``+0.0`` ties,
    flanked by draws strictly below ``-1`` and strictly above ``1`` so
    both arrays stay sorted.  A stable merge must place all of A's
    zeros before all of B's.
    """
    rng = np.random.default_rng(seed)
    lo_a = np.sort(rng.integers(-50, -1, size=flank)).astype(np.float64)
    hi_a = np.sort(rng.integers(2, 50, size=flank)).astype(np.float64)
    lo_b = np.sort(rng.integers(-50, -1, size=flank)).astype(np.float64)
    hi_b = np.sort(rng.integers(2, 50, size=flank)).astype(np.float64)
    n_a = int(rng.integers(1, ties + 1))
    n_b = int(rng.integers(1, ties + 1))
    a = np.concatenate([lo_a, np.full(n_a, -0.0), hi_a])
    b = np.concatenate([lo_b, np.full(n_b, 0.0), hi_b])
    return a, b


def _tier_sizes(tier: str) -> tuple[int, int]:
    """(base array length, number of random seeds) per tier."""
    if tier == "quick":
        return 48, 2
    if tier == "full":
        return 256, 5
    raise ValueError(f"unknown tier {tier!r}; choose 'quick' or 'full'")


def merge_cases(tier: str, seed: int) -> Iterator[MergeCase]:
    """Yield the deterministic merge-case grid for a tier."""
    n, rounds = _tier_sizes(tier)
    empty = np.array([], dtype=np.int64)

    # Degenerate shapes: the cases field bug reports love most.
    yield MergeCase("empty_both", empty, empty, p=4)
    yield MergeCase("empty_a", empty, np.arange(5, dtype=np.int64), p=4)
    yield MergeCase("empty_b", np.arange(5, dtype=np.int64), empty, p=4)
    yield MergeCase(
        "singletons", np.array([3], dtype=np.int64), np.array([3], dtype=np.int64), p=4
    )
    yield MergeCase(
        "p_much_greater_than_n",
        np.array([1, 4], dtype=np.int64),
        np.array([2, 3, 5], dtype=np.int64),
        p=64,
    )

    # Adversarial families at tier size.
    for fam, make in ADVERSARIAL_PAIRS.items():
        a, b = make(n)
        yield MergeCase(f"adversarial:{fam}", a, b, p=8)

    # Statistical families, several deterministic seeds each.
    for r in range(rounds):
        for kind in ("uniform_ints", "uniform_floats", "zipf_duplicates"):
            a, b = sorted_pair(n, n + 11, seed + r, kind=kind)
            yield MergeCase(f"random:{kind}:{r}", a, b, p=5)

    # Stability probes (signed zeros).
    for r in range(rounds + 1):
        a, b = stability_probe_pair(seed + 101 * r)
        yield MergeCase(f"stability_probe:{r}", a, b, p=4, stability_probe=True)


def sort_cases(tier: str, seed: int) -> Iterator[SortCase]:
    """Yield the deterministic sort-case grid for a tier."""
    n, rounds = _tier_sizes(tier)
    rng = np.random.default_rng(seed)
    yield SortCase("empty", np.array([], dtype=np.int64), p=4)
    yield SortCase("singleton", np.array([9], dtype=np.int64), p=4)
    yield SortCase("all_equal", np.full(n, 7, dtype=np.int64), p=4)
    yield SortCase("already_sorted", np.arange(n, dtype=np.int64), p=4)
    yield SortCase("reversed", np.arange(n, dtype=np.int64)[::-1].copy(), p=4)
    yield SortCase(
        "p_much_greater_than_n", rng.integers(0, 9, size=5).astype(np.int64), p=64
    )
    for r in range(rounds):
        yield SortCase(
            f"random:uniform:{r}",
            rng.integers(0, 10 * n, size=2 * n).astype(np.int64),
            p=4,
        )
        yield SortCase(
            f"random:duplicates:{r}",
            rng.integers(0, 6, size=2 * n).astype(np.int64),
            p=4,
        )


def kway_cases(tier: str, seed: int) -> Iterator[KwayCase]:
    """Yield the deterministic k-way merge case grid for a tier."""
    n, rounds = _tier_sizes(tier)
    empty = np.array([], dtype=np.int64)
    yield KwayCase("no_arrays", (), p=4)
    yield KwayCase("all_empty", (empty, empty, empty), p=4)
    yield KwayCase(
        "one_nonempty", (empty, np.arange(4, dtype=np.int64), empty), p=4
    )
    yield KwayCase(
        "all_equal",
        (np.full(7, 3, dtype=np.int64), np.full(5, 3, dtype=np.int64)),
        p=9,
    )
    for r in range(rounds):
        rng = np.random.default_rng(seed + 31 * r)
        arrays = tuple(
            np.sort(rng.integers(0, n, size=int(rng.integers(0, n))))
            .astype(np.int64)
            for _ in range(int(rng.integers(2, 6)))
        )
        yield KwayCase(f"random:{r}", arrays, p=int(rng.integers(1, 9)))
