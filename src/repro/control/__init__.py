"""The control plane: the obs → autotune → SLO loop, closed.

The paper's Theorem 14 promises perfect load balance at any ``p`` —
but only a co-tuned (p, backend, kernel, batch-cutover) configuration
realizes it on a given host, and hosts change.  This package is the
subsystem that keeps the configuration honest at runtime:

* :mod:`~repro.control.slo` — declarative :class:`SLO` bounds over
  the unified metrics registry, and :func:`evaluate_slo` producing
  per-clause PASS/WARN/FAIL verdicts naming the offending metric.
* :mod:`~repro.control.controller` — the :class:`Controller`: consumes
  registry snapshot/delta windows and structured
  :class:`~repro.resilience.DegradationEvent` subscriptions, and
  retunes through the autotuner's calibration API
  (:mod:`repro.execution.tuning` is the shared pure policy).
* :mod:`~repro.control.doctor` — ``python -m repro doctor``: one-shot
  host probe + canary replay + SLO verdict, structured for CI.

CLI front doors::

    python -m repro doctor [--quick] [--json verdict.json] [--slo slo.json]
    python -m repro tune --watch [--cycles N] [--interval S]
"""

from .controller import ControlAction, ControlDecision, Controller
from .doctor import DoctorReport, render_doctor, run_doctor, write_doctor_json
from .slo import (
    DEFAULT_SLO,
    SLO,
    ClauseVerdict,
    SLOReport,
    evaluate_slo,
)

__all__ = [
    "SLO",
    "DEFAULT_SLO",
    "ClauseVerdict",
    "SLOReport",
    "evaluate_slo",
    "Controller",
    "ControlAction",
    "ControlDecision",
    "DoctorReport",
    "run_doctor",
    "render_doctor",
    "write_doctor_json",
]
