"""The feedback controller: obs → autotune → SLO, closed.

Before this module, four layers each decided "how parallel" on their
own: the autotuner's one-shot cold-start probes, the resilience
degradation chain, the load-balance gauges, and the bench ratchet.
The :class:`Controller` wires them into one supervise-and-retune loop:

1. **Observe** — read one :meth:`~repro.obs.MetricsRegistry.snapshot`
   / :meth:`~repro.obs.MetricsRegistry.delta` window (the canary
   workload, or live traffic, has been feeding the registry), plus any
   :class:`~repro.resilience.DegradationEvent` received since the last
   step.
2. **Evaluate** — :func:`~repro.control.slo.evaluate_slo` over the
   window.
3. **Act** — drive the autotuner's calibration API
   (:meth:`~repro.execution.autotune.Autotuner.seed` /
   :meth:`~repro.execution.autotune.Autotuner.calibrate`), never a
   private side channel, so cold start and steady state share one
   policy code path (:mod:`repro.execution.tuning`).

Deterministic retune rules (in order; each fires at most once per step):

* A :class:`~repro.resilience.RecoveryEvent` for a tuner-routable level
  (``processes``) → restore the ``process_cutover`` Rule 1 displaced
  (or recalibrate if the fall predates this controller): the breaker
  re-probe proved the level healthy, so stop pinning work below it.
* A degradation event whose fallen backend routes through the tuner
  (``processes``) → ``seed(process_cutover=NEVER)``: stop promoting
  threads→processes onto a level that just died.  Re-probing would be
  wasted work — the event already proves the level is unhealthy.
* Host fingerprint changed (cores added/removed, ``REPRO_*`` override
  flipped) → drop the cache and recalibrate: every cached crossover
  was measured on a machine that no longer exists.
* ``max_dispatches_per_call`` FAIL → double ``serial_cutover``
  (bounded): dispatch overhead dominates, so push more small calls
  onto the serial path.
* ``p99_ns_per_elem`` FAIL (and nothing above already retuned) → full
  recalibration: latency is out of budget for no structural reason the
  other rules recognise, so re-measure the crossovers.

The controller's own activity lands in the same registry it reads
(``control.*`` metrics), so the loop is observable with the tools this
repo already has — and testable through snapshot/delta alone.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..execution.autotune import Autotuner, get_autotuner
from ..execution.tuning import NEVER, HostFingerprint
from ..obs.tracer import NULL_SPAN
from ..resilience.degrade import (
    DegradationEvent,
    RecoveryEvent,
    subscribe_degradation,
    subscribe_recovery,
)
from .slo import FAIL, SLO, SLOReport, evaluate_slo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry, Tracer

__all__ = ["ControlAction", "ControlDecision", "Controller"]

#: ``serial_cutover`` growth is bounded here — past this every pooled
#: request would reroute to serial and the controller would have tuned
#: the parallel library into a sequential one.
MAX_SERIAL_CUTOVER = 1 << 24

#: ``control.last_status`` gauge encoding.
STATUS_CODE = {"PASS": 0.0, "WARN": 1.0, "FAIL": 2.0}


@dataclass(frozen=True, slots=True)
class ControlAction:
    """One retuning act: what was done to the tuner and why."""

    kind: str  # "seed" | "recalibrate" | "recommend-p"
    reason: str
    details: dict = field(default_factory=dict)

    def describe(self) -> str:
        extras = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
            if self.details else ""
        )
        return f"{self.kind}{extras}: {self.reason}"


@dataclass(frozen=True, slots=True)
class ControlDecision:
    """Everything one :meth:`Controller.step` observed and did."""

    report: SLOReport
    actions: tuple[ControlAction, ...]
    events: tuple[DegradationEvent, ...]
    delta: dict[str, Any]
    recoveries: tuple[RecoveryEvent, ...] = ()

    @property
    def retuned(self) -> bool:
        return any(a.kind in ("seed", "recalibrate") for a in self.actions)

    def describe(self) -> str:
        lines = [self.report.describe()]
        for ev in self.events:
            lines.append(
                f"  event: {ev.backend} {ev.kind} → "
                f"{ev.fallback or '<exhausted>'} ({ev.reason})"
            )
        for rec in self.recoveries:
            lines.append(
                f"  event: {rec.backend} recovered after {rec.outage_s:.2f}s "
                f"({rec.opens} open(s))"
            )
        for act in self.actions:
            lines.append(f"  action: {act.describe()}")
        if not self.actions:
            lines.append("  action: none (steady)")
        return "\n".join(lines)


class Controller:
    """Continuously retunes the autotuner against an SLO.

    Use as a context manager (subscription to degradation events is
    active between ``__enter__`` and ``__exit__``)::

        registry = MetricsRegistry()
        with Controller(slo, registry) as ctl:
            run_canary(registry, quick=True)
            decision = ctl.step()

    ``autotuner`` defaults to the process-wide one; tests inject their
    own (with a seeded cache path) to keep steps probe-free.
    """

    def __init__(
        self,
        slo: SLO,
        registry: "MetricsRegistry",
        *,
        autotuner: Autotuner | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.slo = slo
        self.registry = registry
        self.autotuner = autotuner or get_autotuner()
        self.tracer = tracer
        self._events: deque[DegradationEvent] = deque()
        self._recoveries: deque[RecoveryEvent] = deque()
        self._unsubscribe: Callable[[], None] | None = None
        self._unsubscribe_recovery: Callable[[], None] | None = None
        self._last_snapshot: dict[str, Any] | None = None
        self._fingerprint = self.autotuner.fingerprint()
        #: ``process_cutover`` value Rule 1 displaced with NEVER, so the
        #: recovery rule can restore it instead of guessing.
        self._saved_process_cutover: int | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Controller":
        """Begin listening for degradation/recovery events (idempotent)."""
        if self._unsubscribe is None:
            self._unsubscribe = subscribe_degradation(self._events.append)
        if self._unsubscribe_recovery is None:
            self._unsubscribe_recovery = subscribe_recovery(
                self._recoveries.append
            )
        return self

    def stop(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._unsubscribe_recovery is not None:
            self._unsubscribe_recovery()
            self._unsubscribe_recovery = None

    def __enter__(self) -> "Controller":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- the control step ----------------------------------------------

    def _drain_events(self) -> tuple[DegradationEvent, ...]:
        events = []
        while self._events:
            events.append(self._events.popleft())
        return tuple(events)

    def _drain_recoveries(self) -> tuple[RecoveryEvent, ...]:
        events = []
        while self._recoveries:
            events.append(self._recoveries.popleft())
        return tuple(events)

    def step(self) -> ControlDecision:
        """One observe → evaluate → act cycle (see module docstring)."""
        span = (
            self.tracer.span("control.step")
            if self.tracer is not None else NULL_SPAN
        )
        with span:
            delta = self.registry.delta(self._last_snapshot)
            report = evaluate_slo(self.slo, delta)
            events = self._drain_events()
            recoveries = self._drain_recoveries()
            actions = self._decide(report, events, recoveries)
            self._publish(report, events, actions, recoveries)
            self._last_snapshot = self.registry.snapshot()
            decision = ControlDecision(
                report=report, actions=actions, events=events, delta=delta,
                recoveries=recoveries,
            )
            span.set(status=report.status, actions=len(actions),
                     events=len(events), recoveries=len(recoveries))
        return decision

    def _decide(
        self,
        report: SLOReport,
        events: tuple[DegradationEvent, ...],
        recoveries: tuple[RecoveryEvent, ...] = (),
    ) -> tuple[ControlAction, ...]:
        actions: list[ControlAction] = []
        retuned = False

        # Rule 0: a recovered tuner-routable level gets its cutover back.
        # (Before Rule 1 so that recover-then-fall in one window still
        # lands on NEVER — the most recent state wins.)
        recovered = {rec.backend for rec in recoveries}
        if "processes" in recovered:
            if self.autotuner.thresholds().process_cutover == NEVER:
                restored = self._saved_process_cutover
                self._saved_process_cutover = None
                if restored is not None:
                    self.autotuner.seed(process_cutover=restored)
                    actions.append(ControlAction(
                        kind="seed",
                        reason="processes level recovered; restoring the "
                               "threads→processes promotion",
                        details={"process_cutover": restored},
                    ))
                else:
                    # We never saw the fall (started mid-outage): no
                    # saved value to restore, so re-measure instead.
                    self.autotuner.calibrate()
                    actions.append(ControlAction(
                        kind="recalibrate",
                        reason="processes level recovered with no saved "
                               "cutover; re-probing host crossovers",
                    ))
                retuned = True

        # Rule 1: a fallen tuner-routable level must stop receiving work.
        fallen = {ev.backend for ev in events}
        if "processes" in fallen:
            prior = self.autotuner.thresholds().process_cutover
            if prior != NEVER:
                self._saved_process_cutover = prior
                self.autotuner.seed(process_cutover=NEVER)
                actions.append(ControlAction(
                    kind="seed",
                    reason="processes level degraded; disabling the "
                           "threads→processes promotion",
                    details={"process_cutover": "NEVER"},
                ))
                retuned = True

        # Rule 2: the machine changed under us.
        current = self.autotuner.fingerprint()
        if current != self._fingerprint:
            self._fingerprint = current
            self.autotuner.clear()
            self.autotuner.calibrate()
            actions.append(ControlAction(
                kind="recalibrate",
                reason="host fingerprint changed; cached crossovers "
                       "measured on a different machine shape",
                details={"cpu_count": current.cpu_count},
            ))
            retuned = True

        # Rule 3: dispatch overhead out of budget → widen the serial lane.
        clause = report.clause("max_dispatches_per_call")
        if clause is not None and clause.status == FAIL:
            cutover = self.autotuner.thresholds().serial_cutover
            if cutover < MAX_SERIAL_CUTOVER:
                new = min(max(cutover, 1) * 2, MAX_SERIAL_CUTOVER)
                self.autotuner.seed(serial_cutover=new)
                actions.append(ControlAction(
                    kind="seed",
                    reason="dispatches per call above SLO; rerouting more "
                           "small calls to the serial path",
                    details={"serial_cutover": new},
                ))
                retuned = True

        # Rule 4: unexplained tail latency → re-measure the crossovers.
        clause = report.clause("p99_ns_per_elem")
        if clause is not None and clause.status == FAIL and not retuned:
            self.autotuner.calibrate()
            actions.append(ControlAction(
                kind="recalibrate",
                reason="p99 latency above SLO with no structural cause; "
                       "re-probing host crossovers",
            ))
            retuned = True

        # Advisory: recommend a worker count from the balance gauges.
        imbalance = report.clause("max_time_imbalance")
        if imbalance is not None and imbalance.status == FAIL:
            workers = int(self.registry.value("balance.workers", 0))
            if workers > 1:
                actions.append(ControlAction(
                    kind="recommend-p",
                    reason="per-worker time imbalance above SLO; "
                           "fewer workers would waste less of the barrier",
                    details={"p": max(1, workers // 2)},
                ))

        return tuple(actions)

    def _publish(
        self,
        report: SLOReport,
        events: tuple[DegradationEvent, ...],
        actions: tuple[ControlAction, ...],
        recoveries: tuple[RecoveryEvent, ...] = (),
    ) -> None:
        reg = self.registry
        reg.counter("control.steps").inc()
        if events:
            reg.counter("control.degradations").inc(len(events))
        if recoveries:
            reg.counter("control.recoveries").inc(len(recoveries))
        retunes = sum(1 for a in actions if a.kind in ("seed", "recalibrate"))
        if retunes:
            reg.counter("control.retunes").inc(retunes)
        failures = len(report.failed)
        if failures:
            reg.counter("control.slo_failures").inc(failures)
        reg.gauge("control.last_status").set(STATUS_CODE[report.status])
        for act in actions:
            if act.kind == "recommend-p":
                reg.gauge("control.recommended_p").set(float(act.details["p"]))

    # -- the watch loop ------------------------------------------------

    def watch(
        self,
        workload: Callable[["MetricsRegistry"], Any],
        *,
        cycles: int = 3,
        interval_s: float = 0.0,
    ):
        """Generator driving ``cycles`` observe→evaluate→act rounds.

        ``workload`` feeds the registry each round (the CLI passes the
        canary; a service would pass a no-op and let live traffic
        accumulate).  Yields each round's :class:`ControlDecision` so
        the caller renders progress; sleeps ``interval_s`` between
        rounds (never after the last).
        """
        for cycle in range(cycles):
            span = (
                self.tracer.span("control.cycle", cycle=cycle)
                if self.tracer is not None else NULL_SPAN
            )
            with span:
                workload(self.registry)
                decision = self.step()
            yield decision
            if interval_s > 0 and cycle + 1 < cycles:
                time.sleep(interval_s)
