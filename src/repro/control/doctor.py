"""``python -m repro doctor`` — one-shot operability verdict.

The doctor answers "is this host serving the paper's promise?" in one
command: probe the host and the degradation chain, replay the canary
workload through the tuned path, judge the resulting metrics window
against the SLO, and print PASS/WARN/FAIL per clause with the
offending metric.  The whole run is wrapped in trace spans
(``doctor.run`` / ``doctor.probe`` / ``doctor.canary``), so the
doctor's own decisions are as observable as the code it judges.

The verdict is structured (:meth:`DoctorReport.to_dict`, schema
``repro-doctor/1``) so CI can gate on it and archive it next to the
bench artifact — see the ``doctor-smoke`` job and
``docs/operations.md``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from ..execution.autotune import Autotuner, autotune_enabled, get_autotuner
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from .slo import DEFAULT_SLO, FAIL, SLO, SLOReport, evaluate_slo

__all__ = [
    "DoctorReport",
    "run_doctor",
    "render_doctor",
    "write_doctor_json",
    "load_metrics_snapshot",
]

DOCTOR_SCHEMA = "repro-doctor/1"


@dataclass
class DoctorReport:
    """Everything one doctor run measured and concluded."""

    slo: SLO
    report: SLOReport
    host: dict[str, Any] = field(default_factory=dict)
    probes: dict[str, str] = field(default_factory=dict)
    autotune: dict[str, Any] = field(default_factory=dict)
    canary_notes: list[str] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def status(self) -> str:
        return self.report.status

    @property
    def ok(self) -> bool:
        """FAIL-free (WARN does not gate — shared hosts are noisy)."""
        return self.status != FAIL

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": DOCTOR_SCHEMA,
            "status": self.status,
            "slo": self.slo.to_dict(),
            "verdict": self.report.to_dict(),
            "host": self.host,
            "probes": self.probes,
            "autotune": self.autotune,
            "canary": self.canary_notes,
            "metrics": self.metrics,
        }


def _host_facts(tuner: Autotuner) -> dict[str, Any]:
    facts: dict[str, Any] = tuner.fingerprint().to_dict()
    facts["cpu_count"] = os.cpu_count() or 1
    try:
        one, five, fifteen = os.getloadavg()
        facts["load_avg_1m"] = round(one, 3)
        facts["load_avg_5m"] = round(five, 3)
    except (OSError, AttributeError):  # pragma: no cover - platform gap
        facts["load_avg_1m"] = None
    return facts


def load_metrics_snapshot(path: str) -> dict[str, Any]:
    """Read a metrics window from ``path`` for ``--metrics-from``.

    Accepts either a raw :meth:`~repro.obs.MetricsRegistry.snapshot`
    dict, or a wrapper object carrying one under a ``"metrics"`` key
    (the shape both the doctor verdict and the serve smoke harness
    write), so artifacts can be fed straight back in.
    """
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object snapshot")
    inner = doc.get("metrics")
    if isinstance(inner, dict) and inner:
        return inner
    return doc


def run_doctor(
    slo: SLO | None = None,
    *,
    quick: bool = False,
    seed: int = 7,
    p: int | None = None,
    backend: str = "threads",
    autotuner: Autotuner | None = None,
    metrics_from: str | None = None,
) -> DoctorReport:
    """Probe the host, replay the canary, judge the SLO.

    ``quick`` shrinks the canary and skips the (fork-heavy) process
    backend probe; its clause verdicts are then computed from whatever
    was recorded — absent metrics SKIP rather than FAIL, so a quick
    verdict never lies about something it did not measure.

    ``metrics_from`` judges a *persisted* metrics window (a snapshot
    JSON, e.g. captured off a live server's ``metrics`` op) instead of
    replaying the canary — the live-traffic mode the serve front door
    and its smoke harness use.  Host facts and probes still run.
    """
    from ..resilience.degrade import probe_backend
    from ..workloads.canary import run_canary

    slo = slo or DEFAULT_SLO
    tuner = autotuner or get_autotuner()
    tracer = Tracer()
    registry = MetricsRegistry()

    with tracer.span("doctor.run", quick=quick):
        with tracer.span("doctor.probe"):
            host = _host_facts(tuner)
            probes: dict[str, str] = {}
            for name in ("threads",) if quick else ("threads", "processes"):
                defect = probe_backend(name)
                probes[name] = "ok" if defect is None else defect
            th = tuner.thresholds()  # may probe + write the cache
            autotune_facts: dict[str, Any] = {
                "enabled": autotune_enabled(),
                "cache_path": str(tuner.cache_path),
                "cache_state": tuner.cache_state(),
                "thresholds": {
                    "serial_cutover": th.serial_cutover,
                    "process_cutover": th.process_cutover,
                    "tiny_kernel_cutover": th.tiny_kernel_cutover,
                    "source": th.source,
                },
            }

        if metrics_from is not None:
            snapshot = load_metrics_snapshot(metrics_from)
            notes = [f"metrics window loaded from {metrics_from} "
                     "(canary skipped)"]
        else:
            with tracer.span("doctor.canary"):
                canary = run_canary(
                    registry, quick=quick, seed=seed, p=p, backend=backend
                )
            snapshot = registry.snapshot()
            notes = canary.notes

        report = evaluate_slo(slo, snapshot)

    return DoctorReport(
        slo=slo,
        report=report,
        host=host,
        probes=probes,
        autotune=autotune_facts,
        canary_notes=notes,
        metrics=snapshot,
    )


def render_doctor(doc: DoctorReport) -> str:
    """The human verdict: host facts, probes, then per-clause lines."""
    lines = [f"repro doctor — overall: {doc.status}", ""]
    lines.append(
        f"host: {doc.host.get('cpu_count')} cpus, "
        f"python {doc.host.get('python')}, "
        f"load {doc.host.get('load_avg_1m')}"
    )
    for name, state in doc.probes.items():
        lines.append(f"backend {name}: {state}")
    at = doc.autotune
    lines.append(
        f"autotune: enabled={at.get('enabled')} "
        f"cache={at.get('cache_state')} ({at.get('cache_path')})"
    )
    from ..execution.tuning import NEVER

    def _cut(v: Any) -> Any:
        return "never" if v == NEVER else v

    th = at.get("thresholds", {})
    lines.append(
        f"  thresholds: serial<{_cut(th.get('serial_cutover'))} "
        f"processes>={_cut(th.get('process_cutover'))} "
        f"tiny<{th.get('tiny_kernel_cutover')} "
        f"[{th.get('source')}]"
    )
    for note in doc.canary_notes:
        lines.append(f"# {note}")
    lines.append("")
    lines.append(doc.report.describe())
    return "\n".join(lines)


def write_doctor_json(doc: DoctorReport, path: str) -> None:
    """Persist the structured verdict (CI artifact next to the bench)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc.to_dict(), fh, indent=2)
        fh.write("\n")
