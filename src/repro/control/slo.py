"""Declarative SLOs over the unified metrics registry.

An :class:`SLO` is a small set of bounds on metrics every subsystem
already emits into one :class:`~repro.obs.MetricsRegistry` — latency
quantiles from the canary histograms, the Theorem 14 work-spread
gauge, the batched engine's dispatch accounting, the resilience
layer's retry counters.  :func:`evaluate_slo` turns one registry
snapshot (or a :meth:`~repro.obs.MetricsRegistry.delta` window) into a
per-clause PASS/WARN/FAIL report naming the offending metric, which is
exactly what ``python -m repro doctor`` prints and what the
:class:`~repro.control.Controller` acts on.

Clause semantics: every bound is a *maximum*.  A clause whose metric
was never recorded is ``SKIP`` (it does not gate — a quick doctor run
that skipped the process probe must not fail the process clause); a
clause at or past its limit is ``FAIL``; within ``warn_fraction`` of
the limit it is ``WARN``.  The work-spread clause is special: the
paper's Theorem 14 *guarantees* spread <= 1, so its default limit is 1
and exceeding it means a partitioning bug, not a slow host.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Any

__all__ = [
    "SLO",
    "ClauseVerdict",
    "SLOReport",
    "evaluate_slo",
    "DEFAULT_SLO",
]

PASS, WARN, FAIL, SKIP = "PASS", "WARN", "FAIL", "SKIP"

#: Verdict severity order (worst wins for the report status).
_SEVERITY = {PASS: 0, SKIP: 0, WARN: 1, FAIL: 2}


@dataclass(frozen=True, slots=True)
class SLO:
    """Bounds on one control window.  ``None`` disables a clause.

    ``p50_ns_per_elem`` / ``p99_ns_per_elem``
        Canary latency quantiles (``slo.ns_per_elem`` histogram).
    ``max_work_spread``
        Theorem 14 witness (``balance.work_spread`` gauge); > 1 means
        the partitioner is broken, never merely slow.
    ``max_dispatches_per_call``
        Batched-engine ceiling (``exec.dispatches_per_call`` gauge): a
        merge is one dispatch, a sort ``O(log p)`` — a blowup here
        means the engine stopped fusing phases.
    ``max_time_imbalance``
        Per-worker busy-time max/mean from the traced canary merge
        (``balance.time_imbalance`` gauge).
    ``retry_budget``
        Max ``resilience.retries`` in the window — a persistently
        retrying backend is degraded capacity even when results are
        correct.
    ``max_worker_deaths``
        Max ``resilience.worker_deaths`` in the window.
    ``warn_fraction``
        A measurement at or past ``limit * warn_fraction`` (but under
        the limit) gets WARN instead of PASS.  The warn band applies
        only to the *continuous* clauses (latency quantiles, time
        imbalance); the structural clauses (work spread, dispatches,
        retries, deaths) sit at their limit in normal operation — a
        work spread of exactly 1 is Theorem 14 working as proved — so
        they verdict PASS/FAIL only.
    """

    name: str = "default"
    p50_ns_per_elem: float | None = 250.0
    p99_ns_per_elem: float | None = 1200.0
    max_work_spread: float | None = 1.0
    max_dispatches_per_call: float | None = 64.0
    max_time_imbalance: float | None = None
    retry_budget: int | None = 0
    max_worker_deaths: int | None = 0
    warn_fraction: float = 0.8

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "SLO":
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown SLO field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**raw)

    @classmethod
    def from_file(cls, path: str) -> "SLO":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


#: The SLO used when the caller provides none.  Latency bounds are
#: deliberately loose (pure-Python kernels on shared CI runners); the
#: structural clauses (work spread, dispatch count, retries, deaths)
#: are the tight ones — they catch bugs, not slow hardware.
DEFAULT_SLO = SLO()


@dataclass(frozen=True, slots=True)
class ClauseVerdict:
    """One clause's outcome: the bound, what was observed, and where."""

    clause: str
    status: str
    metric: str
    observed: float | None
    limit: float

    def describe(self) -> str:
        if self.observed is None:
            return (
                f"{self.status:<4} {self.clause}: metric {self.metric!r} "
                "not recorded"
            )
        return (
            f"{self.status:<4} {self.clause}: observed {self.observed:.3f} "
            f"vs limit {self.limit:.3f} ({self.metric})"
        )


@dataclass(frozen=True, slots=True)
class SLOReport:
    """All clause verdicts of one evaluation; ``status`` is the worst."""

    slo_name: str
    clauses: tuple[ClauseVerdict, ...]

    @property
    def status(self) -> str:
        worst = PASS
        for c in self.clauses:
            if _SEVERITY[c.status] > _SEVERITY[worst]:
                worst = c.status
        return worst

    @property
    def failed(self) -> tuple[ClauseVerdict, ...]:
        return tuple(c for c in self.clauses if c.status == FAIL)

    def clause(self, name: str) -> ClauseVerdict | None:
        for c in self.clauses:
            if c.clause == name:
                return c
        return None

    def describe(self) -> str:
        lines = [f"SLO {self.slo_name!r}: {self.status}"]
        lines.extend(f"  {c.describe()}" for c in self.clauses)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "slo": self.slo_name,
            "status": self.status,
            "clauses": [asdict(c) for c in self.clauses],
        }


def _lookup(snapshot: dict[str, Any], metric: str, key: str | None) -> float | None:
    """Read ``metric`` (optionally a histogram-summary ``key``) from a
    snapshot; ``None`` when absent or never populated."""
    value = snapshot.get(metric)
    if value is None:
        return None
    if key is not None:
        if not isinstance(value, dict) or not value.get("count"):
            return None
        return float(value.get(key, 0.0))
    return float(value)


def _judge(
    observed: float | None, limit: float, warn_fraction: float | None
) -> str:
    if observed is None:
        return SKIP
    if observed > limit:
        return FAIL
    if (
        warn_fraction is not None
        and limit > 0
        and observed >= limit * warn_fraction
    ):
        return WARN
    return PASS


def evaluate_slo(slo: SLO, snapshot: dict[str, Any]) -> SLOReport:
    """Judge one metrics snapshot (or delta window) against ``slo``.

    ``snapshot`` is whatever :meth:`~repro.obs.MetricsRegistry.snapshot`
    or :meth:`~repro.obs.MetricsRegistry.delta` returned — plain dicts,
    so reports can also be computed from persisted JSON.
    """
    warn = slo.warn_fraction
    spec: list[tuple[str, float | None, str, str | None, float | None]] = [
        ("p50_ns_per_elem", slo.p50_ns_per_elem,
         "slo.ns_per_elem", "p50", warn),
        ("p99_ns_per_elem", slo.p99_ns_per_elem,
         "slo.ns_per_elem", "p99", warn),
        ("max_work_spread", slo.max_work_spread,
         "balance.work_spread", None, None),
        ("max_dispatches_per_call", slo.max_dispatches_per_call,
         "exec.dispatches_per_call", None, None),
        ("max_time_imbalance", slo.max_time_imbalance,
         "balance.time_imbalance", None, warn),
        ("retry_budget",
         float(slo.retry_budget) if slo.retry_budget is not None else None,
         "resilience.retries", None, None),
        ("max_worker_deaths",
         float(slo.max_worker_deaths)
         if slo.max_worker_deaths is not None else None,
         "resilience.worker_deaths", None, None),
    ]
    clauses = []
    for clause, limit, metric, key, warn_frac in spec:
        if limit is None:
            continue
        observed = _lookup(snapshot, metric, key)
        metric_name = f"{metric} {key}" if key else metric
        clauses.append(ClauseVerdict(
            clause=clause,
            status=_judge(observed, float(limit), warn_frac),
            metric=metric_name,
            observed=observed,
            limit=float(limit),
        ))
    return SLOReport(slo_name=slo.name, clauses=tuple(clauses))
