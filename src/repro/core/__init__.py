"""Core merge-path algorithms: the paper's primary contribution.

Modules
-------
merge_matrix
    Explicit (O(|A|·|B|)) reference model of the binary Merge Matrix and
    Merge Path of Section II.  Used by tests and teaching examples, never
    by the production kernels.
merge_path
    The diagonal binary search of Theorem 14 and partitioning into
    per-processor segments — scalar and vectorized forms.
sequential
    In-segment merge kernels: two-pointer, galloping, and the numpy
    ``searchsorted``-based vectorized kernel.
parallel_merge
    Algorithm 1 (Parallel Merge) over pluggable execution backends.
segmented_merge
    Algorithm 2 (Segmented Parallel Merge, cache-efficient).
merge_sort
    Parallel merge sort of Section III.
cache_sort
    Cache-efficient parallel sort of Section IV.C.
selection
    k-th smallest of the union of sorted arrays (used by baselines and
    the k-way extension).
kway
    k-way generalization of merge-path partitioning (extension).
"""

from .merge_matrix import MergeMatrix, build_merge_path, path_to_merged
from .merge_path import (
    diagonal_bounds,
    diagonal_intersection,
    diagonal_intersections_vectorized,
    partition_merge_path,
    partition_at_positions,
)
from .sequential import (
    merge_two_pointer,
    merge_galloping,
    merge_vectorized,
    merge_into,
    KERNELS,
)
from .parallel_merge import parallel_merge, merge
from .segmented_merge import segmented_parallel_merge, plan_segments
from .merge_sort import parallel_merge_sort, merge_sort_rounds
from .cache_sort import cache_efficient_sort
from .selection import kth_of_union, kth_of_union_many, topk_of_union
from .kway import kway_partition, kway_merge
from .keyed import argmerge, merge_by_key, take_merged, merge_records
from .streaming import streaming_merge
from .inplace import merge_inplace, merge_inplace_parallel
from .natural_sort import find_natural_runs, natural_merge_sort
from .setops import (
    set_union,
    set_intersection,
    set_difference,
    set_symmetric_difference,
)

__all__ = [
    "MergeMatrix",
    "build_merge_path",
    "path_to_merged",
    "diagonal_bounds",
    "diagonal_intersection",
    "diagonal_intersections_vectorized",
    "partition_merge_path",
    "partition_at_positions",
    "merge_two_pointer",
    "merge_galloping",
    "merge_vectorized",
    "merge_into",
    "KERNELS",
    "parallel_merge",
    "merge",
    "segmented_parallel_merge",
    "plan_segments",
    "parallel_merge_sort",
    "merge_sort_rounds",
    "cache_efficient_sort",
    "kth_of_union",
    "kth_of_union_many",
    "topk_of_union",
    "kway_partition",
    "kway_merge",
    "argmerge",
    "merge_by_key",
    "take_merged",
    "merge_records",
    "streaming_merge",
    "set_union",
    "set_intersection",
    "set_difference",
    "set_symmetric_difference",
    "merge_inplace",
    "merge_inplace_parallel",
    "find_natural_runs",
    "natural_merge_sort",
]
