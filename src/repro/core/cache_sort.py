"""Cache-efficient parallel sort (Section IV.C).

Three stages, exactly as the paper lays them out:

1. Partition the unsorted input into sub-arrays of at most a fraction of
   the cache size ``C``.
2. Sort the sub-arrays one after the other, each with the *parallel*
   sort on all ``p`` processors (the whole working set is in cache, so
   the parallel merge rounds never miss).
3. Merge rounds: repeatedly apply the cache-efficient Segmented Parallel
   Merge (Algorithm 2) to adjacent pairs of sorted runs until a single
   run remains — a binary merge tree of height ``log2(N/C)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..backends import Backend, get_backend
from ..types import MergeStats
from ..validation import as_array, check_positive
from .merge_sort import parallel_merge_sort
from .segmented_merge import block_length, segmented_parallel_merge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry, Tracer

__all__ = ["cache_efficient_sort"]


def cache_efficient_sort(
    x: Sequence | np.ndarray,
    p: int,
    cache_elements: int,
    *,
    backend: Backend | str = "threads",
    kernel: str = "vectorized",
    block_fraction: int = 3,
    stats: MergeStats | None = None,
    trace: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> np.ndarray:
    """Sort ``x`` with ``p`` processors and a ``C``-element cache budget.

    Parameters
    ----------
    x:
        Input array, any order.
    p:
        Processor count.
    cache_elements:
        Cache capacity ``C`` in *elements*; stage 1 blocks are ``C/3``
        elements so input + output of a block-local sort co-reside.
    backend, kernel:
        As in :func:`repro.core.parallel_merge.parallel_merge`.
    block_fraction:
        The ``C/3`` divisor, exposed for the sizing ablation.
    stats:
        Optional operation counter covering the merge work — the same
        ``MergeStats``-shaped sink every other entry point takes (pass
        ``MetricsRegistry.merge_stats()`` to count straight into the
        unified registry).
    trace, metrics:
        Optional :class:`~repro.obs.Tracer` /
        :class:`~repro.obs.MetricsRegistry`, forwarded to the
        stage 2 parallel sorts and stage 3 segmented merges.

    Returns
    -------
    numpy.ndarray
        Sorted copy of ``x``.
    """
    check_positive(p, "p")
    check_positive(cache_elements, "cache_elements")
    arr = as_array(x, "x")
    n = len(arr)
    if n <= 1:
        return arr.copy()

    L = block_length(cache_elements, block_fraction)
    own_backend = isinstance(backend, str)
    be = get_backend(backend, max_workers=p) if own_backend else backend
    try:
        # Stage 1+2: cache-sized blocks, each sorted by all p processors.
        runs: list[np.ndarray] = []
        for lo in range(0, n, L):
            chunk = arr[lo : lo + L]
            runs.append(
                parallel_merge_sort(chunk, p, backend=be, kernel=kernel,
                                    stats=stats, trace=trace, metrics=metrics)
            )

        # Stage 3: binary tree of segmented (cache-efficient) merges.
        while len(runs) > 1:
            next_runs: list[np.ndarray] = []
            for i in range(0, len(runs) - 1, 2):
                merged = segmented_parallel_merge(
                    runs[i],
                    runs[i + 1],
                    p,
                    L=L,
                    backend=be,
                    kernel=kernel,
                    check=False,
                    stats=stats,
                    trace=trace,
                    metrics=metrics,
                )
                next_runs.append(merged)
            if len(runs) % 2:
                next_runs.append(runs[-1])
            runs = next_runs
        return runs[0]
    finally:
        if own_backend:
            be.close()
