"""In-place merge (SymMerge) — completing the merge toolbox.

Everything else in the package merges into fresh output storage, as the
paper does.  Library users also ask for the ``std::inplace_merge``
shape: two adjacent sorted runs inside one buffer, merged without an
N-sized scratch.  We implement **SymMerge** (Kim & Kutzner, 2004):

* find, by binary search, a symmetric decomposition point around the
  run boundary such that swapping the two middle sub-blocks (a
  rotation) leaves two *smaller* adjacent-run problems;
* recurse on both halves.

O((n + m)·log(n+m)) comparisons-and-moves, O(log) stack, O(1) extra
space, **stable** — and, pleasingly, its core search is again a merge
path/diagonal intersection in disguise: it locates where the merge path
of the two middle blocks crosses their anti-diagonal.

``merge_inplace_parallel`` adds the merge-path twist: partition the
*pair of runs* with diagonal searches, rotate the buffer once so each
processor's A- and B-pieces become adjacent, then run independent
SymMerges — in-place parallel merging with ``p`` workers.
"""

from __future__ import annotations

import sys

import numpy as np

from ..backends import Backend, get_backend
from ..errors import InputError
from ..validation import as_array, check_positive, check_sorted
from .merge_path import partition_merge_path

__all__ = ["merge_inplace", "merge_inplace_parallel", "rotate"]


def rotate(arr: np.ndarray, lo: int, mid: int, hi: int) -> None:
    """Rotate ``arr[lo:hi]`` so ``arr[mid:hi]`` comes before ``arr[lo:mid]``.

    Triple-reversal rotation: O(hi - lo) moves, O(1) space.
    """
    if not 0 <= lo <= mid <= hi <= len(arr):
        raise InputError(f"invalid rotation bounds ({lo}, {mid}, {hi})")
    arr[lo:mid] = arr[lo:mid][::-1]
    arr[mid:hi] = arr[mid:hi][::-1]
    arr[lo:hi] = arr[lo:hi][::-1]


def _symmerge(arr: np.ndarray, a: int, m: int, b: int) -> None:
    """Recursive SymMerge of runs ``arr[a:m]`` and ``arr[m:b]``.

    A faithful port of Go's ``sort.symMerge`` (itself the Kim–Kutzner
    algorithm): single-element runs are inserted by rotation; otherwise
    the symmetric search pairs index ``c`` with its mirror ``n-1-c``
    around the midpoint and bisects for the swap boundary — which is
    exactly the merge path of the two middle blocks crossing their
    anti-diagonal.
    """
    if m - a == 0 or b - m == 0:
        return
    if m - a == 1:
        # Insert arr[a] into arr[m:b]: before the first element >= it
        # (stability: the left-run element precedes equal right-run ones).
        j = m + int(np.searchsorted(arr[m:b], arr[a], side="left"))
        rotate(arr, a, m, j)
        return
    if b - m == 1:
        # Insert arr[m] into arr[a:m]: before the first element greater
        # (stability: after equal left-run elements).
        j = a + int(np.searchsorted(arr[a:m], arr[m], side="right"))
        rotate(arr, j, m, b)
        return

    mid = (a + b) // 2
    n = mid + m
    if m > mid:
        start, r = n - b, mid
    else:
        start, r = a, m
    p = n - 1
    while start < r:
        c = (start + r) // 2
        # stable variant of Go's !Less(p-c, c): left-run element at c
        # goes first when arr[c] <= arr[p - c]
        if arr[c] <= arr[p - c]:
            start = c + 1
        else:
            r = c
    end = n - start
    if start < m < end:
        rotate(arr, start, m, end)
    if a < start and start < mid:
        _symmerge(arr, a, start, mid)
    if mid < end and end < b:
        _symmerge(arr, mid, end, b)


def merge_inplace(
    arr: np.ndarray,
    mid: int,
    *,
    lo: int = 0,
    hi: int | None = None,
    check: bool = True,
) -> None:
    """Stable in-place merge of adjacent sorted runs ``arr[lo:mid]`` and
    ``arr[mid:hi]`` (the ``std::inplace_merge`` interface).

    O((hi-lo) log (hi-lo)) time, O(log) recursion, O(1) extra space.
    """
    arr = as_array(arr, "arr")
    if hi is None:
        hi = len(arr)
    if not 0 <= lo <= mid <= hi <= len(arr):
        raise InputError(f"invalid run bounds lo={lo}, mid={mid}, hi={hi}")
    if check:
        check_sorted(arr[lo:mid], "arr[lo:mid]")
        check_sorted(arr[mid:hi], "arr[mid:hi]")
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000))
    try:
        _symmerge(arr, lo, mid, hi)
    finally:
        sys.setrecursionlimit(old_limit)


def merge_inplace_parallel(
    arr: np.ndarray,
    mid: int,
    p: int,
    *,
    backend: Backend | str = "serial",
    check: bool = True,
) -> None:
    """In-place parallel merge: merge-path partition + one rotation pass +
    independent SymMerges.

    Processor ``k``'s A-piece ``arr[a_k:a_{k+1}]`` and B-piece
    ``arr[mid+b_k : mid+b_{k+1}]`` must end up adjacent at output offset
    ``d_k``.  Performing the rotations serially left-to-right (cheap,
    one O(N) pass total) arranges all pieces; the per-segment SymMerges
    then run independently — they touch disjoint ranges.
    """
    check_positive(p, "p")
    arr = as_array(arr, "arr")
    if not 0 <= mid <= len(arr):
        raise InputError(f"mid={mid} outside array of length {len(arr)}")
    if check:
        check_sorted(arr[:mid], "arr[:mid]")
        check_sorted(arr[mid:], "arr[mid:]")

    part = partition_merge_path(arr[:mid], arr[mid:], p, check=False)
    # Serial rearrangement pass: after processing segment k, the prefix
    # arr[:seg.out_end] holds segment 0..k's pieces in output order
    # (each segment's A-piece then B-piece, both still sorted runs).
    for seg in part.segments:
        # current location of this segment's A piece: it was not moved
        # by earlier rotations beyond out offsets; maintain invariant:
        # remaining unprocessed data is arr[pos:] = A[seg.a_start:] ++ B[seg.b_start:]
        # where pos == seg.out_start.
        pos = seg.out_start
        a_len_rest = mid - seg.a_start
        # bring this segment's B piece right after its A piece:
        # current layout from pos: A_rest (a_len_rest) ++ B_rest
        # want: A_piece (seg.a_len) ++ B_piece (seg.b_len) ++ A_rest' ++ B_rest'
        rotate(
            arr,
            pos + seg.a_len,
            pos + a_len_rest,
            pos + a_len_rest + seg.b_len,
        )
    # Now every segment's pieces are adjacent at [out_start, out_end);
    # merge them independently.
    own_backend = isinstance(backend, str)
    be = get_backend(backend, max_workers=p) if own_backend else backend

    def make_task(seg):
        def task() -> None:
            _symmerge(arr, seg.out_start, seg.out_start + seg.a_len, seg.out_end)

        return task

    try:
        be.run_tasks([make_task(s) for s in part.segments if s.length > 0])
    finally:
        if own_backend:
            be.close()
