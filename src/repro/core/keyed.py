"""Key/value and permutation-producing merges (library extensions).

GPU descendants of Merge Path ship ``merge_by_key`` (Thrust, moderngpu):
merge two key arrays and apply the same permutation to payload arrays.
The enabling primitive is :func:`argmerge`, which returns the *gather
indices* of the merge instead of the merged values — the merge path
itself, materialized as a permutation.  Both are embarrassingly
partitionable with the standard diagonal search, so the parallel forms
reuse :func:`repro.core.merge_path.partition_merge_path` unchanged.

Conventions match the rest of the package: stable, ``A`` before equal
``B``; indices returned by :func:`argmerge` address the virtual
concatenation ``A ++ B`` (``idx < len(a)`` selects ``a[idx]``, else
``b[idx - len(a)]``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backends import Backend, get_backend
from ..errors import InputError
from ..validation import as_array, check_mergeable, check_positive
from .merge_path import partition_merge_path

__all__ = ["argmerge", "merge_by_key", "take_merged", "merge_records"]


def argmerge(
    a: Sequence | np.ndarray,
    b: Sequence | np.ndarray,
    *,
    check: bool = True,
) -> np.ndarray:
    """Gather indices of the stable merge of ``a`` and ``b``.

    ``argmerge(a, b)[k]`` is the position in the concatenation
    ``A ++ B`` of the element that lands at merged position ``k``::

        idx = argmerge(a, b)
        merged = np.concatenate([a, b])[idx]      # == merge(a, b)

    O(N log N) comparisons, fully vectorized; the permutation is exactly
    the merge path read as a move sequence (down = an A index, right =
    a B index).
    """
    a = as_array(a, "A")
    b = as_array(b, "B")
    if check:
        check_mergeable(a, b)
    n = len(a) + len(b)
    idx = np.empty(n, dtype=np.intp)
    if len(a) == 0:
        idx[:] = np.arange(len(b))
        return idx
    if len(b) == 0:
        idx[:] = np.arange(len(a))
        return idx
    pos_a = np.arange(len(a), dtype=np.intp) + np.searchsorted(b, a, side="left")
    pos_b = np.arange(len(b), dtype=np.intp) + np.searchsorted(a, b, side="right")
    idx[pos_a] = np.arange(len(a), dtype=np.intp)
    idx[pos_b] = np.arange(len(a), len(a) + len(b), dtype=np.intp)
    return idx


def take_merged(
    a_values: np.ndarray, b_values: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Apply an :func:`argmerge` permutation to a payload array pair."""
    a_values = as_array(a_values, "a_values")
    b_values = as_array(b_values, "b_values")
    both = np.concatenate([a_values, b_values])
    if len(indices) != len(both):
        raise InputError(
            f"permutation length {len(indices)} != payload total {len(both)}"
        )
    return both[indices]


def merge_by_key(
    a_keys: Sequence | np.ndarray,
    b_keys: Sequence | np.ndarray,
    a_values: Sequence | np.ndarray,
    b_values: Sequence | np.ndarray,
    *,
    p: int = 1,
    backend: Backend | str = "serial",
    check: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two (key, value) sequences by key, stably and in parallel.

    Returns ``(merged_keys, merged_values)``.  Keys must be sorted;
    values ride along.  With ``p > 1`` the key arrays are partitioned by
    merge path and each segment's permutation is computed and applied
    independently into disjoint output slices — the exact structure of
    Algorithm 1 with a payload gather appended.

    Raises
    ------
    InputError
        If a key array and its value array differ in length.
    """
    check_positive(p, "p")
    a_keys = as_array(a_keys, "a_keys")
    b_keys = as_array(b_keys, "b_keys")
    a_values = as_array(a_values, "a_values")
    b_values = as_array(b_values, "b_values")
    if len(a_keys) != len(a_values):
        raise InputError(
            f"a_keys ({len(a_keys)}) and a_values ({len(a_values)}) differ"
        )
    if len(b_keys) != len(b_values):
        raise InputError(
            f"b_keys ({len(b_keys)}) and b_values ({len(b_values)}) differ"
        )
    if check:
        check_mergeable(a_keys, b_keys)

    n = len(a_keys) + len(b_keys)
    out_keys = np.empty(n, dtype=np.promote_types(a_keys.dtype, b_keys.dtype))
    out_vals = np.empty(n, dtype=np.promote_types(a_values.dtype, b_values.dtype))

    partition = partition_merge_path(a_keys, b_keys, p, check=False)

    def make_task(seg):
        def task() -> None:
            ka = a_keys[seg.a_start : seg.a_end]
            kb = b_keys[seg.b_start : seg.b_end]
            idx = argmerge(ka, kb, check=False)
            merged_k = np.concatenate([ka, kb])[idx]
            merged_v = np.concatenate(
                [
                    a_values[seg.a_start : seg.a_end],
                    b_values[seg.b_start : seg.b_end],
                ]
            )[idx]
            out_keys[seg.out_start : seg.out_end] = merged_k
            out_vals[seg.out_start : seg.out_end] = merged_v

        return task

    tasks = [make_task(seg) for seg in partition.segments if seg.length > 0]
    own_backend = isinstance(backend, str)
    be = get_backend(backend, max_workers=p) if own_backend else backend
    try:
        be.run_tasks(tasks)
    finally:
        if own_backend:
            be.close()
    return out_keys, out_vals


def merge_records(
    a: np.ndarray,
    b: np.ndarray,
    key: str,
    *,
    p: int = 1,
    backend: Backend | str = "serial",
    check: bool = True,
) -> np.ndarray:
    """Merge two structured (record) arrays sorted by one field.

    The database-friendly form of :func:`merge_by_key`: ``a`` and ``b``
    are numpy structured arrays whose ``key`` field is sorted; whole
    records ride along.  Stable: on equal keys, ``a``'s records precede
    ``b``'s, and records within one source keep their order.

    Raises
    ------
    InputError
        If either array is not structured, the dtypes differ, or the
        key field is missing.
    """
    check_positive(p, "p")
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype.names is None or b.dtype.names is None:
        raise InputError("merge_records requires structured (record) arrays")
    if a.dtype != b.dtype:
        raise InputError(
            f"record dtypes must match exactly, got {a.dtype} vs {b.dtype}"
        )
    if key not in a.dtype.names:
        raise InputError(
            f"key field {key!r} not in record fields {a.dtype.names}"
        )
    a_keys = a[key]
    b_keys = b[key]
    if check:
        check_mergeable(a_keys, b_keys)

    out = np.empty(len(a) + len(b), dtype=a.dtype)
    partition = partition_merge_path(a_keys, b_keys, p, check=False)

    def make_task(seg):
        def task() -> None:
            ka = a_keys[seg.a_start : seg.a_end]
            kb = b_keys[seg.b_start : seg.b_end]
            idx = argmerge(ka, kb, check=False)
            both = np.concatenate(
                [a[seg.a_start : seg.a_end], b[seg.b_start : seg.b_end]]
            )
            out[seg.out_start : seg.out_end] = both[idx]

        return task

    tasks = [make_task(seg) for seg in partition.segments if seg.length > 0]
    own_backend = isinstance(backend, str)
    be = get_backend(backend, max_workers=p) if own_backend else backend
    try:
        be.run_tasks(tasks)
    finally:
        if own_backend:
            be.close()
    return out
