"""k-way merge via merge-path-style partitioning (extension).

The paper merges *two* arrays; GPU descendants of Merge Path
(moderngpu, CUB) generalize the partition-then-merge structure to many
input lists.  This module provides the CPU analogue as the package's
"future work" extension:

* :func:`kway_partition` cuts the union of ``T`` sorted arrays at
  equispaced output ranks using
  :func:`repro.core.selection.kth_of_union_many`, producing per-array
  split indices such that every processor owns a contiguous, disjoint
  slab of each input and a contiguous output range — the exact k-way
  analogue of Theorem 5's sub-array pairs.
* :func:`kway_merge` merges each slab set with repeated pairwise
  vectorized merges (a tournament tree), in parallel across slabs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backends import Backend, TaskBatch, get_backend
from ..validation import as_array, check_positive, check_sorted
from .selection import kth_of_union_many
from .sequential import merge_vectorized

__all__ = ["kway_partition", "kway_merge"]


def kway_partition(
    arrays: Sequence[np.ndarray],
    p: int,
    *,
    check: bool = True,
) -> list[list[int]]:
    """Split the union of sorted arrays into ``p`` balanced output ranges.

    Returns ``cuts``: ``p + 1`` rows of per-array split indices.
    ``cuts[k][t] .. cuts[k+1][t]`` is array ``t``'s contribution to
    output range ``k``.  Row 0 is all zeros; row ``p`` is the array
    lengths.  Output range sizes differ by at most one element.
    """
    check_positive(p, "p")
    arrays = [as_array(arr, f"arrays[{t}]") for t, arr in enumerate(arrays)]
    if check:
        for t, arr in enumerate(arrays):
            check_sorted(arr, f"arrays[{t}]")
    total = sum(len(arr) for arr in arrays)
    cuts: list[list[int]] = [[0] * len(arrays)]
    for k in range(1, p):
        rank = (k * total) // p
        if rank <= 0:
            cuts.append([0] * len(arrays))
        elif rank >= total:
            cuts.append([len(arr) for arr in arrays])
        else:
            _, splits = kth_of_union_many(arrays, rank, check=False)
            cuts.append(splits)
    cuts.append([len(arr) for arr in arrays])
    # Ranks are non-decreasing, so per-array splits must be too; the
    # tie-distribution rule in kth_of_union_many preserves this.
    for t in range(len(arrays)):
        col = [row[t] for row in cuts]
        assert all(x <= y for x, y in zip(col, col[1:])), "non-monotone cuts"
    return cuts


def kway_merge(
    arrays: Sequence[np.ndarray],
    p: int = 1,
    *,
    backend: Backend | str = "serial",
    check: bool = True,
) -> np.ndarray:
    """Stable merge of ``T`` sorted arrays using ``p`` processors.

    Ties are emitted in array order (array 0 first), consistent with the
    two-array A-before-B rule.  Each processor merges its slab set with
    a pairwise tournament of vectorized merges.
    """
    check_positive(p, "p")
    arrays = [as_array(arr, f"arrays[{t}]") for t, arr in enumerate(arrays)]
    if check:
        for t, arr in enumerate(arrays):
            check_sorted(arr, f"arrays[{t}]")
    if not arrays:
        return np.empty(0)
    if len(arrays) == 1:
        return arrays[0].copy()

    total = sum(len(arr) for arr in arrays)
    dtype = arrays[0].dtype
    for arr in arrays[1:]:
        dtype = np.promote_types(dtype, arr.dtype)
    out = np.empty(total, dtype=dtype)

    cuts = kway_partition(arrays, p, check=False)
    offsets = [sum(cuts[k]) for k in range(p + 1)]

    def make_task(k: int):
        def task() -> None:
            slabs = [
                arr[cuts[k][t] : cuts[k + 1][t]]
                for t, arr in enumerate(arrays)
                if cuts[k + 1][t] > cuts[k][t]
            ]
            out[offsets[k] : offsets[k + 1]] = _tournament(slabs, dtype)

        return task

    tasks = [make_task(k) for k in range(p) if offsets[k + 1] > offsets[k]]
    own_backend = isinstance(backend, str)
    if own_backend:
        from ..execution.pool import POOLED_BACKENDS, shared_backend

        if backend in POOLED_BACKENDS:
            be: Backend = shared_backend(backend, p)
            own_backend = False  # lifetime owned by the shared pool cache
        else:
            be = get_backend(backend, max_workers=p)
    else:
        be = backend
    try:
        be.run_batch(TaskBatch(tasks, label="kway.merge",
                               meta={"slabs": len(tasks)}))
    finally:
        if own_backend:
            be.close()
    return out


def _tournament(slabs: list[np.ndarray], dtype: np.dtype) -> np.ndarray:
    """Pairwise-merge a list of sorted slabs down to one array.

    Adjacent pairing preserves array-order tie-breaking: a merge of
    slabs (i..j) always places lower-indexed arrays' elements first
    among equals, because the vectorized kernel is stable A-first.
    """
    if not slabs:
        return np.empty(0, dtype=dtype)
    while len(slabs) > 1:
        nxt = [
            merge_vectorized(slabs[i], slabs[i + 1], check=False)
            for i in range(0, len(slabs) - 1, 2)
        ]
        if len(slabs) % 2:
            nxt.append(slabs[-1])
        slabs = nxt
    return slabs[0].astype(dtype, copy=False)
