"""Explicit Merge Matrix and Merge Path — the Section II reference model.

This module materializes the ``|A| x |B|`` binary merge matrix of
Definition 1 and walks the merge path exactly as the paper constructs it.
Both cost O(|A|·|B|) and exist purely as an executable specification:
the property tests check the production O(log) partitioner against this
model, and the teaching example renders small matrices.

Path representation
-------------------
A merge path over ``A`` (length ``m``) and ``B`` (length ``n``) is the
sequence of :class:`~repro.types.PathPoint` values ``(i, j)`` visited,
starting at ``(0, 0)`` and ending at ``(m, n)``, of length ``m + n + 1``.
A *down* move increments ``i`` (consumes ``A[i]``); a *right* move
increments ``j`` (consumes ``B[j]``).  Per the paper's construction, at
point ``(i, j)`` the path moves **right** iff ``A[i] > B[j]``, i.e. ties
consume ``A`` first — this makes every kernel in the package a *stable*
merge with A-elements preceding equal B-elements.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..types import PathPoint
from ..validation import as_array, check_mergeable

__all__ = ["MergeMatrix", "build_merge_path", "path_to_merged", "path_moves"]


class MergeMatrix:
    """Materialized binary merge matrix ``M[i, j] = A[i] > B[j]``.

    Row index ``i`` ranges over elements of ``A``, column index ``j``
    over elements of ``B`` (both 0-based), matching Definition 1 of the
    paper up to the 1-based/0-based shift.

    Parameters
    ----------
    a, b:
        Sorted input arrays.  Sortedness is validated because every
        structural property below (Propositions 10/11, Corollary 12)
        depends on it.
    """

    def __init__(self, a: Sequence | np.ndarray, b: Sequence | np.ndarray) -> None:
        self.a = as_array(a, "A")
        self.b = as_array(b, "B")
        check_mergeable(self.a, self.b)
        # Outer comparison builds the full matrix; acceptable because the
        # class is a reference model used only on small inputs.
        self.m = np.greater.outer(self.a, self.b)

    @property
    def shape(self) -> tuple[int, int]:
        """``(|A|, |B|)``."""
        return self.m.shape

    def __getitem__(self, key: tuple[int, int]) -> bool:
        return bool(self.m[key])

    def cross_diagonal(self, d: int) -> np.ndarray:
        """Entries of cross diagonal ``d`` ordered from top-right to bottom-left.

        Cross diagonal ``d`` (1-based distance from the origin corner in
        the paper; here ``d`` ranges over ``1..|A|+|B|-1``) contains the
        matrix cells ``(i, j)`` with ``i + j == d - 1``.  Corollary 12
        states the returned sequence is monotonically non-decreasing in
        this order (equivalently non-increasing bottom-left to top-right).
        """
        m, n = self.shape
        cells = [(i, d - 1 - i) for i in range(m) if 0 <= d - 1 - i < n]
        cells.sort()  # increasing i == from top-right corner downward
        return np.array([self.m[c] for c in cells], dtype=bool)

    def diagonal_is_monotone(self, d: int) -> bool:
        """Check Corollary 12 on one cross diagonal.

        Ordered from the top (small ``i``) to the bottom of the diagonal,
        entries must go from 0s to 1s with a single transition: element
        ``(i, j)`` is ``A[i] > B[j]``; moving down the diagonal increases
        ``i`` and decreases ``j``, so once true it stays true.
        """
        diag = self.cross_diagonal(d)
        return bool(np.all(diag[:-1] <= diag[1:]))

    def path_intersection(self, d: int) -> PathPoint:
        """Merge-path point on grid cross diagonal ``d`` (Proposition 13).

        ``d`` here indexes *grid* diagonals in consumed-count space:
        the returned point ``(i, j)`` satisfies ``i + j == d`` with
        ``0 <= d <= |A| + |B|``.  Found by scanning — the O(log) version
        lives in :mod:`repro.core.merge_path`.
        """
        m, n = self.shape
        lo = max(0, d - n)
        hi = min(d, m)
        for i in range(lo, hi + 1):
            j = d - i
            # The path passes through (i, j) iff the last consumed A element
            # (if any) did not exceed the next B element, and the next A
            # element (if any) exceeds the last consumed B element.
            cond_a = i == 0 or j == n or self.a[i - 1] <= self.b[j]
            cond_b = j == 0 or i == m or self.a[i] > self.b[j - 1]
            if cond_a and cond_b:
                return PathPoint(i, j)
        raise AssertionError(f"no path intersection found on diagonal {d}")


def build_merge_path(
    a: Sequence | np.ndarray, b: Sequence | np.ndarray
) -> list[PathPoint]:
    """Walk the merge path exactly as Section II.A constructs it.

    Returns the full point sequence from ``(0, 0)`` to ``(|A|, |B|)``.
    O(|A| + |B|) time but element-at-a-time Python — reference model only.
    """
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    m, n = len(a), len(b)
    i = j = 0
    path = [PathPoint(0, 0)]
    while i < m or j < n:
        if i == m:
            j += 1  # bottom edge: only rightward moves remain
        elif j == n:
            i += 1  # right edge: only downward moves remain
        elif a[i] > b[j]:
            j += 1  # move right, consuming B[j]
        else:
            i += 1  # move down, consuming A[i] (ties consume A: stability)
        path.append(PathPoint(i, j))
    return path


def path_moves(path: list[PathPoint]) -> str:
    """Encode a path as a move string of ``'D'`` (down/A) and ``'R'`` (right/B)."""
    out = []
    for prev, cur in zip(path, path[1:]):
        if cur.i == prev.i + 1 and cur.j == prev.j:
            out.append("D")
        elif cur.j == prev.j + 1 and cur.i == prev.i:
            out.append("R")
        else:
            raise ValueError(f"non-unit path step {prev} -> {cur}")
    return "".join(out)


def path_to_merged(
    a: Sequence | np.ndarray, b: Sequence | np.ndarray, path: list[PathPoint]
) -> np.ndarray:
    """Materialize the merged array from a path (Lemma 1).

    Each down step emits the next unused element of ``A``; each right
    step emits the next unused element of ``B``.
    """
    a = as_array(a, "A")
    b = as_array(b, "B")
    out = np.empty(len(a) + len(b), dtype=np.promote_types(a.dtype, b.dtype))
    for k, (prev, cur) in enumerate(zip(path, path[1:])):
        if cur.i == prev.i + 1:
            out[k] = a[prev.i]
        else:
            out[k] = b[prev.j]
    return out
