"""Diagonal binary search and merge-path partitioning (Theorem 14).

This is the paper's key device: the intersection of the merge path with
grid cross diagonal ``d`` can be found with a binary search that probes
only ``O(log min(|A|, |B|))`` element pairs, without constructing either
the path or the matrix.  ``p - 1`` equispaced diagonals then split the
merge into ``p`` segments whose lengths differ by at most one
(Corollary 7: perfect load balance).

Coordinates
-----------
A point ``(i, j)`` on grid diagonal ``d = i + j`` means "``i`` elements
of ``A`` and ``j`` elements of ``B`` consumed".  For a fixed ``d`` the
feasible ``i`` range is ``[max(0, d - |B|), min(d, |A|)]``; the search
returns the unique ``i`` such that

* ``A[i - 1] <= B[d - i]``   (or ``i`` is at its lower bound), and
* ``A[i] > B[d - i - 1]``    (or ``i`` is at its upper bound),

which encodes the stable tie-break *A before equal B* used throughout
the package (a down move on ``A[i] <= B[j]``, per Section II.A).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import InputError
from ..obs.tracer import NULL_SPAN
from ..types import MergeStats, Partition, PathPoint, Segment
from ..validation import as_array, check_mergeable, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Tracer

__all__ = [
    "diagonal_bounds",
    "diagonal_intersection",
    "diagonal_intersections_vectorized",
    "partition_merge_path",
    "partition_at_positions",
    "max_search_steps",
]


def diagonal_bounds(d: int, a_len: int, b_len: int) -> tuple[int, int]:
    """Feasible range ``[lo, hi]`` of A-consumed counts on grid diagonal ``d``.

    Raises :class:`~repro.errors.InputError` when ``d`` is outside
    ``[0, a_len + b_len]``.
    """
    if not 0 <= d <= a_len + b_len:
        raise InputError(
            f"diagonal {d} outside [0, {a_len + b_len}] for |A|={a_len}, |B|={b_len}"
        )
    return max(0, d - b_len), min(d, a_len)


def max_search_steps(a_len: int, b_len: int) -> int:
    """Theorem 14 upper bound on binary-search probes for one diagonal.

    A diagonal crosses at most ``min(|A|, |B|) + 1`` candidate points, so
    bisection needs at most ``ceil(log2(min(|A|,|B|) + 1))`` probes.
    """
    span = min(a_len, b_len) + 1
    return int(np.ceil(np.log2(span))) if span > 1 else 0


def diagonal_intersection(
    a: np.ndarray,
    b: np.ndarray,
    d: int,
    stats: MergeStats | None = None,
) -> PathPoint:
    """Locate the merge path's intersection with grid diagonal ``d``.

    Pure binary search, O(log min(|A|, |B|)) comparisons, no allocation.
    When ``stats`` is given, each probe increments
    ``stats.search_probes`` (used by the T14 experiment to check the
    bound of Theorem 14).

    Returns the :class:`~repro.types.PathPoint` ``(i, d - i)``.
    """
    lo, hi = diagonal_bounds(d, len(a), len(b))
    # Invariant: the answer i* lies in [lo, hi].  Probe mid: if
    # A[mid] <= B[d - 1 - mid], the path consumes A[mid] before reaching
    # this diagonal, so i* > mid; otherwise i* <= mid.
    while lo < hi:
        mid = (lo + hi) // 2
        if stats is not None:
            stats.search_probes += 1
        if a[mid] <= b[d - 1 - mid]:
            lo = mid + 1
        else:
            hi = mid
    return PathPoint(int(lo), int(d - lo))


def diagonal_intersections_vectorized(
    a: np.ndarray,
    b: np.ndarray,
    diagonals: Sequence[int] | np.ndarray,
    stats: MergeStats | None = None,
) -> np.ndarray:
    """Find intersections with many diagonals at once, vectorized.

    All ``len(diagonals)`` binary searches proceed in lockstep: one numpy
    fancy-indexing comparison per bisection round, ``ceil(log2)`` rounds
    total.  This mirrors how the p processors of Algorithm 1 search their
    diagonals concurrently, and is the production path for large ``p``.

    When ``stats`` is given, ``stats.search_probes`` counts the element
    comparisons actually performed (active searches per round), the same
    quantity the scalar search counts — so probe accounting holds in
    both modes.

    Returns an int64 array ``i`` of A-consumed counts, one per diagonal
    (``j = d - i``).
    """
    ds = np.asarray(diagonals, dtype=np.int64)
    if ds.ndim != 1:
        raise InputError("diagonals must be a 1-D sequence")
    if ds.size and (ds.min() < 0 or ds.max() > len(a) + len(b)):
        raise InputError("diagonal index out of range")
    lo = np.maximum(0, ds - len(b))
    hi = np.minimum(ds, len(a))
    # Lockstep bisection: every active search halves its interval each
    # round, so the loop runs at most ceil(log2(min(|A|,|B|)+1)) times.
    while True:
        active = lo < hi
        if not active.any():
            break
        if stats is not None:
            stats.search_probes += int(active.sum())
        mid = (lo + hi) // 2
        am = np.where(active, mid, 0)
        bm = np.where(active, ds - 1 - mid, 0)
        take_a = a[am] <= b[bm]
        go_up = active & take_a
        go_dn = active & ~take_a
        lo = np.where(go_up, mid + 1, lo)
        hi = np.where(go_dn, mid, hi)
    return lo


def partition_at_positions(
    a: np.ndarray,
    b: np.ndarray,
    positions: Sequence[int],
    *,
    check: bool = True,
    vectorized: bool = True,
    stats: MergeStats | None = None,
    tracer: "Tracer | None" = None,
) -> Partition:
    """Partition the merge path at arbitrary output positions.

    ``positions`` are interior cut points in the output array (strictly
    increasing, each in ``(0, |A|+|B|)``).  Returns a
    :class:`~repro.types.Partition` whose segment boundaries are the
    merge path's intersections with the grid diagonals at those
    positions (Theorem 9: output position == diagonal index).

    ``stats.search_probes`` counts actual probes in both scalar and
    vectorized modes; ``tracer`` records one ``partition.search`` span
    covering the whole search (the lockstep searches are one phase).
    """
    a = as_array(a, "A")
    b = as_array(b, "B")
    if check:
        check_mergeable(a, b)
    n = len(a) + len(b)
    pos = list(positions)
    if any(not 0 < q < n for q in pos):
        raise InputError(f"cut positions must lie strictly inside (0, {n})")
    if any(q2 <= q1 for q1, q2 in zip(pos, pos[1:])):
        raise InputError("cut positions must be strictly increasing")

    span = (
        tracer.span("partition.search", diagonals=len(pos), a_len=len(a),
                    b_len=len(b), vectorized=bool(vectorized))
        if tracer is not None
        else NULL_SPAN
    )
    with span:
        search_steps: list[int] = []
        probes = MergeStats()
        if vectorized and pos:
            ivals = diagonal_intersections_vectorized(a, b, pos, stats=probes)
            points = [PathPoint(int(i), int(d - i)) for i, d in zip(ivals, pos)]
            # the lockstep search costs the same bound per diagonal
            bound = max_search_steps(len(a), len(b))
            search_steps = [bound] * len(pos)
        else:
            points = []
            for d in pos:
                local = MergeStats()
                points.append(diagonal_intersection(a, b, d, stats=local))
                search_steps.append(local.search_probes)
                probes.merge(local)
        if stats is not None:
            stats.merge(probes)
        span.set(probes=probes.search_probes)

    bounds = [PathPoint(0, 0), *points, PathPoint(len(a), len(b))]
    segments = tuple(
        Segment(
            index=k,
            a_start=s.i,
            a_end=e.i,
            b_start=s.j,
            b_end=e.j,
            out_start=s.diagonal,
            out_end=e.diagonal,
        )
        for k, (s, e) in enumerate(zip(bounds, bounds[1:]))
    )
    return Partition(
        a_len=len(a),
        b_len=len(b),
        segments=segments,
        search_steps=tuple(search_steps),
    )


def partition_merge_path(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    *,
    check: bool = True,
    vectorized: bool = True,
    stats: MergeStats | None = None,
    tracer: "Tracer | None" = None,
) -> Partition:
    """Split the merge of ``a`` and ``b`` into ``p`` equisized segments.

    This is the partitioning step of Algorithm 1: processor ``k``'s
    segment starts at output position ``k * (|A|+|B|) / p`` (rounded so
    segment lengths differ by at most one element).

    Parameters
    ----------
    a, b:
        Sorted input arrays.
    p:
        Number of segments (processors).  May exceed ``|A| + |B|``, in
        which case trailing segments are empty.
    check:
        Validate sortedness/dtypes (skip for internal hot paths).
    vectorized:
        Use the lockstep multi-diagonal search (default) instead of one
        scalar binary search per diagonal.
    stats:
        Optional counter sink for search probes (honored in both scalar
        and vectorized modes; pass
        ``MetricsRegistry.merge_stats()`` to route the counts into the
        unified metrics registry).
    tracer:
        Optional :class:`~repro.obs.Tracer`; records one
        ``partition.search`` span with diagonal and probe counts.

    Returns
    -------
    Partition
        ``p`` segments tiling the merge path in order; guaranteed
        ``max_imbalance <= 1``.
    """
    check_positive(p, "p")
    a = as_array(a, "A")
    b = as_array(b, "B")
    if check:
        check_mergeable(a, b)
    n = len(a) + len(b)
    if p == 1 or n == 0:
        seg = Segment(0, 0, len(a), 0, len(b), 0, n)
        segs = (seg,) + tuple(
            Segment(k, len(a), len(a), len(b), len(b), n, n) for k in range(1, p)
        )
        return Partition(len(a), len(b), segs)
    # Equispaced cuts; np.linspace-style integer rounding keeps lengths
    # within one of each other.  Processor k's boundary is (k*n)//p —
    # exactly the DiagonalNum formula of Algorithm 1's step 1, so
    # segment k here is the work processor k's program would do (the
    # PRAM tests rely on this alignment, including the p > n case where
    # some interior segments are empty).
    raw = [(k * n) // p for k in range(1, p)]
    unique = sorted({q for q in raw if 0 < q < n})
    part = partition_at_positions(
        a, b, unique, check=False, vectorized=vectorized, stats=stats,
        tracer=tracer,
    )
    point_at = {0: PathPoint(0, 0), n: PathPoint(len(a), len(b))}
    for q, seg in zip(unique, part.segments):
        point_at[q] = PathPoint(seg.a_end, seg.b_end)
    boundaries = [0, *raw, n]
    segments = []
    for k, (q0, q1) in enumerate(zip(boundaries, boundaries[1:])):
        s = point_at[q0]
        e = point_at[q1]
        segments.append(
            Segment(
                index=k,
                a_start=s.i, a_end=e.i,
                b_start=s.j, b_end=e.j,
                out_start=q0, out_end=q1,
            )
        )
    return Partition(len(a), len(b), tuple(segments), part.search_steps)
