"""Parallel merge sort (Section III).

The classic structure: split the input into ``p`` chunks, sort each
chunk independently (one per processor), then run ``log2 p`` rounds of
pairwise merges.  Early rounds have more array pairs than processors
and parallelize trivially across pairs; once pairs become scarce the
processors *within* each pair cooperate using Algorithm 1's merge-path
partitioning — this is precisely the regime the paper says motivates
parallel merge ("this is no longer the case in later rounds").

``merge_sort_rounds`` exposes the round-by-round schedule (which merge
ran with how many cooperating processors) for the SORT experiment.

Execution is batched (:mod:`repro.execution`): all segment tasks of all
pairs in a round ship as **one** :class:`~repro.backends.TaskBatch`, so
a sort call costs one backend dispatch per round — ``O(log N)`` total —
instead of one per pair (``O(p · log N)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..backends import Backend
from ..obs.tracer import NULL_SPAN
from ..types import MergeStats
from ..validation import as_array, check_positive
from .parallel_merge import (
    _TracerScope,
    _flush_telemetry,
    _resolve_execution,
    _snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry, Tracer
    from ..resilience import ExecutionTelemetry, RetryPolicy

__all__ = ["parallel_merge_sort", "merge_sort_rounds", "RoundInfo"]


@dataclass(frozen=True, slots=True)
class RoundInfo:
    """Schedule record for one round of the sort.

    ``pairs`` is the number of array pairs merged this round and
    ``procs_per_pair`` how many processors cooperated inside each merge.
    ``dispatches`` is the number of backend fork/join dispatches the
    round costs under the batched execution engine — always 1: every
    segment task of every pair ships in one
    :class:`~repro.backends.TaskBatch`, and an odd run carried to the
    next round costs nothing (it is *not* re-dispatched as a degenerate
    single-task batch).
    """

    round_index: int
    pairs: int
    procs_per_pair: int
    run_length: int
    dispatches: int = 1


def merge_sort_rounds(n: int, p: int) -> list[RoundInfo]:
    """Predict the round schedule for sorting ``n`` elements with ``p`` cores.

    Round 0 is the chunk-local sequential sort; each later round halves
    the number of runs.  Processors per pair grows as pairs shrink,
    keeping all ``p`` cores busy every round (the paper's point: total
    computation per round is constant, so every round must parallelize).
    """
    check_positive(n, "n")
    check_positive(p, "p")
    rounds: list[RoundInfo] = []
    runs = min(p, n)
    run_length = (n + runs - 1) // runs
    r = 1
    while runs > 1:
        pairs = runs // 2
        procs = max(1, p // max(1, pairs))
        rounds.append(
            RoundInfo(round_index=r, pairs=pairs, procs_per_pair=procs,
                      run_length=run_length)
        )
        runs = (runs + 1) // 2
        run_length *= 2
        r += 1
    return rounds


def parallel_merge_sort(
    x: Sequence | np.ndarray,
    p: int,
    *,
    backend: Backend | str = "threads",
    kernel: str = "vectorized",
    base_sort: str = "numpy",
    stats: MergeStats | None = None,
    resilience: "RetryPolicy | bool | None" = None,
    telemetry: "ExecutionTelemetry | None" = None,
    trace: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> np.ndarray:
    """Sort ``x`` with ``p`` processors using merge-path merges.

    Parameters
    ----------
    x:
        Input array (any order, any comparable dtype).
    p:
        Processor count; also the initial chunk count.
    backend:
        Execution backend (instance or name) shared across rounds.
    kernel:
        In-segment merge kernel for the merge rounds.
    base_sort:
        ``"numpy"`` (default, ``np.sort`` per chunk — stand-in for each
        core's local sequential sort) or ``"merge"`` (recursive
        sequential merge sort in Python; used by tests to keep the whole
        pipeline within counted kernels).
    stats:
        Optional operation-count sink covering the merge rounds.
    resilience:
        Enable fault-tolerant execution for every round (chunk sorts
        and merges): ``True`` for the default
        :class:`~repro.resilience.RetryPolicy`, or a policy instance.
    telemetry:
        Optional :class:`~repro.resilience.ExecutionTelemetry` sink
        collecting the supervision record of all rounds.
    trace:
        Optional :class:`~repro.obs.Tracer`; records a ``sort.round``
        span per round (round 0 = chunk sorts) enclosing the rounds'
        ``partition.search`` / ``segment.merge`` / ``backend.task``
        spans.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` receiving kernel
        counts (``merge.*``), ``sort.rounds`` and load-balance gauges.

    Returns
    -------
    numpy.ndarray
        Sorted copy of ``x`` (the input is never mutated).
    """
    check_positive(p, "p")
    arr = as_array(x, "x").copy()
    n = len(arr)
    if n <= 1:
        return arr

    local_stats = stats
    if metrics is not None and local_stats is None:
        local_stats = MergeStats()
    before = _snapshot(local_stats)

    be, owned, t_start = _resolve_execution(
        backend, p, resilience, telemetry, metrics, n=n, trace=trace
    )
    d_start = be.dispatches
    try:
        with _TracerScope(be, trace):
            from ..execution.engine import run_chunk_sorts, run_merge_round

            # --- Round 0: independent chunk sorts, one batched dispatch.
            chunks = min(p, n)
            sort_chunk = None
            if base_sort != "numpy":
                def sort_chunk(chunk: np.ndarray) -> np.ndarray:
                    return _sequential_merge_sort(chunk, local_stats)

            span0 = (
                trace.span("sort.round", round=0, pairs=0, chunks=chunks,
                           run_length=(n + chunks - 1) // chunks)
                if trace is not None
                else NULL_SPAN
            )
            with span0:
                runs = run_chunk_sorts(
                    arr, chunks, backend=be, base_sort=base_sort,
                    sort_chunk=sort_chunk, trace=trace, metrics=metrics,
                )

            # --- Merge rounds: every pair of a round rides one batch;
            # an odd run out carries to the next round dispatch-free.
            round_index = 1
            while len(runs) > 1:
                procs_per_pair = max(1, p // (len(runs) // 2))
                round_span = (
                    trace.span("sort.round", round=round_index,
                               pairs=len(runs) // 2,
                               procs_per_pair=procs_per_pair)
                    if trace is not None
                    else NULL_SPAN
                )
                with round_span:
                    runs = run_merge_round(
                        runs, procs_per_pair, backend=be, kernel=kernel,
                        stats=local_stats, trace=trace, metrics=metrics,
                        round_index=round_index,
                    )
                if metrics is not None:
                    metrics.counter("sort.rounds").inc()
                round_index += 1
            return runs[0]
    finally:
        _flush_telemetry(be, t_start, telemetry)
        if metrics is not None:
            metrics.counter("sort.calls").inc()
            dispatched = be.dispatches - d_start
            metrics.counter("exec.dispatches").inc(dispatched)
            metrics.gauge("exec.dispatches_per_call").set(dispatched)
            if local_stats is not None:
                metrics.record_merge_delta(before, local_stats)
        if owned:
            be.close()


def _sequential_merge_sort(
    chunk: np.ndarray, stats: MergeStats | None
) -> np.ndarray:
    """Plain recursive merge sort over the counted two-pointer kernel."""
    from .sequential import merge_two_pointer

    if len(chunk) <= 1:
        return chunk
    mid = len(chunk) // 2
    left = _sequential_merge_sort(chunk[:mid], stats)
    right = _sequential_merge_sort(chunk[mid:], stats)
    return merge_two_pointer(left, right, check=False, stats=stats)
