"""Natural (adaptive) merge sort — TimSort's key idea over merge path.

Real-world data often arrives *almost* sorted.  A natural merge sort
detects the existing ascending runs (descending runs are reversed in
place, TimSort-style) and only merges what needs merging: already
sorted input costs one O(N) detection scan and zero merges; k natural
runs cost ``O(N log k)`` instead of ``O(N log N)``.

The merges themselves are the package's parallel merge-path merges, so
this composes adaptivity (from run detection) with parallelism (from
partitioning) — a combination none of the paper's baselines has.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backends import Backend, get_backend
from ..types import MergeStats
from ..validation import as_array, check_positive
from .merge_path import partition_merge_path
from .parallel_merge import merge_partition

__all__ = ["find_natural_runs", "natural_merge_sort"]


def find_natural_runs(x: np.ndarray, *, reverse_descending: bool = True) -> list[int]:
    """Boundaries of maximal ascending runs in ``x``.

    Returns run boundaries ``[0, b1, ..., len(x)]``.  With
    ``reverse_descending`` (default), maximal strictly-descending runs
    are reversed **in place** first, so they count as single runs —
    reversing a strictly descending run is stable because no two of its
    elements are equal.

    Vectorized: boundaries come from one comparison pass.
    """
    n = len(x)
    if n <= 1:
        return [0, n] if n else [0, 0]
    if not reverse_descending:
        breaks = np.nonzero(x[:-1] > x[1:])[0] + 1
        return [0, *breaks.tolist(), n]

    # TimSort-style left-to-right scan: at each run start, the first
    # adjacency decides the direction; the run extends while the
    # direction holds; descending runs are reversed in place.  The scan
    # jumps run to run with binary searches over the precomputed
    # descending-adjacency index list, so the cost is
    # O(n + runs·log n), not O(n·runs).
    desc_idx = np.nonzero(x[:-1] > x[1:])[0]  # t where x[t] > x[t+1]
    asc_idx = np.nonzero(x[:-1] <= x[1:])[0]  # t where x[t] <= x[t+1]
    bounds = [0]
    i = 0
    while i < n - 1:
        if x[i] <= x[i + 1]:
            # ascending run: ends before the next descending adjacency
            k = np.searchsorted(desc_idx, i)
            end = int(desc_idx[k]) + 1 if k < len(desc_idx) else n
        else:
            # strictly descending run: ends before the next
            # non-descending adjacency; reverse it (stable: all strict)
            k = np.searchsorted(asc_idx, i)
            end = int(asc_idx[k]) + 1 if k < len(asc_idx) else n
            x[i:end] = x[i:end][::-1]
        bounds.append(end)
        i = end
    if bounds[-1] != n:
        bounds.append(n)
    return bounds


def natural_merge_sort(
    x: Sequence | np.ndarray,
    p: int = 1,
    *,
    backend: Backend | str = "serial",
    kernel: str = "vectorized",
    stats: MergeStats | None = None,
) -> np.ndarray:
    """Adaptive sort: detect natural runs, then parallel-merge them up.

    Cost adapts to the input's existing order: ``O(N)`` when already
    sorted (or reverse-sorted), ``O(N log k)`` for ``k`` natural runs.

    Returns a sorted copy; the input is never mutated.
    """
    check_positive(p, "p")
    arr = as_array(x, "x").copy()
    n = len(arr)
    if n <= 1:
        return arr

    bounds = find_natural_runs(arr)
    runs: list[np.ndarray] = [
        arr[lo:hi] for lo, hi in zip(bounds, bounds[1:]) if hi > lo
    ]
    if len(runs) == 1:
        return arr

    own_backend = isinstance(backend, str)
    be = get_backend(backend, max_workers=p) if own_backend else backend
    try:
        while len(runs) > 1:
            procs = max(1, p // max(1, len(runs) // 2))
            nxt: list[np.ndarray] = []
            for i in range(0, len(runs) - 1, 2):
                part = partition_merge_path(
                    runs[i], runs[i + 1], procs, check=False, stats=stats
                )
                nxt.append(
                    merge_partition(
                        runs[i], runs[i + 1], part, backend=be,
                        kernel=kernel, stats=stats,
                    )
                )
            if len(runs) % 2:
                nxt.append(runs[-1])
            runs = nxt
        return runs[0]
    finally:
        if own_backend:
            be.close()
