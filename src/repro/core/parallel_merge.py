"""Algorithm 1 — Parallel Merge.

Direct implementation of the paper's Algorithm 1:

1. Processor ``k`` (0-based) owns output positions
   ``[k·N/p, (k+1)·N/p)`` where ``N = |A| + |B|``.
2. It binary-searches the merge path's intersection with its starting
   diagonal (Theorem 14) — done once, up front, for all processors by
   :func:`repro.core.merge_path.partition_merge_path` (the searches are
   independent; the vectorized form runs them in lockstep exactly as p
   hardware threads would).
3. It merges its sub-arrays sequentially into its disjoint output slice.
4. Implicit barrier: :meth:`Backend.run_tasks` returns only when every
   segment is done.

No locks, no atomics, no inter-processor communication — cores share
only read-only inputs, matching the Remark after Algorithm 1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from typing import TYPE_CHECKING

from ..backends import Backend, TaskBatch, get_backend
from ..obs.tracer import NULL_SPAN
from ..types import MergeStats, Partition
from ..validation import as_array, check_mergeable, check_positive
from .merge_path import partition_merge_path
from .sequential import merge_into, result_dtype

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry, Tracer
    from ..resilience import ExecutionTelemetry, RetryPolicy

__all__ = ["parallel_merge", "merge", "merge_partition"]


class _TracerScope:
    """Temporarily install a tracer on a backend (and its inner chain).

    Backends carry an optional ``tracer`` attribute consulted on every
    task execution; entry points install the caller's tracer for the
    duration of the call and restore the previous state afterwards, so
    a pooled backend shared across calls is never left traced.
    """

    def __init__(self, backend: Backend, tracer: "Tracer | None") -> None:
        self._saved: list[tuple[Backend, object]] = []
        if tracer is None:
            return
        seen: set[int] = set()
        be: object = backend
        while isinstance(be, Backend) and id(be) not in seen:
            seen.add(id(be))
            self._saved.append((be, be.__dict__.get("tracer", _TracerScope)))
            be.tracer = tracer
            be = getattr(be, "inner", None)

    def __enter__(self) -> "_TracerScope":
        return self

    def __exit__(self, *exc_info: object) -> None:
        for be, prev in self._saved:
            if prev is _TracerScope:  # attribute was absent (class default)
                be.__dict__.pop("tracer", None)
            else:
                be.tracer = prev


def _snapshot(stats: MergeStats | None) -> tuple[int, int, int]:
    """Field snapshot used to flush only this call's delta to metrics."""
    if stats is None:
        return (0, 0, 0)
    return (stats.comparisons, stats.moves, stats.search_probes)


def merge_partition(
    a: np.ndarray,
    b: np.ndarray,
    partition: Partition,
    *,
    backend: Backend,
    kernel: str = "vectorized",
    stats: MergeStats | None = None,
    trace: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> np.ndarray:
    """Execute the merge phase of Algorithm 1 over a ready partition.

    Each segment becomes one task on ``backend``; tasks write disjoint
    slices of the shared output array.  The per-task closures capture
    only views — no element data is copied (except on the process
    backend, which stages arrays in shared memory once).

    Backends that can do better than the generic closure route — the
    process backend and the resilience wrappers around it — advertise a
    ``merge_partition(a, b, partition)`` hook (see
    :class:`repro.backends.Backend`); it is probed first and a
    non-``None`` return is the result.  The hook path uses the
    vectorized kernel and does not feed ``stats``; when ``trace`` is
    given the hook is skipped so every segment yields a
    ``segment.merge`` span on the worker that ran it.

    ``metrics`` publishes the Theorem 14 load-balance gauges
    (``balance.work_spread`` from the partition,
    ``balance.task_time_imbalance`` from measured per-task times) and
    counts dispatched segments.
    """
    if metrics is not None:
        metrics.counter("merge.segments").inc(
            sum(1 for seg in partition.segments if seg.length > 0)
        )
        metrics.gauge("balance.work_spread").set(partition.max_imbalance)
    fast_path = getattr(backend, "merge_partition", None)
    if fast_path is not None and trace is None:
        merged = fast_path(a, b, partition)
        if merged is not None:
            return merged

    out = np.empty(partition.total_length, dtype=result_dtype(a, b))
    per_task_stats: list[MergeStats | None] = [
        MergeStats() if stats is not None else None for _ in partition.segments
    ]

    def make_task(seg, seg_stats):
        def task() -> None:
            span = (
                trace.span(
                    "segment.merge",
                    index=seg.index,
                    worker=seg.index,
                    a_start=seg.a_start, a_end=seg.a_end,
                    b_start=seg.b_start, b_end=seg.b_end,
                    out_start=seg.out_start, out_end=seg.out_end,
                    length=seg.length,
                )
                if trace is not None
                else NULL_SPAN
            )
            with span:
                merge_into(
                    out[seg.out_start : seg.out_end],
                    a[seg.a_start : seg.a_end],
                    b[seg.b_start : seg.b_end],
                    kernel=kernel,
                    stats=seg_stats,
                )
                if seg_stats is not None:
                    span.set(comparisons=seg_stats.comparisons,
                             moves=seg_stats.moves)

        return task

    tasks = [
        make_task(seg, st)
        for seg, st in zip(partition.segments, per_task_stats)
        if seg.length > 0
    ]
    results = backend.run_batch(  # blocks: the Algorithm 1 barrier
        TaskBatch(tasks, label="merge.partition",
                  meta={"segments": len(tasks)})
    )
    if stats is not None:
        for st in per_task_stats:
            if st is not None:
                stats.merge(st)
    if metrics is not None and results:
        times = [r.elapsed_s for r in results]
        mean = sum(times) / len(times)
        if mean > 0:
            metrics.gauge("balance.task_time_imbalance").set(max(times) / mean)
    return out


def _resolve_execution(
    backend: Backend | str,
    p: int,
    resilience: "RetryPolicy | bool | None",
    telemetry: "ExecutionTelemetry | None",
    metrics: "MetricsRegistry | None" = None,
    *,
    n: int | None = None,
    trace: "Tracer | None" = None,
) -> tuple[Backend, bool, int]:
    """Shared backend setup for the parallel entry points.

    Returns ``(backend, owned, telemetry_start)``: the (possibly
    resiliently wrapped) backend, whether the caller must close it, and
    how many telemetry batches it had already recorded (so only this
    call's batches are copied into the caller's sink afterwards).

    String-named pooled backends (``serial``/``threads``/``processes``)
    resolve to the process-wide shared instances of
    :mod:`repro.execution.pool` — their worker pools persist across
    calls and are **not** closed by the caller (``owned`` stays False
    unless a resilience wrapper is added, in which case only the
    wrapper is owned).  When ``n`` is given, the call is untraced and
    the name is pooled, the adaptive autotuner may reroute the name to
    a faster backend for that size (:mod:`repro.execution.autotune`);
    explicit ``Backend`` instances and traced calls are never rerouted.
    Traced calls also skip the shared pools and get a dedicated cold
    pool (closed afterwards): a warm pool may multiplex every segment
    onto one OS thread, which would gut the per-worker trace view.

    When ``metrics`` is given, any telemetry sink on the resolved
    backend that is not already bound to a registry is bound to it, so
    resilience counters (retries, timeouts, speculations, ...) land in
    the same unified registry as the kernel counts.
    """
    from ..execution.autotune import get_autotuner
    from ..execution.pool import POOLED_BACKENDS, shared_backend

    owned = isinstance(backend, str)
    if owned:
        name = backend
        if n is not None and trace is None:
            name = get_autotuner().choose_backend(name, n)
        if trace is not None or name not in POOLED_BACKENDS:
            # Traced calls get a dedicated cold pool: a warm shared pool
            # may multiplex every segment onto one OS thread, which
            # would make the per-worker trace view meaningless.
            be = get_backend(name, max_workers=p)
        else:
            be: Backend = shared_backend(name, p)
            owned = False  # lifetime belongs to the shared pool cache
    else:
        be = backend
    if resilience:
        from ..resilience import ResilientBackend, RetryPolicy

        policy = resilience if isinstance(resilience, RetryPolicy) else None
        be = ResilientBackend(be, policy, owns_inner=owned)
        owned = True
        if telemetry is not None:
            be.telemetry = telemetry
    sink = getattr(be, "telemetry", None)
    if metrics is not None and sink is not None and sink.metrics is None:
        sink.metrics = metrics
    start = len(sink.batches) if sink is not None else 0
    return be, owned, start


def _flush_telemetry(
    be: Backend, start: int, telemetry: "ExecutionTelemetry | None"
) -> None:
    """Copy batches recorded since ``start`` into the caller's sink."""
    sink = getattr(be, "telemetry", None)
    if telemetry is None or sink is None or sink is telemetry:
        return
    for batch in sink.batches[start:]:
        telemetry.record(batch)


def parallel_merge(
    a: Sequence | np.ndarray,
    b: Sequence | np.ndarray,
    p: int,
    *,
    backend: Backend | str = "threads",
    kernel: str = "vectorized",
    check: bool = True,
    oversubscribe: int = 1,
    stats: MergeStats | None = None,
    resilience: "RetryPolicy | bool | None" = None,
    telemetry: "ExecutionTelemetry | None" = None,
    trace: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> np.ndarray:
    """Merge two sorted arrays with ``p`` processors (Algorithm 1).

    Parameters
    ----------
    a, b:
        Sorted input arrays (non-decreasing).
    p:
        Number of parallel workers.
    backend:
        A :class:`~repro.backends.Backend` instance or registry name
        (``"serial"``, ``"threads"``, ``"processes"``, ``"simulated"``).
        Pooled names resolve to process-wide shared instances whose
        worker pools persist across calls (:mod:`repro.execution.pool`),
        and — on untraced calls — may be rerouted by the per-host
        autotuner (e.g. ``"threads"`` → ``"serial"`` below the measured
        fork/join crossover; disable with ``REPRO_AUTOTUNE=0``).
        Explicit instances are used verbatim and never rerouted.
    kernel:
        In-segment merge kernel (see
        :data:`repro.core.sequential.KERNELS`), or ``"auto"`` to let the
        autotuner pick per segment length.
    check:
        Validate input sortedness (O(N) vectorized scan).
    oversubscribe:
        Segments per worker (default 1, the paper's static schedule).
        Values > 1 cut ``p * oversubscribe`` segments so a pooled
        backend can balance dynamically — useful when per-segment cost
        varies (e.g. NUMA effects, or the galloping kernel on clustered
        data); Corollary 7 makes it unnecessary for uniform cost.
    stats:
        Optional operation-count sink (partition probes + merge ops).
    resilience:
        Enable the fault-tolerant execution layer
        (:mod:`repro.resilience`): ``True`` wraps the backend in a
        :class:`~repro.resilience.ResilientBackend` with the default
        :class:`~repro.resilience.RetryPolicy`; pass a policy instance
        to customize retries/timeouts/speculation.  Safe because the
        merge tasks are idempotent and write disjoint slices
        (Theorem 14).
    telemetry:
        Optional :class:`~repro.resilience.ExecutionTelemetry` sink; on
        return it holds the retry/timeout/speculation record of every
        supervised batch this call ran (requires ``resilience`` or an
        already-resilient ``backend``).
    trace:
        Optional :class:`~repro.obs.Tracer`; records ``partition.search``,
        ``segment.merge`` and ``backend.task`` spans for this call
        (export with :func:`repro.obs.write_chrome_trace`).  ``None``
        (the default) allocates no span objects at all.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; receives this
        call's kernel operation counts (``merge.*``), segment counts and
        the Theorem 14 load-balance gauges (``balance.*``), plus
        resilience counters when a supervised backend is in play.

    Returns
    -------
    numpy.ndarray
        The stable merge of ``a`` and ``b`` (ties: ``a`` first), length
        ``len(a) + len(b)``.
    """
    check_positive(p, "p")
    check_positive(oversubscribe, "oversubscribe")
    a = as_array(a, "A")
    b = as_array(b, "B")
    if check:
        check_mergeable(a, b)

    local_stats = stats
    if metrics is not None and local_stats is None:
        local_stats = MergeStats()
    before = _snapshot(local_stats)

    n = len(a) + len(b)
    if kernel == "auto":
        from ..execution.autotune import get_autotuner

        kernel = get_autotuner().resolve_kernel(
            kernel, max(1, n // (p * oversubscribe))
        )

    partition = partition_merge_path(
        a, b, p * oversubscribe, check=False, stats=local_stats, tracer=trace
    )

    be, owned, t_start = _resolve_execution(
        backend, p, resilience, telemetry, metrics, n=n, trace=trace
    )
    d_start = be.dispatches
    try:
        with _TracerScope(be, trace):
            return merge_partition(
                a, b, partition, backend=be, kernel=kernel, stats=local_stats,
                trace=trace, metrics=metrics,
            )
    finally:
        _flush_telemetry(be, t_start, telemetry)
        if metrics is not None:
            metrics.counter("merge.calls").inc()
            dispatched = be.dispatches - d_start
            metrics.counter("exec.dispatches").inc(dispatched)
            metrics.gauge("exec.dispatches_per_call").set(dispatched)
            if local_stats is not None:
                metrics.record_merge_delta(before, local_stats)
        if owned:
            be.close()


def merge(
    a: Sequence | np.ndarray,
    b: Sequence | np.ndarray,
    *,
    p: int = 1,
    backend: Backend | str = "auto",
    kernel: str = "auto",
    check: bool = True,
) -> np.ndarray:
    """Friendly top-level merge.

    ``merge(a, b)`` is a stable sequential merge; pass ``p`` and a
    backend to parallelize.  This is the function the quickstart example
    showcases.

    Defaults are adaptive: ``backend="auto"`` resolves to ``"serial"``
    for ``p == 1`` and ``"threads"`` otherwise, then the autotuner
    (:mod:`repro.execution.autotune`) reroutes by measured per-host
    crossovers; ``kernel="auto"`` picks the two-pointer loop for tiny
    segments and the vectorized kernel everywhere else.  Pass explicit
    names (or set ``REPRO_AUTOTUNE=0``) to pin the configuration.
    """
    if backend == "auto":
        backend = "serial" if p == 1 else "threads"
    return parallel_merge(a, b, p, backend=backend, kernel=kernel, check=check)
