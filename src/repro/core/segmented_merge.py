"""Algorithm 2 — Segmented Parallel Merge (SPM), the cache-efficient variant.

Section IV.B: instead of giving each of the ``p`` processors one huge
(``N/p``-element) segment whose working set thrashes the shared cache,
the overall merge path is cut into *blocks* of length ``L`` (the paper
recommends ``L = C/3`` so a block's A-window, B-window and output slice
co-reside in a cache of ``C`` elements).  Blocks are processed one after
the other; **within** a block the ``p`` processors split the ``L`` path
steps exactly as in Algorithm 1, via diagonal searches confined to the
``L``-element windows (Theorem 16 guarantees the windows suffice).

The block loop advances data-dependently: a block consumes ``ca``
elements of ``A`` and ``cb = L - ca`` of ``B`` (the "cyclic buffer"
refill amounts in the paper's step 1).  :func:`plan_segments` exposes
the full block/sub-segment plan so the cache experiments can replay the
exact access pattern through the cache simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from ..backends import Backend, TaskBatch, get_backend
from ..errors import InputError
from ..obs.tracer import NULL_SPAN
from ..types import MergeStats, Partition, Segment
from ..validation import as_array, check_mergeable, check_positive
from .merge_path import diagonal_intersection, partition_merge_path
from .parallel_merge import _TracerScope, _snapshot
from .sequential import merge_into, result_dtype

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry, Tracer

__all__ = ["BlockPlan", "plan_segments", "segmented_parallel_merge", "block_length"]


def block_length(cache_elements: int, fraction: int = 3) -> int:
    """Paper's block sizing rule: ``L = C / 3``.

    A block needs room for up to ``L`` elements of A, ``L`` of B and
    ``L`` of output; dividing the cache three ways guarantees
    co-residence.  ``fraction`` is exposed for the ablation bench
    (C/2 risks conflict evictions; C/4 wastes capacity).
    """
    check_positive(cache_elements, "cache_elements")
    check_positive(fraction, "fraction")
    return max(1, cache_elements // fraction)


@dataclass(frozen=True, slots=True)
class BlockPlan:
    """One SPM block: its global path segment and intra-block partition.

    Attributes
    ----------
    block:
        Global coordinates of the block on the full merge path.
    partition:
        Intra-block partition into ``p`` sub-segments, in *window*
        coordinates (relative to ``block.a_start`` / ``block.b_start``).
    """

    block: Segment
    partition: Partition


def plan_segments(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    L: int,
    *,
    check: bool = True,
) -> Iterator[BlockPlan]:
    """Lazily yield the SPM block plan.

    Each iteration performs one diagonal search on an ``L``-bounded
    window to find the block's end point (Theorem 16), then partitions
    the block's path segment among ``p`` processors.  Lazy so the
    executor — and the cache-trace replayer — can interleave planning
    with merging exactly the way Algorithm 2's serial outer loop does.
    """
    check_positive(p, "p")
    check_positive(L, "L")
    a = as_array(a, "A")
    b = as_array(b, "B")
    if check:
        check_mergeable(a, b)
    n = len(a) + len(b)
    ga = gb = done = 0
    index = 0
    while done < n:
        # Windows: the next (at most) L unconsumed elements of each array.
        wa = a[ga : ga + L]
        wb = b[gb : gb + L]
        lb = min(L, n - done)
        # End of this block: intersection of the window merge path with
        # the window diagonal at distance lb (Theorem 16: no point on it
        # needs elements beyond the windows).
        end = diagonal_intersection(wa, wb, lb)
        block = Segment(
            index=index,
            a_start=ga,
            a_end=ga + end.i,
            b_start=gb,
            b_end=gb + end.j,
            out_start=done,
            out_end=done + lb,
        )
        sub = partition_merge_path(wa[: end.i], wb[: end.j], p, check=False)
        yield BlockPlan(block=block, partition=sub)
        ga += end.i
        gb += end.j
        done += lb
        index += 1


def segmented_parallel_merge(
    a: Sequence | np.ndarray,
    b: Sequence | np.ndarray,
    p: int,
    *,
    cache_elements: int | None = None,
    L: int | None = None,
    backend: Backend | str = "threads",
    kernel: str = "vectorized",
    check: bool = True,
    stats: MergeStats | None = None,
    trace: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> np.ndarray:
    """Merge with Algorithm 2: serial cache-sized blocks, parallel inside.

    Exactly one of ``cache_elements`` (from which ``L = C/3``) or ``L``
    must be given.  Semantics (output, stability) are identical to
    :func:`repro.core.parallel_merge.parallel_merge`; only the memory
    access schedule differs.

    ``trace`` records one ``spm.block`` span per cache block (with the
    block's refill amounts) plus the usual ``segment.merge`` /
    ``backend.task`` spans inside it; ``metrics`` counts blocks
    (``spm.blocks``), observes each block's A-consumption share
    (histogram ``spm.block_a_share``) and accumulates kernel counts.
    """
    if (cache_elements is None) == (L is None):
        raise InputError("pass exactly one of cache_elements= or L=")
    if L is None:
        assert cache_elements is not None
        L = block_length(cache_elements)
    check_positive(L, "L")
    check_positive(p, "p")
    a = as_array(a, "A")
    b = as_array(b, "B")
    if check:
        check_mergeable(a, b)

    local_stats = stats
    if metrics is not None and local_stats is None:
        local_stats = MergeStats()
    before = _snapshot(local_stats)

    out = np.empty(len(a) + len(b), dtype=result_dtype(a, b))
    own_backend = isinstance(backend, str)
    if own_backend:
        from ..execution.pool import POOLED_BACKENDS, shared_backend

        if backend in POOLED_BACKENDS:
            be: Backend = shared_backend(backend, p)
            own_backend = False  # lifetime owned by the shared pool cache
        else:
            be = get_backend(backend, max_workers=p)
    else:
        be = backend
    d_start = be.dispatches

    def make_task(block: Segment, seg: Segment, seg_stats: MergeStats | None):
        def task() -> None:
            span = (
                trace.span(
                    "segment.merge",
                    index=seg.index, block=block.index,
                    out_start=block.out_start + seg.out_start,
                    out_end=block.out_start + seg.out_end,
                    length=seg.length,
                )
                if trace is not None
                else NULL_SPAN
            )
            with span:
                merge_into(
                    out[block.out_start + seg.out_start : block.out_start + seg.out_end],
                    a[block.a_start + seg.a_start : block.a_start + seg.a_end],
                    b[block.b_start + seg.b_start : block.b_start + seg.b_end],
                    kernel=kernel,
                    stats=seg_stats,
                )

        return task

    try:
        with _TracerScope(be, trace):
            for plan in plan_segments(a, b, p, L, check=False):
                block = plan.block
                block_span = (
                    trace.span(
                        "spm.block",
                        index=block.index,
                        out_start=block.out_start, out_end=block.out_end,
                        a_consumed=block.a_len, b_consumed=block.b_len,
                    )
                    if trace is not None
                    else NULL_SPAN
                )
                with block_span:
                    per_seg_stats = [
                        MergeStats() if local_stats is not None else None
                        for _ in plan.partition.segments
                    ]
                    tasks = [
                        make_task(block, seg, st)
                        for seg, st in zip(plan.partition.segments, per_seg_stats)
                        if seg.length > 0
                    ]
                    if tasks:
                        # per-block barrier (step 3 of Algorithm 2)
                        be.run_batch(TaskBatch(
                            tasks, label="spm.block",
                            meta={"block": block.index},
                        ))
                    if local_stats is not None:
                        for st in per_seg_stats:
                            if st is not None:
                                local_stats.merge(st)
                if metrics is not None:
                    metrics.counter("spm.blocks").inc()
                    if block.length > 0:
                        metrics.histogram("spm.block_a_share").observe(
                            block.a_len / block.length
                        )
    finally:
        if metrics is not None:
            metrics.counter("spm.calls").inc()
            # One dispatch per cache block (the per-block barrier).
            dispatched = be.dispatches - d_start
            metrics.counter("exec.dispatches").inc(dispatched)
            metrics.gauge("exec.dispatches_per_call").set(dispatched)
            if local_stats is not None:
                metrics.record_merge_delta(before, local_stats)
        if own_backend:
            be.close()
    return out
