"""Selection on unions of sorted arrays.

:func:`kth_of_union` finds the k-th smallest element of ``A ∪ B`` in
``O(log min(|A|, |B|))`` — the primitive behind the Akl–Santoro [5] and
Deo–Sarkar [2] baselines, and mathematically *the same search* as the
merge-path diagonal intersection (the paper's Section V observation that
"their way of finding the median is similar to the process that we
use"). The correspondence: the k-th smallest is the element consumed by
the merge path's k-th step, and the split ``(i, j)`` returned here is
exactly the path's intersection with grid diagonal ``k``.

:func:`kth_of_union_many` generalizes to unions of many sorted arrays by
binary-searching the *value* domain with vectorized rank queries — the
device the k-way extension uses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import InputError
from ..types import MergeStats, PathPoint
from ..validation import as_array, check_sorted
from .merge_path import diagonal_intersection

__all__ = ["kth_of_union", "kth_of_union_many", "union_rank", "topk_of_union"]


def kth_of_union(
    a: np.ndarray,
    b: np.ndarray,
    k: int,
    *,
    stats: MergeStats | None = None,
) -> tuple[object, PathPoint]:
    """k-th smallest (1-based) of the union of two sorted arrays.

    Returns ``(value, split)`` where ``split = (i, j)`` says the ``k``
    smallest elements are exactly ``A[:i]`` and ``B[:j]`` under the
    stable A-first tie-break.

    Raises :class:`~repro.errors.InputError` unless
    ``1 <= k <= |A| + |B|``.
    """
    a = as_array(a, "A")
    b = as_array(b, "B")
    if not 1 <= k <= len(a) + len(b):
        raise InputError(f"k must be in [1, {len(a) + len(b)}], got {k}")
    point = diagonal_intersection(a, b, k, stats=stats)
    # The k-th smallest is the element consumed by the path's k-th step:
    # the larger of the two "last consumed" candidates.
    i, j = point.i, point.j
    if i == 0:
        value = b[j - 1]
    elif j == 0:
        value = a[i - 1]
    else:
        value = max(a[i - 1], b[j - 1])
    return value, point


def union_rank(arrays: Sequence[np.ndarray], value: object, side: str = "left") -> int:
    """Total rank of ``value`` across sorted arrays.

    ``side='left'``: number of elements strictly less than ``value``;
    ``side='right'``: number of elements ``<= value``.
    """
    if side not in ("left", "right"):
        raise InputError(f"side must be 'left' or 'right', got {side!r}")
    return int(sum(np.searchsorted(arr, value, side=side) for arr in arrays))


def kth_of_union_many(
    arrays: Sequence[np.ndarray],
    k: int,
    *,
    check: bool = True,
) -> tuple[object, list[int]]:
    """k-th smallest (1-based) of the union of many sorted arrays.

    Binary search over the merged *rank space*: candidate values are
    drawn from the arrays themselves, and each probe costs one
    ``searchsorted`` per array, giving
    ``O(log N · Σ log |arrays_t|)`` total.

    Returns ``(value, splits)`` where ``splits[t]`` elements of
    ``arrays[t]`` fall among the ``k`` smallest.  Ties are broken by
    array order (earlier arrays first), extending the A-before-B rule.
    """
    arrays = [as_array(arr, f"arrays[{t}]") for t, arr in enumerate(arrays)]
    if check:
        for t, arr in enumerate(arrays):
            check_sorted(arr, f"arrays[{t}]")
    total = sum(len(arr) for arr in arrays)
    if not 1 <= k <= total:
        raise InputError(f"k must be in [1, {total}], got {k}")

    # The k-th smallest value via linear-time selection over the pooled
    # elements.  (A polylogarithmic multiselection exists — Deo et al.
    # [7] — but this substrate favours robustness across dtypes; the
    # cost matches the Ω(N) lower bound of the merge that follows.)
    pooled = np.concatenate([arr for arr in arrays if len(arr)])
    value = np.partition(pooled, k - 1)[k - 1]

    # Split counts: everything strictly below `value` is in, then ties
    # are admitted array-by-array until k elements are reached.
    splits = [int(np.searchsorted(arr, value, side="left")) for arr in arrays]
    remaining = k - sum(splits)
    for t, arr in enumerate(arrays):
        if remaining <= 0:
            break
        ties = int(np.searchsorted(arr, value, side="right")) - splits[t]
        take = min(ties, remaining)
        splits[t] += take
        remaining -= take
    if remaining != 0:
        raise AssertionError("rank bookkeeping failed")  # pragma: no cover
    return value, splits


def topk_of_union(
    a: np.ndarray,
    b: np.ndarray,
    k: int,
    *,
    stats: MergeStats | None = None,
) -> np.ndarray:
    """The ``k`` smallest elements of ``A ∪ B``, merged, in order.

    One diagonal search locates the k-prefix split (Theorem 9: output
    rank == grid diagonal), then only those prefixes are merged —
    ``O(log min(|A|,|B|) + k)`` total, independent of ``|A| + |B|``.
    The top-k idiom (leaderboards, limit queries over two sorted
    sources) for free from the paper's machinery.
    """
    from .sequential import merge_vectorized

    a = as_array(a, "A")
    b = as_array(b, "B")
    if k == 0:
        return np.empty(0, dtype=np.promote_types(a.dtype, b.dtype))
    if not 0 <= k <= len(a) + len(b):
        raise InputError(f"k must be in [0, {len(a) + len(b)}], got {k}")
    point = diagonal_intersection(a, b, k, stats=stats)
    return merge_vectorized(a[: point.i], b[: point.j], check=False)
