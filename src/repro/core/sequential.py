"""Sequential (in-segment) merge kernels.

Algorithm 1 parallelizes *partitioning*; within each segment an ordinary
sequential merge runs.  Three interchangeable kernels are provided, all
implementing the identical stable semantics (``A`` before equal ``B``,
matching the merge-path tie-break):

``merge_two_pointer``
    The textbook element-at-a-time merge.  This is the exact loop the
    paper's step counts refer to — one comparison + one move per output
    element — and is what the PRAM programs model.  Pure Python; used
    for step accounting and small inputs.
``merge_galloping``
    Exponential (galloping) search when one run repeatedly wins, as in
    TimSort.  Wins asymptotically on clustered data (e.g. the LB
    experiment's disjoint-range adversarial inputs); same worst case.
``merge_vectorized``
    numpy ``searchsorted`` rank-placement merge: each element's output
    position is its index plus its rank in the other array.  O(N log N)
    comparisons but C-speed and branch-free; this is the production
    kernel and plays the role numba-jitted loops play in CPU merge-path
    libraries.

All kernels share the :func:`merge_into` dispatcher that writes into a
caller-provided output slice, which is how parallel workers write their
disjoint output ranges without any synchronization.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import InputError
from ..types import MergeStats
from ..validation import as_array, check_mergeable

__all__ = [
    "merge_two_pointer",
    "merge_galloping",
    "merge_vectorized",
    "merge_vectorized_into",
    "merge_into",
    "KERNELS",
    "result_dtype",
]


def result_dtype(a: np.ndarray, b: np.ndarray) -> np.dtype:
    """Dtype of the merged output: numpy promotion of the input dtypes."""
    return np.promote_types(a.dtype, b.dtype)


def _prepare(
    a: Sequence | np.ndarray, b: Sequence | np.ndarray, check: bool
) -> tuple[np.ndarray, np.ndarray]:
    a = as_array(a, "A")
    b = as_array(b, "B")
    if check:
        check_mergeable(a, b)
    return a, b


def merge_two_pointer(
    a: Sequence | np.ndarray,
    b: Sequence | np.ndarray,
    *,
    check: bool = True,
    stats: MergeStats | None = None,
) -> np.ndarray:
    """Textbook sequential merge; one comparison and one move per element.

    Stable: on ties the ``A`` element is emitted first.  When ``stats``
    is supplied, ``comparisons`` counts element comparisons actually
    performed (the tail copy after one input is exhausted costs moves
    but no comparisons) and ``moves`` counts output writes.
    """
    a, b = _prepare(a, b, check)
    m, n = len(a), len(b)
    out = np.empty(m + n, dtype=result_dtype(a, b))
    i = j = k = 0
    comparisons = 0
    while i < m and j < n:
        comparisons += 1
        if a[i] <= b[j]:
            out[k] = a[i]
            i += 1
        else:
            out[k] = b[j]
            j += 1
        k += 1
    if i < m:
        out[k:] = a[i:]
    if j < n:
        out[k:] = b[j:]
    if stats is not None:
        stats.comparisons += comparisons
        stats.moves += m + n
    return out


def _gallop_right(arr: np.ndarray, key, start: int, stats: MergeStats | None) -> int:
    """First index ``> start`` in ``arr[start:]`` whose element is > ``key``.

    Exponential probe doubling followed by binary search within the
    bracketed range — the classic galloping-mode primitive.
    """
    n = len(arr)
    step = 1
    lo = start
    hi = start
    while hi < n and arr[hi] <= key:
        if stats is not None:
            stats.comparisons += 1
        lo = hi + 1
        hi = start + step
        step *= 2
    hi = min(hi, n)
    # binary search in (lo-1, hi]
    while lo < hi:
        mid = (lo + hi) // 2
        if stats is not None:
            stats.comparisons += 1
        if arr[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def merge_galloping(
    a: Sequence | np.ndarray,
    b: Sequence | np.ndarray,
    *,
    check: bool = True,
    min_gallop: int = 4,
    stats: MergeStats | None = None,
) -> np.ndarray:
    """Merge with galloping runs, TimSort-style.

    Runs the two-pointer loop, but after ``min_gallop`` consecutive wins
    from the same array switches to exponential search to find the end
    of the winning run and block-copies it.  Identical stable output to
    :func:`merge_two_pointer`.
    """
    if min_gallop < 1:
        raise InputError(f"min_gallop must be >= 1, got {min_gallop}")
    a, b = _prepare(a, b, check)
    m, n = len(a), len(b)
    out = np.empty(m + n, dtype=result_dtype(a, b))
    i = j = k = 0
    a_wins = b_wins = 0
    while i < m and j < n:
        if stats is not None:
            stats.comparisons += 1
        if a[i] <= b[j]:
            out[k] = a[i]
            i += 1
            k += 1
            a_wins += 1
            b_wins = 0
            if a_wins >= min_gallop:
                # Copy the whole run of A elements <= b[j] in one block.
                end = _gallop_right(a, b[j], i, stats)
                if end > i:
                    out[k : k + (end - i)] = a[i:end]
                    k += end - i
                    i = end
                a_wins = 0
        else:
            out[k] = b[j]
            j += 1
            k += 1
            b_wins += 1
            a_wins = 0
            if b_wins >= min_gallop:
                # Copy the run of B elements strictly < a[i] (ties go to A).
                end = _gallop_strict(b, a[i], j, stats)
                if end > j:
                    out[k : k + (end - j)] = b[j:end]
                    k += end - j
                    j = end
                b_wins = 0
    if i < m:
        out[k:] = a[i:]
    if j < n:
        out[k:] = b[j:]
    if stats is not None:
        stats.moves += m + n
    return out


def _gallop_strict(arr: np.ndarray, key, start: int, stats: MergeStats | None) -> int:
    """First index in ``arr[start:]`` whose element is >= ``key``."""
    n = len(arr)
    step = 1
    lo = start
    hi = start
    while hi < n and arr[hi] < key:
        if stats is not None:
            stats.comparisons += 1
        lo = hi + 1
        hi = start + step
        step *= 2
    hi = min(hi, n)
    while lo < hi:
        mid = (lo + hi) // 2
        if stats is not None:
            stats.comparisons += 1
        if arr[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def merge_vectorized(
    a: Sequence | np.ndarray,
    b: Sequence | np.ndarray,
    *,
    check: bool = True,
    stats: MergeStats | None = None,
) -> np.ndarray:
    """Branch-free stable merge via rank placement (production kernel).

    Element ``A[i]`` lands at output index ``i + |{b in B : b < A[i]}|``
    (``searchsorted(..., 'left')`` so equal B elements come after it);
    element ``B[j]`` lands at ``j + |{a in A : a <= B[j]}|``
    (``searchsorted(..., 'right')`` so equal A elements come before it).
    Together the two position sets are a perfect tiling of the output.
    """
    a, b = _prepare(a, b, check)
    out = np.empty(len(a) + len(b), dtype=result_dtype(a, b))
    if len(a) == 0:
        out[:] = b
    elif len(b) == 0:
        out[:] = a
    else:
        pos_a = np.arange(len(a), dtype=np.intp) + np.searchsorted(b, a, side="left")
        pos_b = np.arange(len(b), dtype=np.intp) + np.searchsorted(a, b, side="right")
        out[pos_a] = a
        out[pos_b] = b
    if stats is not None:
        # Rank placement performs ceil(log2) comparisons per element.
        la, lb = len(a), len(b)
        if la and lb:
            stats.comparisons += la * max(1, int(np.ceil(np.log2(lb + 1))))
            stats.comparisons += lb * max(1, int(np.ceil(np.log2(la + 1))))
        stats.moves += la + lb
    return out


#: Registry of kernels by name, used by benchmarks and the ablation study.
KERNELS: dict[str, Callable[..., np.ndarray]] = {
    "two_pointer": merge_two_pointer,
    "galloping": merge_galloping,
    "vectorized": merge_vectorized,
}


def merge_vectorized_into(
    out: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    *,
    stats: MergeStats | None = None,
) -> None:
    """Rank-placement merge writing directly into ``out`` (zero copy).

    Same semantics as :func:`merge_vectorized`, but scatters straight
    into the caller's slice — the hot path of Algorithm 1 workers,
    where an intermediate allocation + copy would roughly match the
    merge's own memory traffic.
    """
    if len(a) == 0:
        out[:] = b
    elif len(b) == 0:
        out[:] = a
    else:
        pos_a = np.arange(len(a), dtype=np.intp) + np.searchsorted(b, a, side="left")
        pos_b = np.arange(len(b), dtype=np.intp) + np.searchsorted(a, b, side="right")
        out[pos_a] = a
        out[pos_b] = b
    if stats is not None:
        la, lb = len(a), len(b)
        if la and lb:
            stats.comparisons += la * max(1, int(np.ceil(np.log2(lb + 1))))
            stats.comparisons += lb * max(1, int(np.ceil(np.log2(la + 1))))
        stats.moves += la + lb


def merge_into(
    out: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    *,
    kernel: str = "vectorized",
    stats: MergeStats | None = None,
) -> None:
    """Merge ``a`` and ``b`` into the pre-allocated slice ``out``.

    ``out`` must have length ``len(a) + len(b)``.  This is the worker
    primitive of Algorithm 1: each processor calls it on its disjoint
    output slice, so no locking is ever needed.  The vectorized kernel
    writes in place; the Python kernels produce-then-copy (they are
    step-counting tools, not production paths).
    """
    if len(out) != len(a) + len(b):
        raise InputError(
            f"output slice length {len(out)} != |A|+|B| = {len(a) + len(b)}"
        )
    if kernel == "vectorized":
        merge_vectorized_into(out, a, b, stats=stats)
        return
    try:
        fn = KERNELS[kernel]
    except KeyError:
        raise InputError(
            f"unknown kernel {kernel!r}; choose from {sorted(KERNELS)}"
        ) from None
    out[:] = fn(a, b, check=False, stats=stats)
