"""Sorted-set operations on top of the merge machinery (extension).

The same GPU lineage that adopted Merge Path for merging uses a
"balanced path" variant for set operations on sorted inputs
(moderngpu's set-ops kernels).  This module provides the four classic
operations with **multiset semantics identical to the C++ standard
library** (``std::set_union`` et al.): for a value appearing ``ca``
times in ``A`` and ``cb`` times in ``B``,

* union keeps ``max(ca, cb)`` copies,
* intersection keeps ``min(ca, cb)``,
* difference keeps ``max(ca - cb, 0)``,
* symmetric difference keeps ``|ca - cb|``.

Implementation is count-space and fully vectorized: run-length encode
both inputs (`numpy.unique`), merge the distinct-value axes with the
stable vectorized merge, combine counts, and re-expand with
``numpy.repeat``.  Cost is O(N) after the (already sorted) inputs'
run-length encoding — no comparisons-based loop in Python.

All functions require sorted inputs (validated by default) and return
sorted outputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..validation import as_array, check_mergeable

__all__ = [
    "set_union",
    "set_intersection",
    "set_difference",
    "set_symmetric_difference",
    "include_counts",
]


def include_counts(
    a: np.ndarray, b: np.ndarray, *, check: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared preamble: aligned per-distinct-value counts.

    Returns ``(values, counts_a, counts_b)`` where ``values`` is the
    sorted union of distinct values and the count arrays give each
    value's multiplicity in ``A`` and ``B`` (zero where absent).
    """
    a = as_array(a, "A")
    b = as_array(b, "B")
    if check:
        check_mergeable(a, b)
    va, ca = np.unique(a, return_counts=True)
    vb, cb = np.unique(b, return_counts=True)
    values = np.union1d(va, vb)
    counts_a = np.zeros(len(values), dtype=np.int64)
    counts_b = np.zeros(len(values), dtype=np.int64)
    counts_a[np.searchsorted(values, va)] = ca
    counts_b[np.searchsorted(values, vb)] = cb
    return values, counts_a, counts_b


def _expand(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    return np.repeat(values, counts)


def set_union(
    a: Sequence | np.ndarray, b: Sequence | np.ndarray, *, check: bool = True
) -> np.ndarray:
    """Multiset union: each value ``max(ca, cb)`` times (std::set_union)."""
    values, ca, cb = include_counts(a, b, check=check)
    return _expand(values, np.maximum(ca, cb))


def set_intersection(
    a: Sequence | np.ndarray, b: Sequence | np.ndarray, *, check: bool = True
) -> np.ndarray:
    """Multiset intersection: ``min(ca, cb)`` copies per value."""
    values, ca, cb = include_counts(a, b, check=check)
    return _expand(values, np.minimum(ca, cb))


def set_difference(
    a: Sequence | np.ndarray, b: Sequence | np.ndarray, *, check: bool = True
) -> np.ndarray:
    """Multiset difference A \\ B: ``max(ca - cb, 0)`` copies per value."""
    values, ca, cb = include_counts(a, b, check=check)
    return _expand(values, np.maximum(ca - cb, 0))


def set_symmetric_difference(
    a: Sequence | np.ndarray, b: Sequence | np.ndarray, *, check: bool = True
) -> np.ndarray:
    """Multiset symmetric difference: ``|ca - cb|`` copies per value."""
    values, ca, cb = include_counts(a, b, check=check)
    return _expand(values, np.abs(ca - cb))
