"""Streaming (out-of-core) merge — Algorithm 2's cyclic buffer, literally.

Algorithm 2's step 1 refills an in-cache window of each input by exactly
the amount the previous block consumed.  Taken literally, that is a
*streaming* merge: the inputs need not be arrays at all, only sorted
element sources, and memory stays O(L).  This module provides that as a
first-class library feature:

:func:`streaming_merge` consumes two sorted iterables (anything
yielding comparable scalars — generators, file readers, array chunks)
and yields merged numpy blocks of at most ``L`` elements, holding at
most ``L`` buffered elements per input at any time.  Inside each block
the merge is the ordinary vectorized segment merge, so throughput is
C-speed even though the sources are Python iterators.

Sortedness is validated *incrementally* — a disordered source raises
:class:`~repro.errors.NotSortedError` at the offending element, with
its global index, even though the full stream is never materialized.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..errors import NotSortedError
from ..validation import check_positive
from .merge_path import diagonal_intersection
from .sequential import merge_vectorized

__all__ = ["streaming_merge", "ChunkFeeder"]


class ChunkFeeder:
    """Buffers a sorted element source up to a bounded window.

    Wraps any iterable of scalars (or of numpy chunks — chunks are
    flattened) and exposes the window the SPM block loop needs:
    :meth:`fill` tops the buffer up to ``L`` elements (or to source
    exhaustion), :meth:`consume` drops the first ``k``.
    """

    def __init__(self, source: Iterable, name: str, dtype=None) -> None:
        self._it = iter(source)
        self.name = name
        self._dtype = dtype
        self._buffer: list = []
        self._exhausted = False
        self._last = None
        self._position = 0  # global index of the next element to arrive

    @property
    def exhausted(self) -> bool:
        """True when the source has ended (buffer may still hold data)."""
        return self._exhausted

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def fill(self, upto: int) -> None:
        """Pull from the source until ``upto`` elements are buffered.

        Validates monotonicity element by element; the error's ``index``
        is the global position of the first out-of-order element.
        """
        while len(self._buffer) < upto and not self._exhausted:
            try:
                item = next(self._it)
            except StopIteration:
                self._exhausted = True
                break
            values = np.atleast_1d(np.asarray(item))
            for v in values:
                if self._last is not None and v < self._last:
                    raise NotSortedError(self.name, self._position - 1)
                self._last = v
                self._buffer.append(v)
                self._position += 1

    def window(self) -> np.ndarray:
        """Current buffer as an array (no copy avoidance needed at L-size)."""
        if not self._buffer:
            return np.empty(0, dtype=self._dtype or np.float64)
        return np.asarray(self._buffer, dtype=self._dtype)

    def consume(self, k: int) -> None:
        """Drop the first ``k`` buffered elements (they were merged out)."""
        if k:
            del self._buffer[:k]


def streaming_merge(
    source_a: Iterable,
    source_b: Iterable,
    *,
    L: int = 4096,
    dtype=None,
) -> Iterator[np.ndarray]:
    """Merge two sorted element streams with O(L) memory.

    Parameters
    ----------
    source_a, source_b:
        Iterables of comparable scalars **or** of numpy chunks; each
        must be globally sorted (validated incrementally).
    L:
        Block/window size in elements — the ``C/3`` of Algorithm 2.
        Peak buffered state is ``2L`` input elements plus one ``<= L``
        output block.
    dtype:
        Optional dtype for the yielded blocks (default: numpy inference
        per block).

    Yields
    ------
    numpy.ndarray
        Sorted blocks whose concatenation is the stable merge of the
        two streams (``A`` before equal ``B``).
    """
    check_positive(L, "L")
    fa = ChunkFeeder(source_a, "A", dtype)
    fb = ChunkFeeder(source_b, "B", dtype)
    while True:
        fa.fill(L)
        fb.fill(L)
        wa = fa.window()
        wb = fb.window()
        avail = len(wa) + len(wb)
        if avail == 0:
            return
        lb = min(L, avail)
        # Theorem 16: with both windows filled to L (or their source
        # drained), the first lb path steps need no later elements.
        end = diagonal_intersection(wa, wb, lb)
        block = merge_vectorized(wa[: end.i], wb[: end.j], check=False)
        fa.consume(end.i)
        fb.consume(end.j)
        yield block
