"""Durable on-disk state: atomic writes, corruption-tolerant reads.

Every file this package persists across process lifetimes — the
autotuner's calibration cache, the serve front door's final metrics
snapshot, the doctor's structured verdict — is either *advisory* (a
cache that can be rebuilt) or *post-mortem* (a snapshot read after the
writer died).  Both demand the same two properties:

* **writes are atomic**: a reader never observes a half-written file,
  even if the writer is SIGKILLed mid-flush.  :func:`atomic_write_text`
  writes to a same-directory temp file, ``fsync``\\ s it, and
  ``os.replace``\\ s it over the target — the POSIX publish idiom.
* **reads tolerate corruption**: a truncated or garbage payload is a
  *miss*, never a crash.  :func:`load_json` reports ``absent`` /
  ``corrupt`` / ``ok`` so callers can count corruption (e.g. the
  ``autotune.cache_corrupt`` counter) and recalibrate instead of
  raising at import time.

Nothing here imports beyond the standard library, so every layer
(execution, serve, control) can depend on it without cycles.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "atomic_write_text",
    "atomic_write_json",
    "load_json",
]


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically publish ``text`` at ``path`` (write-tmp/fsync/rename).

    The temp file lives in the target's directory so ``os.replace`` is
    a same-filesystem rename (atomic on POSIX).  On any failure the
    temp file is removed and the previous ``path`` contents — if any —
    are left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Publishing the rename itself is best-effort: not every platform
    # allows opening a directory for fsync.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass


def atomic_write_json(
    path: str | Path, payload: Any, *, indent: int | None = 2
) -> None:
    """:func:`atomic_write_text` for a JSON-serializable payload."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


def load_json(path: str | Path) -> tuple[Any, str]:
    """Read a JSON file, classifying the outcome instead of raising.

    Returns ``(payload, state)`` where ``state`` is ``"ok"`` (payload
    is the decoded document), ``"absent"`` (missing or unreadable
    file), or ``"corrupt"`` (the file exists but does not parse —
    truncated write, garbage bytes, wrong encoding).  Callers treat
    anything but ``"ok"`` as a cache miss; ``"corrupt"`` additionally
    deserves a counter, because it means a writer skipped the atomic
    path or the disk lied.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return None, "absent"
    try:
        return json.loads(raw.decode("utf-8")), "ok"
    except (UnicodeDecodeError, ValueError):
        return None, "corrupt"
