"""Exception hierarchy for the merge-path reproduction package.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
still distinguishing input problems (:class:`InputError` and subclasses)
from simulator-detected model violations
(:class:`~repro.errors.MemoryConflictError`, :class:`SimulationError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InputError(ReproError, ValueError):
    """An argument supplied by the caller is invalid."""


class NotSortedError(InputError):
    """An input array that must be sorted is not sorted.

    Merge Path (Definition 1 and every lemma built on it) assumes the two
    input arrays are sorted in non-decreasing order; violating that breaks
    the monotonicity of the merge-matrix cross diagonals (Corollary 12)
    that the diagonal binary search relies on.
    """

    def __init__(self, name: str, index: int) -> None:
        self.name = name
        #: Index ``i`` such that ``arr[i] > arr[i + 1]``.
        self.index = index
        super().__init__(
            f"array {name!r} is not sorted: order violated at index {index} "
            f"(element {index} > element {index + 1})"
        )


class DTypeMismatchError(InputError):
    """Two arrays participating in a merge have incompatible dtypes."""


class PartitionError(ReproError):
    """A partitioning step produced an internally inconsistent result.

    This indicates a bug in a partitioner (or a baseline intentionally
    demonstrating incorrectness), never a user error.
    """


class SimulationError(ReproError):
    """Base class for PRAM / cache simulation failures."""


class MemoryConflictError(SimulationError):
    """The PRAM access auditor observed a forbidden concurrent access.

    Under CREW, two processors wrote the same address in one lockstep
    cycle; under EREW, two processors touched the same address at all.
    The offending address and processor ids are recorded for diagnosis.
    """

    def __init__(
        self, kind: str, address: object, processors: tuple[int, ...]
    ) -> None:
        self.kind = kind
        self.address = address
        self.processors = processors
        super().__init__(
            f"{kind} conflict at address {address!r} between processors "
            f"{sorted(processors)}"
        )


class DeadlockError(SimulationError):
    """No PRAM processor made progress during a lockstep cycle."""


class BackendError(ReproError):
    """An execution backend failed to run a task set."""


class BackendUnavailableError(BackendError):
    """A requested backend cannot run in this environment.

    Raised instead of a bare ``ImportError`` when a backend's supporting
    dependency is missing (e.g. the ``mpi`` backend without mpi4py) or
    its runtime prerequisites are absent.  The message names the missing
    piece and points at the degradation chain
    (``mpi → processes → threads → serial``) so callers can fall back
    deliberately via :func:`repro.resilience.resolve_backend`.
    """

    def __init__(self, backend: str, missing: str, hint: str = "") -> None:
        self.backend = backend
        #: Name of the missing dependency or capability.
        self.missing = missing
        fallback = hint or (
            "fall back along the degradation chain "
            "(mpi → processes → threads → serial), e.g. via "
            "repro.resilience.resolve_backend()"
        )
        super().__init__(
            f"backend {backend!r} is unavailable: requires {missing}; {fallback}"
        )


@dataclass(frozen=True)
class TaskFailure:
    """Record of one task that could not be completed by a backend.

    ``kind`` classifies the failure mode:

    * ``"exception"``    — the task callable raised;
    * ``"timeout"``      — the attempt exceeded the per-task deadline and
      was abandoned (safe to re-execute: Theorem 14 tasks are idempotent
      and write disjoint output slices);
    * ``"worker-death"`` — the worker process executing the task died
      (e.g. SIGKILL / OOM) and the pool reported it broken;
    * ``"unavailable"``  — no healthy executor could accept the task.
    """

    index: int
    kind: str
    message: str
    #: The underlying exception when one was captured (kept out of the
    #: dataclass repr so BatchError messages stay single-line per task).
    error: BaseException | None = field(default=None, repr=False)
    #: Dispatch attempts consumed on this task when the failure was
    #: recorded (1 = the primary attempt, no retries).
    attempts: int = 1

    def describe(self) -> str:
        return f"task {self.index} failed [{self.kind}]: {self.message}"


class BatchError(BackendError):
    """One or more tasks of a batch failed (ExceptionGroup-style).

    Unlike an abort-on-first-exception model, backends attempt **every**
    task of a batch and collect all failures here, so callers see the
    complete damage report: which task indices failed, how, and after
    how many attempts.  ``failures`` is ordered by task index; the first
    captured exception is chained as ``__cause__``.
    """

    def __init__(self, failures: Sequence[TaskFailure], total: int | None = None) -> None:
        self.failures = tuple(sorted(failures, key=lambda f: f.index))
        #: Batch size, when the caller supplied it.
        self.total = total
        self.task_indices = tuple(f.index for f in self.failures)
        of = f" of {total}" if total is not None else ""
        lines = "; ".join(f.describe() for f in self.failures)
        super().__init__(f"{len(self.failures)}{of} task(s) failed: {lines}")
        for f in self.failures:
            if f.error is not None:
                self.__cause__ = f.error
                break


class ExperimentError(ReproError):
    """An experiment runner was configured inconsistently."""


class UnknownExperimentError(ExperimentError, KeyError):
    """Requested experiment id is not present in the registry."""

    def __init__(self, exp_id: str, known: tuple[str, ...]) -> None:
        self.exp_id = exp_id
        self.known = known
        super().__init__(
            f"unknown experiment {exp_id!r}; known ids: {', '.join(known)}"
        )
