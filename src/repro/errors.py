"""Exception hierarchy for the merge-path reproduction package.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
still distinguishing input problems (:class:`InputError` and subclasses)
from simulator-detected model violations
(:class:`~repro.errors.MemoryConflictError`, :class:`SimulationError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InputError(ReproError, ValueError):
    """An argument supplied by the caller is invalid."""


class NotSortedError(InputError):
    """An input array that must be sorted is not sorted.

    Merge Path (Definition 1 and every lemma built on it) assumes the two
    input arrays are sorted in non-decreasing order; violating that breaks
    the monotonicity of the merge-matrix cross diagonals (Corollary 12)
    that the diagonal binary search relies on.
    """

    def __init__(self, name: str, index: int) -> None:
        self.name = name
        #: Index ``i`` such that ``arr[i] > arr[i + 1]``.
        self.index = index
        super().__init__(
            f"array {name!r} is not sorted: order violated at index {index} "
            f"(element {index} > element {index + 1})"
        )


class DTypeMismatchError(InputError):
    """Two arrays participating in a merge have incompatible dtypes."""


class PartitionError(ReproError):
    """A partitioning step produced an internally inconsistent result.

    This indicates a bug in a partitioner (or a baseline intentionally
    demonstrating incorrectness), never a user error.
    """


class SimulationError(ReproError):
    """Base class for PRAM / cache simulation failures."""


class MemoryConflictError(SimulationError):
    """The PRAM access auditor observed a forbidden concurrent access.

    Under CREW, two processors wrote the same address in one lockstep
    cycle; under EREW, two processors touched the same address at all.
    The offending address and processor ids are recorded for diagnosis.
    """

    def __init__(
        self, kind: str, address: object, processors: tuple[int, ...]
    ) -> None:
        self.kind = kind
        self.address = address
        self.processors = processors
        super().__init__(
            f"{kind} conflict at address {address!r} between processors "
            f"{sorted(processors)}"
        )


class DeadlockError(SimulationError):
    """No PRAM processor made progress during a lockstep cycle."""


class BackendError(ReproError):
    """An execution backend failed to run a task set."""


class ExperimentError(ReproError):
    """An experiment runner was configured inconsistently."""


class UnknownExperimentError(ExperimentError, KeyError):
    """Requested experiment id is not present in the registry."""

    def __init__(self, exp_id: str, known: tuple[str, ...]) -> None:
        self.exp_id = exp_id
        self.known = known
        super().__init__(
            f"unknown experiment {exp_id!r}; known ids: {', '.join(known)}"
        )
