"""Batched execution engine + adaptive autotuner for the hot paths.

This package is the dispatch layer between the algorithms in
:mod:`repro.core` and the executors in :mod:`repro.backends`:

* :mod:`~repro.execution.engine` — fuse every segment task of a phase
  (a whole sort round, all chunk sorts) into one
  :class:`~repro.backends.TaskBatch` → one fork/join barrier, so a sort
  call performs ``O(log N)`` dispatches instead of ``O(p · log N)``.
* :mod:`~repro.execution.pool` — process-wide persistent backends for
  string-named requests; worker pools are built once per host process,
  never per call.
* :mod:`~repro.execution.arena` — shared-memory staging of whole rounds
  for the process backend (two blocks per round, picklable offset
  jobs).
* :mod:`~repro.execution.autotune` — measured per-host crossover
  thresholds (serial↔threads↔processes, two-pointer↔vectorized),
  persisted and consulted by the core entry points for string-named
  backends on untraced calls.
* :mod:`~repro.execution.tuning` — the pure policy half of the tuner
  (probe samples → thresholds → routing decisions, host
  fingerprinting), shared by the cold-start path above and the
  continuous controller in :mod:`repro.control`.
"""

from .autotune import (
    Autotuner,
    Thresholds,
    autotune_enabled,
    clear_cache,
    get_autotuner,
)
from .tuning import (
    NEVER,
    HostFingerprint,
    ProbeSuite,
    TuningState,
    decide_backend,
    decide_kernel,
    derive_thresholds,
    tuning_env,
)
from .arena import ChunkSortArena, RoundArena
from .engine import run_chunk_sorts, run_merge_round
from .pool import close_shared_backends, is_shared, shared_backend

__all__ = [
    "Autotuner",
    "Thresholds",
    "autotune_enabled",
    "clear_cache",
    "get_autotuner",
    "NEVER",
    "HostFingerprint",
    "ProbeSuite",
    "TuningState",
    "decide_backend",
    "decide_kernel",
    "derive_thresholds",
    "tuning_env",
    "ChunkSortArena",
    "RoundArena",
    "run_chunk_sorts",
    "run_merge_round",
    "close_shared_backends",
    "is_shared",
    "shared_backend",
]
