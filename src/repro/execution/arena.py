"""Shared-memory staging for whole batched phases on the process backend.

:class:`repro.backends.processes.SharedMergeArena` stages *one* merge —
two blocks in, one block out.  A batched sort round merges many pairs at
once, and staging each pair separately would cost one shared-memory
allocation trio per pair per round.  The arenas here amortize that to
**two blocks per round** regardless of pair count:

:class:`RoundArena`
    One input block holding every run of the round back to back, one
    output block holding every merged pair back to back.  Each segment
    task carries only integer offsets into the two blocks, so the jobs
    stay picklable and idempotent — same disjoint bytes on re-execution,
    which is what lets :class:`repro.resilience.ResilientBackend` retry
    or speculate them freely (Theorem 14).

:class:`ChunkSortArena`
    Round 0 of the sort: the unsorted array in one block, each chunk
    sorted in place into a second block by its worker.

Both are context managers; the parent owns block lifetime (workers only
ever ``close()``, never ``unlink()``).
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Callable, Sequence

import functools

import numpy as np

from ..types import Partition

__all__ = ["RoundArena", "ChunkSortArena"]


def _attach(name: str) -> shared_memory.SharedMemory:
    return shared_memory.SharedMemory(name=name)


def _merge_segment_offsets(
    args: tuple[str, str, str, int, int, int, int, int, int, int, int, int, int],
) -> int:
    """Merge one segment of one pair inside a worker process.

    All coordinates are *element* offsets into the round's two shared
    blocks: the pair's A run lives at ``a_off`` (length ``a_len``), its
    B run at ``b_off``, its output at ``out_off``; the segment then
    addresses sub-ranges of those runs exactly as in Algorithm 1.
    """
    from ..core.sequential import merge_into

    (name_in, name_out, dtype_str,
     a_off, a_len, b_off, b_len, out_off,
     a0, a1, b0, b1, o0) = args
    dtype = np.dtype(dtype_str)
    item = dtype.itemsize
    shm_in = _attach(name_in)
    shm_out = _attach(name_out)
    try:
        a = np.ndarray((a_len,), dtype=dtype, buffer=shm_in.buf,
                       offset=a_off * item)
        b = np.ndarray((b_len,), dtype=dtype, buffer=shm_in.buf,
                       offset=b_off * item)
        seg_len = (a1 - a0) + (b1 - b0)
        out = np.ndarray((seg_len,), dtype=dtype, buffer=shm_out.buf,
                         offset=(out_off + o0) * item)
        merge_into(out, a[a0:a1], b[b0:b1], kernel="vectorized")
    finally:
        shm_in.close()
        shm_out.close()
    return out_off + o0


def _sort_chunk_shm(
    args: tuple[str, str, str, int, int],
) -> int:
    """Sort one chunk of the round-0 input inside a worker process."""
    (name_in, name_out, dtype_str, lo, hi) = args
    dtype = np.dtype(dtype_str)
    item = dtype.itemsize
    shm_in = _attach(name_in)
    shm_out = _attach(name_out)
    try:
        src = np.ndarray((hi - lo,), dtype=dtype, buffer=shm_in.buf,
                         offset=lo * item)
        dst = np.ndarray((hi - lo,), dtype=dtype, buffer=shm_out.buf,
                         offset=lo * item)
        dst[:] = np.sort(src, kind="mergesort")
    finally:
        shm_in.close()
        shm_out.close()
    return lo


class _TwoBlockArena:
    """Common create/close logic for the in/out shared block pair."""

    def __init__(self, dtype: np.dtype, in_elems: int, out_elems: int) -> None:
        self._dtype = dtype
        item = dtype.itemsize
        self._shm_in = shared_memory.SharedMemory(
            create=True, size=max(1, in_elems * item))
        self._shm_out = shared_memory.SharedMemory(
            create=True, size=max(1, out_elems * item))

    def close(self) -> None:
        for shm in (self._shm_in, self._shm_out):
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RoundArena(_TwoBlockArena):
    """Stage every pair of one merge round in two shared blocks.

    ``pairs`` is a sequence of ``(a, b, partition)`` triples.  The runs
    are copied into the input block once; ``tasks()`` yields one
    picklable job per non-empty segment across *all* pairs — the round's
    entire :class:`~repro.backends.TaskBatch`.  ``results()`` copies
    each pair's merged output back out in pair order.
    """

    def __init__(
        self, pairs: Sequence[tuple[np.ndarray, np.ndarray, Partition]]
    ) -> None:
        dtype = np.result_type(*(
            np.promote_types(a.dtype, b.dtype) for a, b, _ in pairs
        ))
        in_elems = sum(len(a) + len(b) for a, b, _ in pairs)
        super().__init__(np.dtype(dtype), in_elems, in_elems)
        try:
            self._pair_slices: list[tuple[int, int]] = []
            self.jobs: list[tuple] = []
            cursor = 0
            for a, b, part in pairs:
                a_off, b_off = cursor, cursor + len(a)
                out_off = a_off  # output tiles the block identically
                item = self._dtype.itemsize
                np.ndarray((len(a),), dtype=self._dtype,
                           buffer=self._shm_in.buf, offset=a_off * item)[:] = a
                np.ndarray((len(b),), dtype=self._dtype,
                           buffer=self._shm_in.buf, offset=b_off * item)[:] = b
                for s in part.segments:
                    if s.length == 0:
                        continue
                    self.jobs.append((
                        self._shm_in.name, self._shm_out.name,
                        self._dtype.str,
                        a_off, len(a), b_off, len(b), out_off,
                        s.a_start, s.a_end, s.b_start, s.b_end, s.out_start,
                    ))
                cursor += len(a) + len(b)
                self._pair_slices.append((out_off, cursor))
        except BaseException:
            self.close()
            raise

    def tasks(self) -> list[Callable[[], int]]:
        return [functools.partial(_merge_segment_offsets, j) for j in self.jobs]

    def results(self) -> list[np.ndarray]:
        """Merged output of each pair, in input order (copied out)."""
        item = self._dtype.itemsize
        return [
            np.ndarray((hi - lo,), dtype=self._dtype,
                       buffer=self._shm_out.buf, offset=lo * item).copy()
            for lo, hi in self._pair_slices
        ]


class ChunkSortArena(_TwoBlockArena):
    """Stage the round-0 chunk sorts of one array in two shared blocks."""

    def __init__(self, arr: np.ndarray, bounds: Sequence[int]) -> None:
        super().__init__(arr.dtype, len(arr), len(arr))
        try:
            np.ndarray((len(arr),), dtype=arr.dtype,
                       buffer=self._shm_in.buf)[:] = arr
            self._bounds = [
                (lo, hi) for lo, hi in zip(bounds, bounds[1:]) if hi > lo
            ]
            self.jobs = [
                (self._shm_in.name, self._shm_out.name, self._dtype.str, lo, hi)
                for lo, hi in self._bounds
            ]
        except BaseException:
            self.close()
            raise

    def tasks(self) -> list[Callable[[], int]]:
        return [functools.partial(_sort_chunk_shm, j) for j in self.jobs]

    def results(self) -> list[np.ndarray]:
        """The sorted runs, in chunk order (copied out)."""
        item = self._dtype.itemsize
        return [
            np.ndarray((hi - lo,), dtype=self._dtype,
                       buffer=self._shm_out.buf, offset=lo * item).copy()
            for lo, hi in self._bounds
        ]
