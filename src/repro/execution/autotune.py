"""Adaptive crossover calibration for the merge/sort hot paths (IO layer).

The paper's speedups assume p hardware threads and N large enough that
partitioning cost (p·log N probes) vanishes against merge work (N/p per
core).  On a real host neither is guaranteed: below some N the serial
vectorized kernel beats any fork/join, below some segment length the
pure-Python two-pointer loop beats numpy's ``searchsorted`` setup, and
the threads/processes choice depends on core count and fork cost.
Those crossover points are *host properties*, so we measure them once
per host with quick timing probes, persist them, and consult them on
every call made with a string backend name.

This module is the *IO* half of the tuner: timing probes, cache
persistence, and the process-wide singleton.  All decisions — how
probe timings become thresholds, how a request routes, when a cached
calibration is stale — live in the pure policy module
:mod:`repro.execution.tuning`, which the continuous controller
(:mod:`repro.control`) drives through the same :meth:`Autotuner.seed`
/ :meth:`Autotuner.calibrate` API used here for cold start.

Policy knobs (all overridable by environment):

``REPRO_AUTOTUNE=0``
    Kill switch — no calibration, no rerouting; requested backends and
    kernels are used verbatim.
``REPRO_AUTOTUNE_CACHE=/path/file.json``
    Where calibrated thresholds persist (default
    ``~/.cache/repro/autotune-<host>-py<maj>.<min>.json``).

The cache payload carries a :class:`~repro.execution.tuning.HostFingerprint`
(cpu count, python build, machine, ``REPRO_*`` overrides); a payload
whose fingerprint does not match the current host is ignored and the
probe suite reruns, so moving the cache file between machines — or
changing the core count of this one — forces recalibration.

The tuner only ever *reroutes, never changes semantics*: results are
bit-identical whichever backend or kernel runs, because every kernel
implements the same stable merge and every backend executes the same
disjoint-slice tasks (Theorem 14).  Rerouting applies only when the
caller passed a backend *name* (an explicit ``Backend`` instance is a
deliberate choice) and only for untraced calls (a traced run is a
measurement of the requested configuration, not a request for speed).
"""

from __future__ import annotations

import os
import platform
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable

import numpy as np

from ..durable import atomic_write_json, load_json
from .tuning import (
    NEVER,
    SERIAL_MARGIN,
    HostFingerprint,
    ProbeSuite,
    Thresholds,
    TuningState,
    decide_backend,
    decide_kernel,
    derive_thresholds,
)

__all__ = [
    "Thresholds",
    "Autotuner",
    "get_autotuner",
    "clear_cache",
    "autotune_enabled",
    "NEVER",
]


def autotune_enabled() -> bool:
    """Whether adaptive rerouting is on (``REPRO_AUTOTUNE`` != 0)."""
    return os.environ.get("REPRO_AUTOTUNE", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def _default_cache_path() -> Path:
    override = os.environ.get("REPRO_AUTOTUNE_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    host = platform.node() or "unknown-host"
    tag = f"py{sys.version_info.major}.{sys.version_info.minor}"
    return Path(base) / "repro" / f"autotune-{host}-{tag}.json"


def _best_time(fn: Callable[[], object], repeats: int = 3) -> float:
    """Min-of-repeats wall time; min rejects scheduler noise upward."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _probe_arrays(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaved sorted halves — worst case for galloping, neutral
    for the kernels under test, and free of RNG cost."""
    return (
        np.arange(0, n, 2, dtype=np.int64),
        np.arange(1, n, 2, dtype=np.int64),
    )


class Autotuner:
    """Lazily calibrated, persisted crossover thresholds for one host.

    ``thresholds()`` is the only consultation point: the first call
    loads the per-host cache (rejecting payloads whose host fingerprint
    no longer matches) or runs the probe suite (a few hundred
    milliseconds, once per host, best-effort — any probe failure falls
    back to conservative defaults and does not propagate).

    ``calibrate()`` and ``seed()`` are the *control surface*: the
    :class:`repro.control.Controller` drives them to re-tune a live
    process when the host changes or an SLO clause fails, instead of
    duplicating the one-shot cold-start probe.
    """

    def __init__(self, cache_path: Path | None = None) -> None:
        self._cache_path = cache_path
        self._lock = threading.Lock()
        self._thresholds: Thresholds | None = None
        #: Times a cache read found unparseable bytes (post-mortem
        #: evidence a writer skipped the atomic path or the disk lied).
        self.corrupt_loads = 0
        #: Optional :class:`repro.obs.MetricsRegistry`; when set, corrupt
        #: cache reads count into ``autotune.cache_corrupt`` there.
        self.metrics = None

    @property
    def cache_path(self) -> Path:
        return self._cache_path or _default_cache_path()

    def fingerprint(self) -> HostFingerprint:
        """The current host shape calibrations are keyed to."""
        return HostFingerprint.current()

    # -- persistence ---------------------------------------------------

    def _load(self) -> Thresholds | None:
        """Cached thresholds, or ``None`` when absent/corrupt/stale.

        A corrupt payload (truncated write, garbage bytes) is a cache
        miss that *also* bumps :attr:`corrupt_loads` and the
        ``autotune.cache_corrupt`` counter — recalibrating silently
        would hide a broken writer.
        """
        raw, state_str = load_json(self.cache_path)
        if state_str == "corrupt":
            self._note_corrupt()
            return None
        if state_str != "ok":
            return None
        try:
            state = TuningState.from_payload(raw)
        except (ValueError, KeyError, TypeError, AttributeError):
            self._note_corrupt()
            return None
        if not state.valid_for(self.fingerprint()):
            return None
        return replace(state.thresholds, source=f"cache:{self.cache_path}")

    def _note_corrupt(self) -> None:
        self.corrupt_loads += 1
        registry = self.metrics
        if registry is not None:
            registry.counter("autotune.cache_corrupt").inc()

    def cache_state(self) -> str:
        """``"absent"`` | ``"corrupt"`` | ``"stale"`` | ``"fresh"`` —
        for diagnostics."""
        _, state_str = load_json(self.cache_path)
        if state_str != "ok":
            return "absent" if state_str == "absent" else "corrupt"
        return "fresh" if self._load() is not None else "stale"

    def _store(self, th: Thresholds) -> None:
        try:
            payload = TuningState(
                thresholds=th, fingerprint=self.fingerprint()
            ).to_payload()
            atomic_write_json(self.cache_path, payload)
        except OSError:
            pass  # persistence is an optimization, never a requirement

    def clear(self) -> None:
        """Forget calibration in memory and on disk."""
        with self._lock:
            self._thresholds = None
            try:
                self.cache_path.unlink()
            except OSError:
                pass

    def forget(self) -> None:
        """Drop in-memory thresholds only; the disk cache survives.

        Test isolation wants seeded state gone between tests without
        destroying a developer's (or CI's) calibrated cache the way
        :meth:`clear` would; the next :meth:`thresholds` call simply
        reloads from disk or re-probes.
        """
        with self._lock:
            self._thresholds = None

    # -- calibration ---------------------------------------------------

    def calibrate(self) -> Thresholds:
        """Run the probe suite now and persist the result."""
        th = derive_thresholds(self.probe_suite())
        self._store(th)
        with self._lock:
            self._thresholds = th
        return th

    def thresholds(self) -> Thresholds:
        """Calibrated thresholds (fresh cache → probed → defaults)."""
        with self._lock:
            if self._thresholds is not None:
                return self._thresholds
        loaded = self._load()
        if loaded is not None:
            with self._lock:
                self._thresholds = loaded
            return loaded
        try:
            th = derive_thresholds(self.probe_suite())
            self._store(th)
        except Exception:  # noqa: BLE001 - probes are best-effort
            th = Thresholds(source="probe-failed")
        with self._lock:
            self._thresholds = th
        return th

    def probe_suite(self) -> ProbeSuite:
        """Time the crossover experiments; thresholds come from
        :func:`repro.execution.tuning.derive_thresholds` (pure)."""
        from ..core.parallel_merge import parallel_merge
        from ..core.sequential import merge_two_pointer, merge_vectorized
        from .pool import shared_backend

        p = min(4, os.cpu_count() or 1)

        # Probe 1: serial vectorized merge vs. pooled thread merge.
        serial_vs_parallel: list[tuple[int, float, float]] = []
        if p > 1:
            be = shared_backend("threads", p)
            be.run_tasks([lambda: None])  # warm the pool out of the timing
            for exp in (12, 14, 16, 18):
                n = 1 << exp
                a, b = _probe_arrays(n)
                t_serial = _best_time(
                    lambda: merge_vectorized(a, b, check=False))
                t_par = _best_time(
                    lambda: parallel_merge(a, b, p, backend=be, check=False))
                serial_vs_parallel.append((n, t_serial, t_par))
                if t_par < t_serial * SERIAL_MARGIN:
                    break  # crossover reached; no need to probe larger N

        # Probe 2: threads vs. processes at one substantial size.
        thread_vs_process: tuple[int, float, float] | None = None
        crossed = derive_thresholds(ProbeSuite(
            serial_vs_parallel=tuple(serial_vs_parallel)
        )).serial_cutover
        if p > 1 and crossed != NEVER:
            n = max(crossed, 1 << 17)
            a, b = _probe_arrays(n)
            try:
                pe = shared_backend("processes", p)
                pe.run_tasks([lambda: None])  # fork cost out of the timing
                te = shared_backend("threads", p)
                t_proc = _best_time(
                    lambda: parallel_merge(a, b, p, backend=pe, check=False),
                    repeats=2,
                )
                t_thr = _best_time(
                    lambda: parallel_merge(a, b, p, backend=te, check=False),
                    repeats=2,
                )
                thread_vs_process = (n, t_thr, t_proc)
            except Exception:  # noqa: BLE001 - sandboxes may forbid fork/shm
                thread_vs_process = None

        # Probe 3: two-pointer vs. vectorized on tiny segments.
        tiny_kernel: list[tuple[int, float, float]] = []
        for n in (8, 16, 32, 64, 128):
            a, b = _probe_arrays(n)
            t_tp = _best_time(
                lambda: merge_two_pointer(a, b, check=False), repeats=5)
            t_vec = _best_time(
                lambda: merge_vectorized(a, b, check=False), repeats=5)
            tiny_kernel.append((n, t_tp, t_vec))
            if t_vec <= t_tp:
                break

        return ProbeSuite(
            serial_vs_parallel=tuple(serial_vs_parallel),
            thread_vs_process=thread_vs_process,
            tiny_kernel=tuple(tiny_kernel),
        )

    # -- consultation --------------------------------------------------

    def choose_backend(self, name: str, n: int) -> str:
        """Best backend *name* for an N-element merge requested as
        ``name`` (pure policy: :func:`~repro.execution.tuning.decide_backend`)."""
        if not autotune_enabled() or name not in ("threads", "processes"):
            return name
        return decide_backend(self.thresholds(), name, n)

    def resolve_kernel(self, kernel: str, segment_length: int) -> str:
        """Resolve ``kernel="auto"`` for a given per-segment length."""
        if kernel != "auto":
            return kernel
        if not autotune_enabled():
            return "vectorized"
        return decide_kernel(self.thresholds(), kernel, segment_length)

    def seed(self, **overrides: int) -> None:
        """Pin thresholds without probing (tests, controller nudges)."""
        with self._lock:
            base = self._thresholds or Thresholds()
            self._thresholds = replace(
                base, **overrides, calibrated=True, source="seeded"
            )


_GLOBAL = Autotuner()


def get_autotuner() -> Autotuner:
    """The process-wide tuner consulted by the core entry points."""
    return _GLOBAL


def clear_cache() -> None:
    """Drop the process-wide tuner's calibration (memory + disk)."""
    _GLOBAL.clear()
