"""Adaptive crossover calibration for the merge/sort hot paths.

The paper's speedups assume p hardware threads and N large enough that
partitioning cost (p·log N probes) vanishes against merge work (N/p per
core).  On a real host neither is guaranteed: below some N the serial
vectorized kernel beats any fork/join, below some segment length the
pure-Python two-pointer loop beats numpy's ``searchsorted`` setup, and
the threads/processes choice depends on core count and fork cost.
Those crossover points are *host properties*, so we measure them once
per host with quick timing probes, persist them, and consult them on
every call made with a string backend name.

Policy knobs (all overridable by environment):

``REPRO_AUTOTUNE=0``
    Kill switch — no calibration, no rerouting; requested backends and
    kernels are used verbatim.
``REPRO_AUTOTUNE_CACHE=/path/file.json``
    Where calibrated thresholds persist (default
    ``~/.cache/repro/autotune-<host>-py<maj>.<min>.json``).

The tuner only ever *reroutes, never changes semantics*: results are
bit-identical whichever backend or kernel runs, because every kernel
implements the same stable merge and every backend executes the same
disjoint-slice tasks (Theorem 14).  Rerouting applies only when the
caller passed a backend *name* (an explicit ``Backend`` instance is a
deliberate choice) and only for untraced calls (a traced run is a
measurement of the requested configuration, not a request for speed).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = [
    "Thresholds",
    "Autotuner",
    "get_autotuner",
    "clear_cache",
    "autotune_enabled",
    "NEVER",
]

#: Sentinel threshold meaning "this crossover is never reached".
NEVER = 1 << 62


@dataclass(frozen=True, slots=True)
class Thresholds:
    """Calibrated crossover points, all in total output elements ``N``.

    ``serial_cutover``
        Below this N, rerun pooled-backend requests on the serial
        backend — fork/join overhead exceeds the merge itself.
    ``process_cutover``
        At or above this N, prefer processes over threads (GIL-bound
        hosts); :data:`NEVER` disables the promotion.
    ``tiny_kernel_cutover``
        Below this *segment* length, the two-pointer loop beats the
        vectorized kernel's numpy setup cost (``kernel="auto"`` only).
    """

    serial_cutover: int = 4096
    process_cutover: int = NEVER
    tiny_kernel_cutover: int = 16
    calibrated: bool = False
    source: str = "default"


def autotune_enabled() -> bool:
    """Whether adaptive rerouting is on (``REPRO_AUTOTUNE`` != 0)."""
    return os.environ.get("REPRO_AUTOTUNE", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def _default_cache_path() -> Path:
    override = os.environ.get("REPRO_AUTOTUNE_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    host = platform.node() or "unknown-host"
    tag = f"py{sys.version_info.major}.{sys.version_info.minor}"
    return Path(base) / "repro" / f"autotune-{host}-{tag}.json"


def _best_time(fn: Callable[[], object], repeats: int = 3) -> float:
    """Min-of-repeats wall time; min rejects scheduler noise upward."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _probe_arrays(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaved sorted halves — worst case for galloping, neutral
    for the kernels under test, and free of RNG cost."""
    return (
        np.arange(0, n, 2, dtype=np.int64),
        np.arange(1, n, 2, dtype=np.int64),
    )


class Autotuner:
    """Lazily calibrated, persisted crossover thresholds for one host.

    ``thresholds()`` is the only consultation point: the first call
    loads the per-host cache or runs the probe suite (a few hundred
    milliseconds, once per host, best-effort — any probe failure falls
    back to conservative defaults and does not propagate).
    """

    def __init__(self, cache_path: Path | None = None) -> None:
        self._cache_path = cache_path
        self._lock = threading.Lock()
        self._thresholds: Thresholds | None = None

    @property
    def cache_path(self) -> Path:
        return self._cache_path or _default_cache_path()

    # -- persistence ---------------------------------------------------

    def _load(self) -> Thresholds | None:
        try:
            raw = json.loads(self.cache_path.read_text())
            return Thresholds(
                serial_cutover=int(raw["serial_cutover"]),
                process_cutover=int(raw["process_cutover"]),
                tiny_kernel_cutover=int(raw["tiny_kernel_cutover"]),
                calibrated=bool(raw.get("calibrated", True)),
                source=f"cache:{self.cache_path}",
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _store(self, th: Thresholds) -> None:
        try:
            path = self.cache_path
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = asdict(th)
            payload["source"] = "probe"
            path.write_text(json.dumps(payload, indent=2) + "\n")
        except OSError:
            pass  # persistence is an optimization, never a requirement

    def clear(self) -> None:
        """Forget calibration in memory and on disk."""
        with self._lock:
            self._thresholds = None
            try:
                self.cache_path.unlink()
            except OSError:
                pass

    # -- calibration ---------------------------------------------------

    def calibrate(self) -> Thresholds:
        """Run the probe suite now and persist the result."""
        th = self._probe()
        self._store(th)
        with self._lock:
            self._thresholds = th
        return th

    def thresholds(self) -> Thresholds:
        """Calibrated thresholds (cached → probed → defaults)."""
        with self._lock:
            if self._thresholds is not None:
                return self._thresholds
        loaded = self._load()
        if loaded is not None:
            with self._lock:
                self._thresholds = loaded
            return loaded
        try:
            th = self._probe()
            self._store(th)
        except Exception:  # noqa: BLE001 - probes are best-effort
            th = Thresholds(source="probe-failed")
        with self._lock:
            self._thresholds = th
        return th

    def _probe(self) -> Thresholds:
        from ..core.parallel_merge import parallel_merge
        from ..core.sequential import merge_two_pointer, merge_vectorized
        from .pool import shared_backend

        p = min(4, os.cpu_count() or 1)

        # Crossover 1: serial vectorized merge vs. pooled thread merge.
        serial_cutover = NEVER
        if p > 1:
            be = shared_backend("threads", p)
            be.run_tasks([lambda: None])  # warm the pool out of the timing
            for exp in (12, 14, 16, 18):
                n = 1 << exp
                a, b = _probe_arrays(n)
                t_serial = _best_time(
                    lambda: merge_vectorized(a, b, check=False))
                t_par = _best_time(
                    lambda: parallel_merge(a, b, p, backend=be, check=False))
                if t_par < t_serial * 0.95:
                    serial_cutover = n
                    break

        # Crossover 2: threads vs. processes at one substantial size.
        process_cutover = NEVER
        if p > 1 and serial_cutover != NEVER:
            n = max(serial_cutover, 1 << 17)
            a, b = _probe_arrays(n)
            try:
                pe = shared_backend("processes", p)
                pe.run_tasks([lambda: None])  # fork cost out of the timing
                te = shared_backend("threads", p)
                t_proc = _best_time(
                    lambda: parallel_merge(a, b, p, backend=pe, check=False),
                    repeats=2,
                )
                t_thr = _best_time(
                    lambda: parallel_merge(a, b, p, backend=te, check=False),
                    repeats=2,
                )
                if t_proc < t_thr * 0.9:
                    process_cutover = n
            except Exception:  # noqa: BLE001 - sandboxes may forbid fork/shm
                process_cutover = NEVER

        # Crossover 3: two-pointer vs. vectorized on tiny segments.
        tiny_kernel_cutover = 0
        for n in (8, 16, 32, 64, 128):
            a, b = _probe_arrays(n)
            t_tp = _best_time(
                lambda: merge_two_pointer(a, b, check=False), repeats=5)
            t_vec = _best_time(
                lambda: merge_vectorized(a, b, check=False), repeats=5)
            if t_vec <= t_tp:
                tiny_kernel_cutover = n
                break
        else:
            tiny_kernel_cutover = 128

        return Thresholds(
            serial_cutover=serial_cutover,
            process_cutover=process_cutover,
            tiny_kernel_cutover=tiny_kernel_cutover,
            calibrated=True,
            source="probe",
        )

    # -- consultation --------------------------------------------------

    def choose_backend(self, name: str, n: int) -> str:
        """Best backend *name* for an N-element merge requested as ``name``.

        Only the pooled names are ever rerouted, and only downward to
        ``serial`` (below the fork/join crossover) or across from
        ``threads`` to ``processes`` (above the GIL crossover).
        """
        if not autotune_enabled() or name not in ("threads", "processes"):
            return name
        th = self.thresholds()
        if n < th.serial_cutover:
            return "serial"
        if name == "threads" and n >= th.process_cutover:
            return "processes"
        return name

    def resolve_kernel(self, kernel: str, segment_length: int) -> str:
        """Resolve ``kernel="auto"`` for a given per-segment length."""
        if kernel != "auto":
            return kernel
        if not autotune_enabled():
            return "vectorized"
        th = self.thresholds()
        return (
            "two_pointer"
            if segment_length < th.tiny_kernel_cutover
            else "vectorized"
        )

    def seed(self, **overrides: int) -> None:
        """Pin thresholds without probing (tests, reproducible runs)."""
        with self._lock:
            base = self._thresholds or Thresholds()
            self._thresholds = replace(
                base, **overrides, calibrated=True, source="seeded"
            )


_GLOBAL = Autotuner()


def get_autotuner() -> Autotuner:
    """The process-wide tuner consulted by the core entry points."""
    return _GLOBAL


def clear_cache() -> None:
    """Drop the process-wide tuner's calibration (memory + disk)."""
    _GLOBAL.clear()
