"""The batched execution engine: one dispatch per phase, not per pair.

Before this module, ``parallel_merge_sort`` dispatched each pair of a
merge round separately — ``pairs`` fork/join barriers per round,
``O(p · log N)`` backend dispatches per sort call.  Since every segment
task of a round is independent of every other (disjoint output slices
across pairs *and* within them — Theorem 14), the whole round is one
logical fork/join: gather all segments of all pairs into a single
:class:`~repro.backends.TaskBatch`, submit once, barrier once.  That is
how GPU merge-path implementations launch a round (one grid, all
blocks), and it drops dispatch count to ``O(log N)`` per sort call.

Two helpers constitute the engine:

:func:`run_merge_round`
    All pairs of one round → one batch.  An odd run out is carried to
    the next round *at zero dispatch cost* (it used to ride along as
    either a degenerate 1-task batch or an extra list pass).
:func:`run_chunk_sorts`
    Round 0 (the per-processor local sorts) → one batch; on the process
    backend the array is staged once in shared memory
    (:class:`~repro.execution.arena.ChunkSortArena`) so chunk data is
    not pickled.

Both route through :meth:`Backend.run_batch`, so every round shows up
as one ``exec.batch`` span and one tick of the ``dispatches`` counter —
which is exactly what the ``exec.dispatches_per_call`` metric audits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..backends import Backend, TaskBatch
from ..backends.processes import ProcessBackend
from ..obs.tracer import NULL_SPAN
from ..types import MergeStats
from ..core.merge_path import partition_merge_path
from ..core.sequential import merge_into, result_dtype
from .arena import ChunkSortArena, RoundArena
from .autotune import get_autotuner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry, Tracer

__all__ = ["run_merge_round", "run_chunk_sorts"]


def _innermost(backend: Backend) -> Backend:
    """Unwrap resilience/fault wrappers to find the executing backend."""
    seen: set[int] = set()
    be = backend
    while id(be) not in seen:
        seen.add(id(be))
        inner = getattr(be, "inner", None)
        if not isinstance(inner, Backend):
            break
        be = inner
    return be


def _publish_times(metrics: "MetricsRegistry | None", results) -> None:
    if metrics is None or not results:
        return
    times = [r.elapsed_s for r in results]
    mean = sum(times) / len(times)
    if mean > 0:
        metrics.gauge("balance.task_time_imbalance").set(max(times) / mean)


def run_merge_round(
    runs: Sequence[np.ndarray],
    procs_per_pair: int,
    *,
    backend: Backend,
    kernel: str = "vectorized",
    stats: MergeStats | None = None,
    trace: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    round_index: int = 1,
) -> list[np.ndarray]:
    """Merge adjacent pairs of ``runs`` in **one** batched dispatch.

    Partitions every pair with Algorithm 1 (``procs_per_pair`` segments
    each), fuses all segment tasks into a single
    :class:`~repro.backends.TaskBatch`, and returns the next round's
    runs.  An odd trailing run is carried over untouched — it costs no
    task and no dispatch.

    On an (innermost) process backend with no tracer the round is staged
    through a :class:`RoundArena`: two shared-memory blocks for the
    whole round, picklable offset jobs, still one dispatch.
    """
    if len(runs) < 2:
        return list(runs)
    pairs = [(runs[i], runs[i + 1]) for i in range(0, len(runs) - 1, 2)]
    tail = runs[-1] if len(runs) % 2 else None

    partitions = [
        partition_merge_path(
            a, b, procs_per_pair, check=False, stats=stats, tracer=trace
        )
        for a, b in pairs
    ]
    if metrics is not None:
        metrics.counter("merge.segments").inc(sum(
            1 for part in partitions for s in part.segments if s.length > 0
        ))
        metrics.gauge("balance.work_spread").set(
            max(part.max_imbalance for part in partitions)
        )

    seg_hint = max(1, max(p.total_length for p in partitions) // procs_per_pair)
    resolved_kernel = get_autotuner().resolve_kernel(kernel, seg_hint)
    meta = {"round": round_index, "pairs": len(pairs),
            "procs_per_pair": procs_per_pair}

    if trace is None and isinstance(_innermost(backend), ProcessBackend):
        with RoundArena(
            [(a, b, part) for (a, b), part in zip(pairs, partitions)]
        ) as arena:
            results = backend.run_batch(
                TaskBatch(arena.tasks(), label="sort.round", meta=meta)
            )
            _publish_times(metrics, results)
            merged = arena.results()
        if tail is not None:
            merged.append(tail)
        return merged

    outs = [
        np.empty(part.total_length, dtype=result_dtype(a, b))
        for (a, b), part in zip(pairs, partitions)
    ]
    per_task_stats: list[MergeStats | None] = []
    tasks = []

    def make_task(a, b, out, seg, seg_stats, worker):
        def task() -> None:
            span = (
                trace.span(
                    "segment.merge",
                    index=seg.index, worker=worker, round=round_index,
                    a_start=seg.a_start, a_end=seg.a_end,
                    b_start=seg.b_start, b_end=seg.b_end,
                    out_start=seg.out_start, out_end=seg.out_end,
                    length=seg.length,
                )
                if trace is not None
                else NULL_SPAN
            )
            with span:
                merge_into(
                    out[seg.out_start:seg.out_end],
                    a[seg.a_start:seg.a_end],
                    b[seg.b_start:seg.b_end],
                    kernel=resolved_kernel,
                    stats=seg_stats,
                )
                if seg_stats is not None:
                    span.set(comparisons=seg_stats.comparisons,
                             moves=seg_stats.moves)

        return task

    for pair_idx, ((a, b), part, out) in enumerate(zip(pairs, partitions, outs)):
        for seg in part.segments:
            if seg.length == 0:
                continue
            seg_stats = MergeStats() if stats is not None else None
            per_task_stats.append(seg_stats)
            tasks.append(make_task(
                a, b, out, seg, seg_stats,
                worker=pair_idx * procs_per_pair + seg.index,
            ))

    results = backend.run_batch(
        TaskBatch(tasks, label="sort.round", meta=meta)
    )
    _publish_times(metrics, results)
    if stats is not None:
        for st in per_task_stats:
            if st is not None:
                stats.merge(st)
    if tail is not None:
        outs.append(tail)
    return outs


def run_chunk_sorts(
    arr: np.ndarray,
    chunks: int,
    *,
    backend: Backend,
    base_sort: str = "numpy",
    sort_chunk=None,
    trace: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> list[np.ndarray]:
    """Round 0 of the sort: every chunk's local sort as one batch.

    ``sort_chunk`` is the per-chunk callable (defaults to a stable numpy
    sort).  On an (innermost) untraced process backend with the default
    numpy sort the chunks are staged through a
    :class:`ChunkSortArena` — previously round 0 on processes required
    pickling every chunk's data through closure tasks.
    """
    n = len(arr)
    chunks = min(chunks, n)
    bounds = [(k * n) // chunks for k in range(chunks + 1)]

    if (
        trace is None
        and sort_chunk is None
        and base_sort == "numpy"
        and isinstance(_innermost(backend), ProcessBackend)
    ):
        with ChunkSortArena(arr, bounds) as arena:
            results = backend.run_batch(
                TaskBatch(arena.tasks(), label="sort.chunks",
                          meta={"round": 0, "chunks": chunks})
            )
            _publish_times(metrics, results)
            return arena.results()

    if sort_chunk is None:
        def sort_chunk(chunk: np.ndarray) -> np.ndarray:
            return np.sort(chunk, kind="mergesort")

    views = [arr[lo:hi] for lo, hi in zip(bounds, bounds[1:]) if hi > lo]

    def make_task(idx: int, chunk: np.ndarray):
        def task() -> np.ndarray:
            span = (
                trace.span("sort.chunk", index=idx, worker=idx,
                           length=len(chunk))
                if trace is not None
                else NULL_SPAN
            )
            with span:
                return sort_chunk(chunk)

        return task

    results = backend.run_batch(
        TaskBatch(
            [make_task(i, c) for i, c in enumerate(views)],
            label="sort.chunks", meta={"round": 0, "chunks": len(views)},
        )
    )
    _publish_times(metrics, results)
    ordered = sorted(results, key=lambda r: r.index)
    return [r.value for r in ordered]
