"""Process-wide shared backend instances for string-named backends.

Before the batched execution engine, every entry point invoked with a
backend *name* (``parallel_merge(a, b, 4, backend="threads")``)
constructed a fresh backend — and therefore a fresh worker pool — and
tore it down at the end of the call.  At the paper's Xeon scale that
cost amortizes away; at the small/medium sizes of the bench grid it
*dominates* (pool construction is tens of microseconds to milliseconds,
comparable to the whole merge).

This module keeps one live backend per ``(name, max_workers)`` key for
the lifetime of the process.  Pools are created lazily by the backends
themselves, reused by every call, and shut down once at interpreter
exit (or explicitly via :func:`close_shared_backends`, which the test
suite uses for isolation).

Only the pooled builtin backends are cached — ``serial``, ``threads``
and ``processes``.  Exotic names (``simulated``, ``mpi``) keep the old
construct-per-call behavior since their instances carry per-call state
or unavailability semantics.
"""

from __future__ import annotations

import atexit
import threading

from ..backends import Backend, get_backend

__all__ = ["shared_backend", "close_shared_backends", "is_shared", "POOLED_BACKENDS"]

#: Names eligible for process-wide caching.
POOLED_BACKENDS = ("serial", "threads", "processes")

_LOCK = threading.Lock()
_CACHE: dict[tuple[str, int | None], Backend] = {}


def shared_backend(name: str, max_workers: int | None = None) -> Backend:
    """Return the process-wide backend for ``(name, max_workers)``.

    The returned instance must **not** be closed by the caller; its
    lifetime is owned by this module.  Raises the same errors as
    :func:`repro.backends.get_backend` for unknown names.
    """
    if name not in POOLED_BACKENDS:
        return get_backend(name, max_workers=max_workers)
    key = (name, max_workers)
    with _LOCK:
        be = _CACHE.get(key)
        if be is None:
            be = get_backend(name, max_workers=max_workers)
            _CACHE[key] = be
        return be


def is_shared(backend: Backend) -> bool:
    """Whether ``backend`` is one of the cached shared instances."""
    with _LOCK:
        return any(be is backend for be in _CACHE.values())


def close_shared_backends() -> None:
    """Shut down and forget every cached backend (test isolation hook)."""
    with _LOCK:
        backends = list(_CACHE.values())
        _CACHE.clear()
    for be in backends:
        be.close()


atexit.register(close_shared_backends)
