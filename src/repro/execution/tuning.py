"""Pure tuning policy: probe samples in, routing decisions out.

This module is the *policy* half of the autotuner split.  Everything
here is a pure function of its inputs — no clocks, no filesystem, no
environment reads except the explicit ``environ`` parameters — so the
cold-start path (:class:`repro.execution.autotune.Autotuner`) and the
continuous controller (:class:`repro.control.Controller`) share exactly
one decision code path and tests can drive it with synthetic samples.

The split:

:class:`ProbeSuite`
    Raw timing observations — what the IO layer measures.
:func:`derive_thresholds`
    ``ProbeSuite`` → :class:`Thresholds` (the crossover rules).
:func:`decide_backend` / :func:`decide_kernel`
    ``Thresholds`` + request → routing decision (what every entry
    point consults per call).
:class:`HostFingerprint` / :class:`TuningState`
    What the cache file stores, and when it is stale: thresholds are
    *host properties*, so a calibration made on a different host shape
    (cpu count, python build, ``REPRO_*`` overrides) must not be
    reused.  Load average is deliberately **not** part of the equality
    check — it changes by the second; the controller watches it live
    instead (see :mod:`repro.control`).
"""

from __future__ import annotations

import os
import platform
from dataclasses import dataclass

__all__ = [
    "NEVER",
    "Thresholds",
    "ProbeSuite",
    "HostFingerprint",
    "TuningState",
    "derive_thresholds",
    "decide_backend",
    "decide_kernel",
    "tuning_env",
]

#: Sentinel threshold meaning "this crossover is never reached".
NEVER = 1 << 62

#: A parallel probe must beat serial by this factor to flip the serial
#: crossover (hysteresis against timer noise).
SERIAL_MARGIN = 0.95
#: Processes must beat threads by this factor to earn the promotion.
PROCESS_MARGIN = 0.9


@dataclass(frozen=True, slots=True)
class Thresholds:
    """Calibrated crossover points, all in total output elements ``N``.

    ``serial_cutover``
        Below this N, rerun pooled-backend requests on the serial
        backend — fork/join overhead exceeds the merge itself.
    ``process_cutover``
        At or above this N, prefer processes over threads (GIL-bound
        hosts); :data:`NEVER` disables the promotion.
    ``tiny_kernel_cutover``
        Below this *segment* length, the two-pointer loop beats the
        vectorized kernel's numpy setup cost (``kernel="auto"`` only).
    """

    serial_cutover: int = 4096
    process_cutover: int = NEVER
    tiny_kernel_cutover: int = 16
    calibrated: bool = False
    source: str = "default"


@dataclass(frozen=True, slots=True)
class ProbeSuite:
    """Raw timing observations from one calibration run.

    ``serial_vs_parallel``
        ``(n, t_serial_s, t_parallel_s)`` rows, ascending ``n``.
    ``thread_vs_process``
        One ``(n, t_threads_s, t_processes_s)`` row, or ``None`` when
        the process backend was unavailable (sandboxes).
    ``tiny_kernel``
        ``(n, t_two_pointer_s, t_vectorized_s)`` rows, ascending ``n``.
    """

    serial_vs_parallel: tuple[tuple[int, float, float], ...] = ()
    thread_vs_process: tuple[int, float, float] | None = None
    tiny_kernel: tuple[tuple[int, float, float], ...] = ()


def derive_thresholds(suite: ProbeSuite) -> Thresholds:
    """Crossover rules, as a pure function of measured timings.

    The serial cutover is the smallest probed N where the parallel run
    beat serial by :data:`SERIAL_MARGIN`; the process cutover is set
    only when processes beat threads by :data:`PROCESS_MARGIN` at the
    probed size; the tiny-kernel cutover is the smallest segment length
    where the vectorized kernel caught up with the two-pointer loop
    (the largest probed length when it never did).
    """
    serial_cutover = NEVER
    for n, t_serial, t_par in suite.serial_vs_parallel:
        if t_par < t_serial * SERIAL_MARGIN:
            serial_cutover = n
            break

    process_cutover = NEVER
    if suite.thread_vs_process is not None:
        n, t_thr, t_proc = suite.thread_vs_process
        if t_proc < t_thr * PROCESS_MARGIN:
            process_cutover = n

    tiny_kernel_cutover = 0
    for n, t_tp, t_vec in suite.tiny_kernel:
        tiny_kernel_cutover = n
        if t_vec <= t_tp:
            break

    return Thresholds(
        serial_cutover=serial_cutover,
        process_cutover=process_cutover,
        tiny_kernel_cutover=tiny_kernel_cutover,
        calibrated=True,
        source="probe",
    )


def decide_backend(
    th: Thresholds, name: str, n: int, *, enabled: bool = True
) -> str:
    """Best backend *name* for an N-element merge requested as ``name``.

    Only the pooled names are ever rerouted, and only downward to
    ``serial`` (below the fork/join crossover) or across from
    ``threads`` to ``processes`` (above the GIL crossover).
    """
    if not enabled or name not in ("threads", "processes"):
        return name
    if n < th.serial_cutover:
        return "serial"
    if name == "threads" and n >= th.process_cutover:
        return "processes"
    return name


def decide_kernel(
    th: Thresholds, kernel: str, segment_length: int, *, enabled: bool = True
) -> str:
    """Resolve ``kernel="auto"`` for a given per-segment length."""
    if kernel != "auto":
        return kernel
    if not enabled:
        return "vectorized"
    return (
        "two_pointer"
        if segment_length < th.tiny_kernel_cutover
        else "vectorized"
    )


# ---------------------------------------------------------------------------
# Host fingerprinting (cache-staleness policy)
# ---------------------------------------------------------------------------

def tuning_env(environ: dict[str, str] | None = None) -> tuple[tuple[str, str], ...]:
    """The ``REPRO_*`` overrides that shape tuning decisions, sorted.

    A calibration made under ``REPRO_AUTOTUNE=0`` or a custom cache
    path is a different experiment; changing any ``REPRO_*`` variable
    therefore invalidates the cache.
    """
    env = os.environ if environ is None else environ
    return tuple(sorted(
        (k, v) for k, v in env.items() if k.startswith("REPRO_")
    ))


@dataclass(frozen=True, slots=True)
class HostFingerprint:
    """The stable host shape a calibration is valid for.

    Equality of fingerprints is the cache-reuse criterion: same cpu
    count, same python build, same machine architecture, same
    ``REPRO_*`` overrides.  (Load average is a live signal, not part of
    identity — see the module docstring.)
    """

    cpu_count: int
    python: str
    machine: str
    env: tuple[tuple[str, str], ...] = ()

    @classmethod
    def current(cls, environ: dict[str, str] | None = None) -> "HostFingerprint":
        build, _date = platform.python_build()
        return cls(
            cpu_count=os.cpu_count() or 1,
            python=f"{platform.python_version()} {build}",
            machine=platform.machine() or "unknown",
            env=tuning_env(environ),
        )

    def to_dict(self) -> dict:
        return {
            "cpu_count": self.cpu_count,
            "python": self.python,
            "machine": self.machine,
            "env": {k: v for k, v in self.env},
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "HostFingerprint":
        return cls(
            cpu_count=int(raw["cpu_count"]),
            python=str(raw["python"]),
            machine=str(raw["machine"]),
            env=tuple(sorted(
                (str(k), str(v)) for k, v in dict(raw.get("env", {})).items()
            )),
        )


@dataclass(frozen=True, slots=True)
class TuningState:
    """What the autotune cache persists: thresholds + their provenance."""

    thresholds: Thresholds
    fingerprint: HostFingerprint | None = None

    def valid_for(self, fp: HostFingerprint) -> bool:
        """Whether this calibration may be reused on host ``fp``.

        Legacy payloads without a fingerprint are treated as stale —
        they may have been calibrated on any host shape.
        """
        return self.fingerprint is not None and self.fingerprint == fp

    def to_payload(self) -> dict:
        payload = {
            "serial_cutover": self.thresholds.serial_cutover,
            "process_cutover": self.thresholds.process_cutover,
            "tiny_kernel_cutover": self.thresholds.tiny_kernel_cutover,
            "calibrated": self.thresholds.calibrated,
            "source": "probe",
        }
        if self.fingerprint is not None:
            payload["fingerprint"] = self.fingerprint.to_dict()
        return payload

    @classmethod
    def from_payload(cls, raw: dict) -> "TuningState":
        """Parse a cache payload; raises ``KeyError``/``ValueError``/
        ``TypeError`` on malformed documents (the IO layer treats any
        of those as "no cache")."""
        th = Thresholds(
            serial_cutover=int(raw["serial_cutover"]),
            process_cutover=int(raw["process_cutover"]),
            tiny_kernel_cutover=int(raw["tiny_kernel_cutover"]),
            calibrated=bool(raw.get("calibrated", True)),
            source="cache",
        )
        fp = None
        if isinstance(raw.get("fingerprint"), dict):
            fp = HostFingerprint.from_dict(raw["fingerprint"])
        return cls(thresholds=th, fingerprint=fp)
