"""Experiment runners — one per paper table/figure (see DESIGN.md §5).

Each module exposes ``run(...) -> ExperimentResult`` with two scales:
the default parameters finish in seconds (CI-friendly); ``full=True``
uses the paper's sizes (Figure 5's 1M–256M arrays run through the
counted/analytic path, so even full scale is minutes, not hours).

Use :func:`repro.experiments.registry.get_experiment` /
``python -m repro <EXP_ID>`` to run by id.
"""

from .registry import EXPERIMENTS, get_experiment, run_experiment
from . import (
    fig5_speedup,
    hypercore,
    overhead,
    partition_cost,
    complexity_fit,
    load_balance,
    cache_misses,
    sort_scaling,
)

__all__ = [
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "fig5_speedup",
    "hypercore",
    "overhead",
    "partition_cost",
    "complexity_fit",
    "load_balance",
    "cache_misses",
    "sort_scaling",
]
