"""SPM — Section IV: cache behaviour of basic vs segmented parallel merge.

The paper's claim: when the arrays dwarf the (shared) cache, the basic
parallel merge's p concurrent streams thrash it, while Algorithm 2
confines the live working set to ~3L = C elements, so misses collapse
to the compulsory minimum (every line fetched once).  The authors could
not measure this end to end (incomplete Hypercore prototype); we run
the exact access traces through the cache simulator instead.

Reported per configuration:

* DRAM accesses per kilo-access for sequential, basic parallel, and
  segmented parallel merges on a small shared cache
  (Hypercore-like machine);
* the compulsory-miss floor (total distinct lines touched), to show SPM
  sits on it;
* the 3-way associativity check: SPM's miss count with a 3-way cache of
  capacity C vs fully associative — the paper's remark that 3 ways
  suffice to avoid collisions between the three L-sized streams.
"""

from __future__ import annotations

from ..cache.set_assoc import ReplacementPolicy, SetAssociativeCache
from ..cache.trace import AddressMap
from ..cache.traced_merge import (
    trace_parallel_merge,
    trace_segmented_merge,
    trace_sequential_merge,
)
from ..core.segmented_merge import block_length
from ..machine.specs import hypercore_like
from ..types import ExperimentResult
from ..workloads.generators import sorted_uniform_ints

__all__ = ["run"]


def _compulsory_lines(n_per_array: int, element_bytes: int, line_bytes: int) -> int:
    """Distinct cache lines across A, B and S (each touched >= once)."""
    per_arr = (n_per_array * element_bytes + line_bytes - 1) // line_bytes
    out = (2 * n_per_array * element_bytes + line_bytes - 1) // line_bytes
    return 2 * per_arr + out


def run(
    *,
    n_per_array: int = 1 << 14,
    p: int = 8,
    p_sweep: tuple[int, ...] = (2, 4, 8, 16),
    cache_elements: int = 1 << 10,
    seed: int = 31,
) -> ExperimentResult:
    """Replay merge traces through a small shared cache."""
    spec = hypercore_like()
    element_bytes = 4
    a = sorted_uniform_ints(n_per_array, seed)
    b = sorted_uniform_ints(n_per_array, seed + 1)
    amap = AddressMap(
        {"A": len(a), "B": len(b), "S": len(a) + len(b)},
        element_bytes=element_bytes,
    )
    # Shared-cache machine: model the shared cache as every core's L1
    # (that is the Hypercore shape), sized to cache_elements.
    cache_bytes = cache_elements * element_bytes
    L = block_length(cache_elements)

    result = ExperimentResult(
        exp_id="SPM",
        title="Cache misses: basic parallel merge vs Segmented Parallel "
        "Merge (paper Section IV)",
        columns=[
            "algorithm",
            "p",
            "accesses",
            "dram_fills",
            "dram_per_kilo",
            "vs_compulsory",
        ],
    )
    compulsory = _compulsory_lines(n_per_array, element_bytes, spec.line_bytes)

    traces = {
        "sequential": (trace_sequential_merge(a, b), 1),
        "parallel_basic": (trace_parallel_merge(a, b, p), p),
        "segmented_SPM": (trace_segmented_merge(a, b, p, L), p),
    }
    for name, (trace, cores) in traces.items():
        stats = _replay_shared(trace, amap, cache_bytes, spec.line_bytes, assoc=16)
        result.add_row(
            algorithm=name,
            p=cores,
            accesses=stats["accesses"],
            dram_fills=stats["misses"],
            dram_per_kilo=round(1000 * stats["misses"] / stats["accesses"], 2),
            vs_compulsory=round(stats["misses"] / compulsory, 2),
        )

    # Associativity ablation (paper: 3 ways suffice for SPM; the basic
    # merge's p distant stream triples keep conflicting regardless).
    for name in ("parallel_basic", "segmented_SPM"):
        for assoc in (1, 2, 3, 4):
            stats = _replay_shared(
                traces[name][0], amap, cache_bytes, spec.line_bytes, assoc=assoc
            )
            result.add_row(
                algorithm=f"{name}/{assoc}-way",
                p=p,
                accesses=stats["accesses"],
                dram_fills=stats["misses"],
                dram_per_kilo=round(1000 * stats["misses"] / stats["accesses"], 2),
                vs_compulsory=round(stats["misses"] / compulsory, 2),
            )

    # Core-count sweep: the paper's point that SPM's working set is
    # p-independent (always ~3L), while the basic merge's grows with p.
    for sweep_p in p_sweep:
        for name, trace in (
            ("parallel_basic", trace_parallel_merge(a, b, sweep_p)),
            ("segmented_SPM", trace_segmented_merge(a, b, sweep_p, L)),
        ):
            stats = _replay_shared(
                trace, amap, cache_bytes, spec.line_bytes, assoc=2
            )
            result.add_row(
                algorithm=f"{name}/2-way/p-sweep",
                p=sweep_p,
                accesses=stats["accesses"],
                dram_fills=stats["misses"],
                dram_per_kilo=round(1000 * stats["misses"] / stats["accesses"], 2),
                vs_compulsory=round(stats["misses"] / compulsory, 2),
            )

    # Prefetch study: the paper's Section VI reasoning for running the
    # *basic* algorithm on the Xeon ("we left this issue to the
    # hardware").  A sequential streamer hides the basic merge's misses
    # when the cache is large (the Xeon case: demand misses drop by
    # ~(degree+1)x toward zero) but *pollutes* a tiny shared cache (the
    # Hypercore case, where SPM is the right tool).
    from ..cache.prefetch import SequentialPrefetcher

    basic_trace = traces["parallel_basic"][0]
    for cache_label, pf_bytes in (
        ("small", cache_bytes),
        ("large", 64 * cache_bytes),
    ):
        for degree in (0, 2, 4):
            cache = SetAssociativeCache(
                pf_bytes, spec.line_bytes, 16, ReplacementPolicy.LRU
            )
            if degree == 0:
                demand_misses = 0
                for acc in basic_trace:
                    hit, _ = cache.access(
                        amap.byte_address(acc.array, acc.index), acc.write
                    )
                    demand_misses += not hit
                accesses = cache.stats.accesses
            else:
                pf = SequentialPrefetcher(cache, degree)
                for acc in basic_trace:
                    pf.access(
                        amap.byte_address(acc.array, acc.index), acc.write
                    )
                demand_misses = pf.stats.demand_misses
                accesses = pf.stats.demand_accesses
            result.add_row(
                algorithm=f"basic/{cache_label}-cache/prefetch-x{degree}",
                p=p,
                accesses=accesses,
                dram_fills=demand_misses,
                dram_per_kilo=round(1000 * demand_misses / accesses, 2),
                vs_compulsory=round(demand_misses / compulsory, 2),
            )

    result.notes.append(
        f"shared cache: {cache_elements} elements ({cache_bytes} B), "
        f"block L=C/3={L}; arrays {n_per_array} elements each; "
        f"compulsory floor {compulsory} line fills"
    )
    result.notes.append(
        "prefetch rows (dram_fills = demand misses only): a streamer "
        "hides the basic merge's misses — the paper's stated reason for "
        "benchmarking the basic algorithm on the prefetching Xeon — and "
        "deeper prefetch keeps helping on the large cache while it "
        "starts polluting the small one (x4 worse than x2); on "
        "prefetcher-less simple caches (Hypercore) SPM remains the tool"
    )
    result.notes.append(
        "expectation: SPM ~= compulsory floor at >=3-way associativity "
        "and stays there as p grows; basic parallel merge exceeds it "
        "(p concurrent distant streams) once arrays >> cache"
    )
    result.notes.append(
        "aside: basic/3-way can beat basic/4-way — 3-way gives a "
        "non-power-of-two set count, which de-aliases the power-of-two "
        "array strides; a real effect of odd-way caches, not noise"
    )
    return result


def _replay_shared(
    trace, amap: AddressMap, cache_bytes: int, line_bytes: int, assoc: int
) -> dict[str, int]:
    """Replay a trace against one shared cache (Hypercore shape)."""
    assoc = min(assoc, cache_bytes // line_bytes)
    cache = SetAssociativeCache(
        cache_bytes, line_bytes, assoc, ReplacementPolicy.LRU, "shared"
    )
    for acc in trace:
        cache.access(amap.byte_address(acc.array, acc.index), acc.write)
    return {"accesses": cache.stats.accesses, "misses": cache.stats.misses}
