"""COMPLEX — Section III complexity: T = O(N/p + log N), W = O(N + p log N).

Measures lockstep-PRAM (or counted, for larger N) cycle counts of
Algorithm 1 over an (N, p) grid and fits the Section III time model by
least squares.  The reproduction succeeds when

* the fit's R² is ≈ 1 (the model explains the measurements),
* the work column grows linearly in N with a ``p·log N`` ripple, i.e.
  work/N stays within a narrow band across p (the "negligible excess
  work" claim).
"""

from __future__ import annotations

from ..analysis.complexity import fit_merge_time_model
from ..pram.merge_programs import counted_parallel_merge
from ..types import ExperimentResult
from ..workloads.generators import sorted_uniform_ints

__all__ = ["run"]


def run(
    *,
    exponents: tuple[int, ...] = (10, 12, 14, 16),
    ps: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    seed: int = 17,
) -> ExperimentResult:
    """Fit measured Algorithm-1 cycles to ``c1·N/p + c2·log2 N + c0``."""
    ns: list[int] = []
    pls: list[int] = []
    times: list[float] = []
    works: list[int] = []
    for e in exponents:
        half = 1 << (e - 1)
        a = sorted_uniform_ints(half, seed + e)
        b = sorted_uniform_ints(half, seed + e + 100)
        for p in ps:
            counted = counted_parallel_merge(a, b, p)
            ns.append(1 << e)
            pls.append(p)
            times.append(float(counted.time))
            works.append(counted.work)

    fit = fit_merge_time_model(ns, pls, times)

    result = ExperimentResult(
        exp_id="COMPLEX",
        title="Time/work complexity of Algorithm 1 vs Section III model",
        columns=["N", "p", "time_cycles", "model_pred", "work_cycles", "work_per_N"],
    )
    for n, p, t, w in zip(ns, pls, times, works):
        result.add_row(
            N=n,
            p=p,
            time_cycles=int(t),
            model_pred=round(fit.predict(n, p), 1),
            work_cycles=w,
            work_per_N=round(w / n, 3),
        )
    result.notes.append(
        f"fit T = {fit.c_linear:.3f}·(N/p) + {fit.c_log:.2f}·log2(N) "
        f"+ {fit.c_const:.2f};  R² = {fit.r_squared:.5f}, "
        f"max relative residual = {fit.max_rel_residual:.3%}"
    )
    result.notes.append(
        "paper model: O(N/p + log N) time, O(N + p·log N) work; "
        "work_per_N must stay in a narrow band (2..4 cycles/element) "
        "across all p"
    )
    return result
