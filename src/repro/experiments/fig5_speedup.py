"""FIG5 — Figure 5: speedup of basic Merge Path vs thread count.

The paper's only measured artifact: bar chart of speedup for per-array
sizes 1M/4M/16M/64M/256M (mega-elements) at 1..12 threads on the Dell
T610, baseline = Merge Path with one thread.  Headline numbers: near-
linear scaling, ≈11.7× at 12 threads, slightly lower for the largest
arrays.

Reproduction: the analytic timing model over the Dell T610 spec
(DESIGN.md §3 documents why this substitution is sound — every input to
the model except sustained DRAM bandwidth is a paper constant or an
exact operation count).  Two refinements are available:

* ``counted=True`` additionally runs the exact per-processor operation
  counter (:func:`repro.pram.merge_programs.counted_parallel_merge`) on
  a size-scaled workload and uses its max-processor cycles instead of
  the balanced ideal — demonstrating the partition's perfect balance
  carries through end to end.  (Scaled because counting is O(N) Python;
  the balance result is size-independent, Corollary 7.)
* ``wallclock=True`` appends measured wall-clock speedups of the real
  thread backend on this host — meaningful only on multi-core hosts,
  reported for completeness.
"""

from __future__ import annotations

import time

from ..analysis.speedup import serial_fraction_from_speedup
from ..core.parallel_merge import parallel_merge
from ..machine.specs import dell_t610
from ..machine.timing import TimingModel
from ..pram.merge_programs import counted_parallel_merge
from ..types import ExperimentResult
from ..workloads.generators import sorted_uniform_ints

__all__ = ["run", "PAPER_SIZES_M", "PAPER_THREADS"]

#: Per-array element counts of Figure 5, in mega-elements.
PAPER_SIZES_M = (1, 4, 16, 64, 256)
#: Thread counts reported (the paper sweeps 1..12; bars read at these).
PAPER_THREADS = (1, 2, 4, 6, 8, 10, 12)

#: Reference values read off Figure 5 for EXPERIMENTS.md comparison.
PAPER_SPEEDUP_AT_12 = 11.7


def run(
    *,
    full: bool = True,
    counted: bool = False,
    counted_elements: int = 1 << 15,
    wallclock: bool = False,
    wallclock_elements: int = 1 << 20,
    seed: int = 7,
) -> ExperimentResult:
    """Regenerate Figure 5.

    Parameters
    ----------
    full:
        Use the paper's five sizes (default).  ``False`` keeps only the
        two smallest for smoke runs.
    counted:
        Also derive speedups from exact counted per-processor cycles on
        a ``counted_elements``-sized draw of the same workload.
    wallclock:
        Also measure real thread-backend wall clock on this host.
    seed:
        Workload seed for the counted/wallclock refinements.
    """
    sizes = PAPER_SIZES_M if full else PAPER_SIZES_M[:2]
    model = TimingModel(dell_t610())
    columns = ["size_Melem", "p", "model_speedup", "bound", "amdahl_serial_frac"]
    if counted:
        columns.append("counted_speedup")
    if wallclock:
        columns.append("wallclock_speedup")
    result = ExperimentResult(
        exp_id="FIG5",
        title="Speedup of basic Merge Path (paper Figure 5)",
        columns=columns,
    )

    counted_cache: dict[int, float] = {}
    wall_cache: dict[int, float] = {}
    if counted:
        a = sorted_uniform_ints(counted_elements, seed)
        b = sorted_uniform_ints(counted_elements, seed + 1)
        base = counted_parallel_merge(a, b, 1).time
        for p in PAPER_THREADS:
            counted_cache[p] = base / counted_parallel_merge(a, b, p).time
    if wallclock:
        a = sorted_uniform_ints(wallclock_elements, seed)
        b = sorted_uniform_ints(wallclock_elements, seed + 1)
        base_t = _best_of(lambda: parallel_merge(a, b, 1, backend="threads"), 3)
        for p in PAPER_THREADS:
            t = _best_of(lambda: parallel_merge(a, b, p, backend="threads"), 3)
            wall_cache[p] = base_t / t

    for size_m in sizes:
        n = size_m * (1 << 20)
        for p in PAPER_THREADS:
            s = model.speedup(n, n, p)
            timings = model.merge_timings(n, n, p)
            row: dict[str, object] = {
                "size_Melem": size_m,
                "p": p,
                "model_speedup": round(s, 2),
                "bound": timings.bound,
                "amdahl_serial_frac": (
                    round(serial_fraction_from_speedup(s, p), 5) if p >= 2 else 0.0
                ),
            }
            if counted:
                row["counted_speedup"] = round(counted_cache[p], 2)
            if wallclock:
                row["wallclock_speedup"] = round(wall_cache[p], 2)
            result.add_row(**row)

    at12 = [
        float(r["model_speedup"]) for r in result.rows if r["p"] == 12
    ]
    if at12:
        result.notes.append(
            f"paper: ~{PAPER_SPEEDUP_AT_12}x at 12 threads, slight droop for "
            f"largest arrays; model: {min(at12):.2f}-{max(at12):.2f}x "
            f"(mean {sum(at12) / len(at12):.2f}x)"
        )
    result.notes.append(
        "model = roofline over Dell T610 spec; single calibrated constant: "
        "24 GB/s sustained DRAM bandwidth per socket"
    )
    return result


def _best_of(fn, reps: int) -> float:
    """Minimum wall-clock of ``reps`` runs (standard timing hygiene)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
