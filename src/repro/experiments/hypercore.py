"""HYPER — the conclusion's prediction: SPM wins on simple many-cores.

Section VII: "sorting can be carried out in a much more cost- and
power-efficient manner on many-core systems with lightweight compute
cores.  To this end, the efficient segmented version of our algorithm
is very promising, as it can operate efficiently with simple caches."
The authors could not measure this (the Hypercore prototype's cache was
incomplete) — this experiment produces the number the sentence implies.

Model: a Hypercore-like machine (many simple cores, one small shared
cache, no prefetcher).  For each algorithm and core count we combine

* compute cycles: exact counted merge operations / p
  (both algorithms are perfectly balanced, so division is honest), and
* memory stall cycles: trace-driven misses from the cache simulator ×
  the DRAM penalty (every miss stalls a simple in-order core),

into modeled cycles, and report basic-vs-SPM speedup per p.  The
prediction reproduces if SPM's advantage *grows with p* (the basic
merge's miss rate explodes as p streams thrash the shared cache —
see the SPM experiment's p-sweep — while SPM's stays flat).
"""

from __future__ import annotations

from ..cache.set_assoc import ReplacementPolicy, SetAssociativeCache
from ..cache.trace import AddressMap
from ..cache.traced_merge import trace_parallel_merge, trace_segmented_merge
from ..core.segmented_merge import block_length
from ..machine.specs import hypercore_like
from ..types import ExperimentResult
from ..workloads.generators import sorted_uniform_ints

__all__ = ["run"]

#: Cycles one merge step costs on a lightweight in-order core.
CYCLES_PER_ACCESS = 1
#: Stall cycles per shared-cache miss (DRAM behind a simple NoC).
MISS_PENALTY = 60


def run(
    *,
    n_per_array: int = 1 << 13,
    ps: tuple[int, ...] = (4, 16, 64),
    cache_elements: int = 1 << 10,
    assoc: int = 4,
    seed: int = 47,
) -> ExperimentResult:
    """Model basic vs SPM merge cycles on the Hypercore-like machine."""
    spec = hypercore_like()
    element_bytes = 4
    a = sorted_uniform_ints(n_per_array, seed)
    b = sorted_uniform_ints(n_per_array, seed + 1)
    amap = AddressMap(
        {"A": len(a), "B": len(b), "S": len(a) + len(b)},
        element_bytes=element_bytes,
    )
    L = block_length(cache_elements)

    result = ExperimentResult(
        exp_id="HYPER",
        title="Section VII prediction: segmented merge on a simple "
        "shared-cache many-core",
        columns=[
            "p",
            "algorithm",
            "accesses",
            "misses",
            "compute_kcycles",
            "stall_kcycles",
            "total_kcycles",
            "spm_speedup",
        ],
    )

    for p in ps:
        per_algo: dict[str, float] = {}
        rows = []
        for name, trace in (
            ("basic", trace_parallel_merge(a, b, p)),
            ("SPM", trace_segmented_merge(a, b, p, L)),
        ):
            cache = SetAssociativeCache(
                cache_elements * element_bytes, spec.line_bytes, assoc,
                ReplacementPolicy.LRU,
            )
            for acc in trace:
                cache.access(
                    amap.byte_address(acc.array, acc.index), acc.write
                )
            accesses = cache.stats.accesses
            misses = cache.stats.misses
            compute = accesses * CYCLES_PER_ACCESS / p
            # the shared cache serializes miss handling: stalls do not
            # divide by p (one memory port — the simple-machine premise)
            stall = misses * MISS_PENALTY
            total = compute + stall
            per_algo[name] = total
            rows.append((name, accesses, misses, compute, stall, total))
        for name, accesses, misses, compute, stall, total in rows:
            result.add_row(
                p=p,
                algorithm=name,
                accesses=accesses,
                misses=misses,
                compute_kcycles=round(compute / 1000, 1),
                stall_kcycles=round(stall / 1000, 1),
                total_kcycles=round(total / 1000, 1),
                spm_speedup=(
                    round(per_algo["basic"] / per_algo["SPM"], 2)
                    if name == "SPM"
                    else ""
                ),
            )

    result.notes.append(
        f"machine: {spec.name}; shared {cache_elements}-element "
        f"{assoc}-way cache, no prefetcher; miss penalty "
        f"{MISS_PENALTY} cycles (serialized — one memory port)"
    )
    result.notes.append(
        "prediction reproduces if spm_speedup grows with p: the basic "
        "merge's 3p concurrent streams thrash the shared cache while "
        "SPM's working set stays ~3L regardless of p (paper Section VII)"
    )
    return result
