"""LB — Section V: load balance of Merge Path vs related partitioners.

The paper argues its perfect balance matters: Shiloach–Vishkin [6]
assigns up to ``2N/p`` elements to one processor ("can cause a 2X
increase in latency"), Akl–Santoro [5] is balanced but needs ``log p``
sequential bisection rounds, Deo–Sarkar [2] is the same partition as
Merge Path.  This experiment measures, per partitioner and workload:

* ``max/avg`` segment-size ratio (1.0 = perfect balance; the modeled
  latency multiplier under Corollary 7's equal-cost-per-element step),
* the worst absolute segment vs ``N/p``,
* sequential rounds required (structure, not data),
* and — the paper's actual claim — the **measured lockstep-PRAM barrier
  time** of each partition's merge phase, as a ratio to Merge Path's
  (``pram_time_ratio``; the "2X increase in latency" made concrete,
  measured at a reduced ``pram_n`` since the lockstep machine is
  cycle-exact but slow).

The adversarial ``disjoint_high_low`` input (the introduction's
"all elements of A greater than all of B") drives SV to its extreme.
"""

from __future__ import annotations

from ..baselines.akl_santoro import PartitionTrace, akl_santoro_partition
from ..baselines.deo_sarkar import deo_sarkar_partition
from ..baselines.shiloach_vishkin import sv_partition
from ..core.merge_path import partition_merge_path
from ..pram.baseline_programs import run_partitioned_merge_pram
from ..types import ExperimentResult, Partition
from ..workloads.adversarial import ADVERSARIAL_PAIRS
from ..workloads.generators import sorted_uniform_ints

__all__ = ["run"]


def _imbalance(part: Partition) -> tuple[float, int]:
    lengths = part.segment_lengths
    avg = sum(lengths) / len(lengths) if lengths else 0
    return (max(lengths) / avg if avg else 1.0), max(lengths, default=0)


def run(
    *,
    n: int = 1 << 16,
    pram_n: int = 1 << 10,
    ps: tuple[int, ...] = (4, 8, 16),
    workload_names: tuple[str, ...] = (
        "uniform",
        "disjoint_high_low",
        "perfect_interleave",
        "all_equal",
        "organ_pipe",
    ),
    seed: int = 23,
) -> ExperimentResult:
    """Compare partitioner balance across workloads and p."""
    result = ExperimentResult(
        exp_id="LB",
        title="Load balance: Merge Path vs Shiloach-Vishkin vs Akl-Santoro "
        "vs Deo-Sarkar (paper Section V)",
        columns=[
            "workload",
            "p",
            "algorithm",
            "max_over_avg",
            "max_segment",
            "ideal_N_over_p",
            "rounds",
            "pram_time_ratio",
        ],
    )

    def pairs(name: str, size: int):
        if name == "uniform":
            return (
                sorted_uniform_ints(size, seed),
                sorted_uniform_ints(size, seed + 1),
            )
        return ADVERSARIAL_PAIRS[name](size)

    worst_sv = 0.0
    for name in workload_names:
        a, b = pairs(name, n)
        # reduced-size copies for the cycle-exact lockstep runs
        sa, sb = pairs(name, pram_n)
        total = len(a) + len(b)
        for p in ps:
            ideal = total / p
            mp = partition_merge_path(a, b, p, check=False)
            sv = sv_partition(a, b, p)
            trace = PartitionTrace()
            ak = akl_santoro_partition(a, b, p, trace=trace)
            ds = deo_sarkar_partition(a, b, p)

            def pram_time(partitioner) -> int:
                part_small = partitioner(sa, sb, p)
                _, metrics = run_partitioned_merge_pram(sa, sb, part_small)
                return metrics.time

            base_time = pram_time(
                lambda x, y, q: partition_merge_path(x, y, q, check=False)
            )
            for algo, part, rounds, partitioner in (
                ("merge_path", mp, 1,
                 lambda x, y, q: partition_merge_path(x, y, q, check=False)),
                ("shiloach_vishkin", sv, 1, sv_partition),
                ("akl_santoro", ak, trace.rounds,
                 lambda x, y, q: akl_santoro_partition(x, y, q)),
                ("deo_sarkar", ds, 1, deo_sarkar_partition),
            ):
                ratio, worst = _imbalance(part)
                if algo == "shiloach_vishkin":
                    worst_sv = max(worst_sv, ratio)
                t_ratio = (
                    1.0 if algo == "merge_path"
                    else pram_time(partitioner) / base_time
                )
                result.add_row(
                    workload=name,
                    p=p,
                    algorithm=algo,
                    max_over_avg=round(ratio, 3),
                    max_segment=worst,
                    ideal_N_over_p=round(ideal, 1),
                    rounds=rounds,
                    pram_time_ratio=round(t_ratio, 2),
                )
    result.notes.append(
        "paper: SV-style partitioning can reach 2N/p per processor (2x "
        f"latency); worst max/avg observed here for SV: {worst_sv:.2f}x. "
        "merge_path / deo_sarkar / akl_santoro must show 1.0x (+N%p rounding)"
    )
    result.notes.append(
        "rounds column: sequential dependency depth of the partitioning "
        "step (Akl-Santoro bisects ceil(log2 p) times; the others are "
        "single-round)"
    )
    result.notes.append(
        f"pram_time_ratio: measured lockstep-PRAM barrier time of the "
        f"merge phase vs merge_path, at {pram_n} elements/array — the "
        "latency cost of imbalance (paper: up to ~2x for SV at 2N/p)"
    )
    return result
