"""REM6PCT — the Section VI remark: single-thread overhead ≈ 6%.

"The single-thread execution time of our algorithm was some 6% longer
than a truly sequential merge algorithm.  This is due in part to a few
extra instructions, and possibly also to overhead of OpenMP."

Reproduced two ways:

* **wall clock** — run the production vectorized kernel raw vs through
  the full Algorithm 1 machinery at ``p=1`` (partition + dispatch +
  barrier); report the relative overhead.  This is the direct analogue
  of the paper's measurement and is host-independent in *sign* (the
  framework can only add work).
* **counted** — PRAM cycles of the ``p=1`` merge-path program vs the
  plain sequential program.  At ``p=1`` the partition degenerates (the
  first diagonal is 0, the last is N), so counted overhead is ~0% —
  which localizes the paper's 6% to the runtime framework (OpenMP /
  dispatch), not the algorithm, a small sharpening of the remark.
"""

from __future__ import annotations

import time

from ..backends.serial import SerialBackend
from ..core.parallel_merge import parallel_merge
from ..core.sequential import merge_vectorized
from ..pram.merge_programs import counted_parallel_merge, run_sequential_merge_pram
from ..types import ExperimentResult
from ..workloads.generators import sorted_uniform_ints

__all__ = ["run"]

PAPER_OVERHEAD_PCT = 6.0


def run(
    *,
    elements: int = 1 << 21,
    counted_elements: int = 1 << 13,
    reps: int = 9,
    seed: int = 11,
) -> ExperimentResult:
    """Measure single-thread Merge Path overhead vs raw sequential merge."""
    a = sorted_uniform_ints(elements, seed)
    b = sorted_uniform_ints(elements, seed + 1)

    def raw() -> None:
        merge_vectorized(a, b, check=False)

    backend = SerialBackend()

    def framed() -> None:
        parallel_merge(a, b, 1, backend=backend, check=False)

    # Interleave the two variants so host drift (frequency scaling,
    # neighbours on a shared box) hits both equally.
    raw_times: list[float] = []
    framed_times: list[float] = []
    raw()  # warm-up: page-fault the inputs once, outside timing
    framed()
    for _ in range(max(1, reps)):
        raw_times.append(_timed_once(raw))
        framed_times.append(_timed_once(framed))
    t_raw = _median(raw_times)
    t_framed = _median(framed_times)
    wall_pct = 100.0 * (t_framed - t_raw) / t_raw

    sa = sorted_uniform_ints(counted_elements, seed + 2)
    sb = sorted_uniform_ints(counted_elements, seed + 3)
    _, seq_metrics = run_sequential_merge_pram(sa, sb)
    framed_cycles = counted_parallel_merge(sa, sb, 1).time
    counted_pct = 100.0 * (framed_cycles - seq_metrics.time) / seq_metrics.time

    result = ExperimentResult(
        exp_id="REM6PCT",
        title="Single-thread Merge Path overhead vs sequential merge "
        "(paper Section VI remark: ~6%)",
        columns=["measure", "sequential", "merge_path_p1", "overhead_pct"],
    )
    result.add_row(
        measure=f"wall clock (s, {elements} elems/array, median of {reps})",
        sequential=round(t_raw, 6),
        merge_path_p1=round(t_framed, 6),
        overhead_pct=round(wall_pct, 2),
    )
    result.add_row(
        measure=f"PRAM cycles ({counted_elements} elems/array)",
        sequential=seq_metrics.time,
        merge_path_p1=framed_cycles,
        overhead_pct=round(counted_pct, 2),
    )
    result.notes.append(
        f"paper reports ~{PAPER_OVERHEAD_PCT}% wall-clock overhead "
        "(extra instructions + OpenMP); counted overhead isolates the "
        "algorithmic part (expected ~0 at p=1)"
    )
    return result


def _timed_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _median(times: list[float]) -> float:
    """Median (robust to scheduler noise on shared hosts)."""
    ordered = sorted(times)
    return ordered[len(ordered) // 2]
