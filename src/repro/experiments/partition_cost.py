"""T14 — Theorem 14: partition cost bound and perfect balance.

Theorem 14 promises each of the ``p-1`` partition points is found in at
most ``log2(min(|A|,|B|))`` binary-search steps, independently, and
Corollary 7 that the resulting segments are equisized.  This experiment
measures, over the adversarial workload suite and a size/p sweep:

* the *maximum observed* probe count per diagonal vs the theorem bound;
* the segment-length imbalance (must be ≤ 1 always — the rounding
  residue of N/p, not a property of the data);
* total partition work as a fraction of total merge work (the paper's
  "negligible excess work" claim: ``p·log N / N``).
"""

from __future__ import annotations

import numpy as np

from ..core.merge_path import max_search_steps, partition_merge_path
from ..types import ExperimentResult, MergeStats
from ..workloads.adversarial import ADVERSARIAL_PAIRS
from ..workloads.generators import sorted_uniform_ints

__all__ = ["run"]


def run(
    *,
    sizes: tuple[int, ...] = (1 << 10, 1 << 14, 1 << 18),
    ps: tuple[int, ...] = (2, 8, 32),
    seed: int = 3,
) -> ExperimentResult:
    """Sweep workloads × sizes × p, reporting probe counts vs the bound."""
    result = ExperimentResult(
        exp_id="T14",
        title="Partition cost and balance vs Theorem 14 / Corollary 7",
        columns=[
            "workload",
            "n_per_array",
            "p",
            "max_probes",
            "bound_log2_min",
            "within_bound",
            "imbalance",
            "partition_work_frac",
        ],
    )
    workloads: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for n in sizes:
        workloads[f"uniform/{n}"] = (
            sorted_uniform_ints(n, seed),
            sorted_uniform_ints(n, seed + 1),
        )
        for name, make in ADVERSARIAL_PAIRS.items():
            workloads[f"{name}/{n}"] = make(n)

    all_within = True
    for key, (a, b) in workloads.items():
        name, n_str = key.rsplit("/", 1)
        n = int(n_str)
        for p in ps:
            stats = MergeStats()
            part = partition_merge_path(
                a, b, p, check=False, vectorized=False, stats=stats
            )
            max_probes = max(part.search_steps, default=0)
            bound = max_search_steps(len(a), len(b))
            within = max_probes <= bound
            all_within &= within
            total = len(a) + len(b)
            work_frac = stats.search_probes / total if total else 0.0
            result.add_row(
                workload=name,
                n_per_array=n,
                p=p,
                max_probes=max_probes,
                bound_log2_min=bound,
                within_bound=within,
                imbalance=part.max_imbalance,
                partition_work_frac=round(work_frac, 6),
            )
    result.notes.append(
        f"all probe counts within Theorem 14 bound: {all_within}; "
        "imbalance column must never exceed 1 (Corollary 7 + rounding)"
    )
    return result
