"""Registry mapping DESIGN.md experiment ids to runners."""

from __future__ import annotations

from typing import Callable

from ..errors import UnknownExperimentError
from ..types import ExperimentResult
from . import (
    cache_misses,
    hypercore,
    complexity_fit,
    fig5_speedup,
    load_balance,
    overhead,
    partition_cost,
    sort_scaling,
)

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

#: Experiment id -> (runner, one-line description).
EXPERIMENTS: dict[str, tuple[Callable[..., ExperimentResult], str]] = {
    "FIG5": (fig5_speedup.run, "Figure 5: speedup of basic Merge Path"),
    "REM6PCT": (overhead.run, "Section VI remark: ~6% single-thread overhead"),
    "T14": (partition_cost.run, "Theorem 14: partition cost bound & balance"),
    "COMPLEX": (complexity_fit.run, "Section III: O(N/p + log N) fit"),
    "LB": (load_balance.run, "Section V: load balance vs related work"),
    "SPM": (cache_misses.run, "Section IV: SPM vs basic cache misses"),
    "SORT": (sort_scaling.run, "Sections III/IV.C: sort scaling & locality"),
    "HYPER": (hypercore.run, "Section VII: SPM on a simple many-core"),
}


def get_experiment(exp_id: str) -> Callable[..., ExperimentResult]:
    """Runner for ``exp_id``; raises UnknownExperimentError otherwise."""
    try:
        return EXPERIMENTS[exp_id.upper()][0]
    except KeyError:
        raise UnknownExperimentError(exp_id, tuple(EXPERIMENTS)) from None


def run_experiment(exp_id: str, **kwargs: object) -> ExperimentResult:
    """Run one experiment by id with keyword overrides."""
    return get_experiment(exp_id)(**kwargs)
