"""SORT — Sections III & IV.C: parallel sort scaling and locality.

Two parts:

1. **Parallel merge sort complexity** — counted merge-round cycles of
   :func:`repro.core.merge_sort.parallel_merge_sort` across (N, p),
   compared with the paper's ``O(N/p · log N + log p · log N)`` model
   (reported as measured/model ratio; flat ratio = shape reproduced).
2. **Cache-efficient sort locality** — DRAM fills of naive parallel
   merge sort vs the cache-efficient sort (Section IV.C) on the
   shared-cache machine, via the cache simulator: the cache-efficient
   variant's misses per element stay near the compulsory floor per
   merge round, the naive one's grow once runs outgrow the cache.

Because tracing full sorts is heavy, part 2 traces the *final round*
(the largest, cache-busting merge) of each sort — where the two
algorithms differ most and which dominates total misses.
"""

from __future__ import annotations

import math

import numpy as np

from ..cache.set_assoc import ReplacementPolicy, SetAssociativeCache
from ..cache.trace import AddressMap
from ..cache.traced_merge import trace_parallel_merge, trace_segmented_merge
from ..core.segmented_merge import block_length
from ..machine.specs import hypercore_like
from ..pram.merge_programs import counted_parallel_merge
from ..types import ExperimentResult
from ..workloads.generators import sorted_uniform_ints, unsorted_uniform_ints

__all__ = ["run"]


def _counted_sort_cycles(x: np.ndarray, p: int) -> int:
    """PRAM time of the merge rounds of parallel merge sort.

    Chunk-local sorts are modeled at ``(N/p)·log2(N/p)`` comparison
    cycles (each core sorts its chunk concurrently); merge rounds use
    the exact counted Algorithm-1 cycles with all p cores cooperating
    per pair (pairs share the processors evenly).
    """
    n = len(x)
    chunks = min(p, n)
    bounds = [(k * n) // chunks for k in range(chunks + 1)]
    runs = [np.sort(x[lo:hi]) for lo, hi in zip(bounds, bounds[1:]) if hi > lo]
    local = max((hi - lo) for lo, hi in zip(bounds, bounds[1:]))
    cycles = int(local * max(1, math.ceil(math.log2(max(local, 2)))))
    while len(runs) > 1:
        procs = max(1, p // (len(runs) // 2))
        next_runs = []
        round_time = 0
        for i in range(0, len(runs) - 1, 2):
            counted = counted_parallel_merge(runs[i], runs[i + 1], procs)
            # pairs with > p total procs run concurrently in waves
            round_time = max(round_time, counted.time)
            next_runs.append(np.concatenate([runs[i], runs[i + 1]]))
            next_runs[-1].sort(kind="mergesort")
        if len(runs) % 2:
            next_runs.append(runs[-1])
        waves = max(1, (len(runs) // 2) * procs // max(p, 1))
        cycles += round_time * waves
        runs = next_runs
    return cycles


def run(
    *,
    exponents: tuple[int, ...] = (12, 14, 16),
    ps: tuple[int, ...] = (2, 4, 8),
    cache_elements: int = 1 << 10,
    seed: int = 41,
) -> ExperimentResult:
    """Sort scaling vs model, plus final-round locality comparison."""
    result = ExperimentResult(
        exp_id="SORT",
        title="Parallel merge sort scaling and cache-efficient sort "
        "locality (paper Sections III, IV.C)",
        columns=["part", "N", "p", "measured", "model", "ratio"],
    )
    # Part 1: counted sort cycles vs O(N/p log N + log p log N).
    ratios = []
    for e in exponents:
        n = 1 << e
        x = unsorted_uniform_ints(n, seed + e)
        for p in ps:
            measured = _counted_sort_cycles(x, p)
            model = (n / p) * e + math.log2(max(p, 2)) * e
            ratio = measured / model
            ratios.append(ratio)
            result.add_row(
                part="sort_cycles",
                N=n,
                p=p,
                measured=measured,
                model=round(model, 0),
                ratio=round(ratio, 2),
            )
    spread = max(ratios) / min(ratios) if ratios else 1.0

    # Part 2: final-round locality, naive vs segmented merge of two
    # N/2-element sorted runs through a small shared cache.
    spec = hypercore_like()
    element_bytes = 4
    n = 1 << max(exponents)
    half = n // 2
    a = sorted_uniform_ints(half, seed)
    b = sorted_uniform_ints(half, seed + 1)
    amap = AddressMap(
        {"A": half, "B": half, "S": n}, element_bytes=element_bytes
    )
    L = block_length(cache_elements)
    p = ps[-1]
    for name, trace in (
        ("final_round_basic", trace_parallel_merge(a, b, p)),
        ("final_round_SPM", trace_segmented_merge(a, b, p, L)),
    ):
        cache = SetAssociativeCache(
            cache_elements * element_bytes, spec.line_bytes, 4,
            ReplacementPolicy.LRU,
        )
        for acc in trace:
            cache.access(amap.byte_address(acc.array, acc.index), acc.write)
        # Distinct lines touched once: A and B together hold n elements,
        # S holds n more.
        floor = (2 * n * element_bytes) // spec.line_bytes
        result.add_row(
            part=name,
            N=n,
            p=p,
            measured=cache.stats.misses,
            model=floor,
            ratio=round(cache.stats.misses / floor, 2),
        )
    # Part 2b: lockstep-PRAM execution of the full sort at a reduced
    # size — the same model as part 1 but *measured on the machine*
    # rather than counted, with real per-phase barriers.
    from ..pram.sort_programs import run_parallel_merge_sort_pram

    n_pram = 1 << min(min(exponents), 10)
    xp = unsorted_uniform_ints(n_pram, seed + 3)
    for p in ps:
        sorted_out, pram_metrics = run_parallel_merge_sort_pram(xp, p)
        assert np.array_equal(sorted_out, np.sort(xp))
        model = (n_pram / p) * math.log2(n_pram) + math.log2(max(p, 2)) * \
            math.log2(n_pram)
        result.add_row(
            part="pram_sort_cycles",
            N=n_pram,
            p=p,
            measured=pram_metrics.time,
            model=round(model, 0),
            ratio=round(pram_metrics.time / model, 2),
        )

    # Part 3: whole-sort cache traffic, cache-aware (Section IV.C) vs
    # cache-oblivious (plain recursive merge sort, the [11-13] family).
    from ..cache.traced_sort import (
        trace_cache_aware_sort,
        trace_recursive_mergesort,
    )
    from ..workloads.generators import unsorted_uniform_ints as _unsorted

    n_sort = 1 << min(max(exponents), 13)  # tracing full sorts is heavy
    xs = _unsorted(n_sort, seed + 7)
    amap_sort = AddressMap(
        {"X": n_sort, "Y": n_sort}, element_bytes=element_bytes
    )
    for name, (trace, out) in (
        ("sort_oblivious", trace_recursive_mergesort(xs)),
        ("sort_cache_aware",
         trace_cache_aware_sort(xs, ps[-1], cache_elements)),
    ):
        assert np.array_equal(out, np.sort(xs))
        cache = SetAssociativeCache(
            cache_elements * element_bytes, spec.line_bytes, 4,
            ReplacementPolicy.LRU,
        )
        for acc in trace:
            cache.access(
                amap_sort.byte_address(acc.array, acc.index), acc.write
            )
        per_pass_floor = (2 * n_sort * element_bytes) // spec.line_bytes
        result.add_row(
            part=name,
            N=n_sort,
            p=ps[-1] if name == "sort_cache_aware" else 1,
            measured=cache.stats.misses,
            model=per_pass_floor,
            ratio=round(cache.stats.misses / per_pass_floor, 2),
        )

    result.notes.append(
        f"sort_cycles measured/model ratio spread across the grid: "
        f"{spread:.2f}x (flat ratio == complexity shape reproduced; "
        "constants are absorbed by the ratio)"
    )
    result.notes.append(
        "final_round rows: 'model' is the compulsory line-fill floor; "
        "SPM should sit near 1.0x, basic above it"
    )
    result.notes.append(
        "sort_* rows: total misses of a full sort vs the per-pass floor "
        "— Section IV.C's cache-aware sort vs the cache-oblivious "
        "recursive merge sort of the paper's refs [11-13]; awareness of "
        "C removes the misses of every recursion level that overflows "
        "the cache"
    )
    return result
