"""External-memory (disk-backed) merge sort substrate.

The cache-efficient sort of Section IV.C, taken one level down the
hierarchy: when data exceeds *RAM*, the same structure — sort
memory-sized runs, then merge with bounded windows — becomes classic
external merge sort, and the cost model becomes the I/O (block
transfer) model of Aggarwal & Vitter, the paper's reference [10].

* :mod:`repro.external.io_model` — block-transfer accounting: an
  :class:`~repro.external.io_model.IOCounter` tallies reads/writes in
  ``B``-element blocks, and :func:`~repro.external.io_model
  .aggarwal_vitter_bound` gives the ``(N/B)·log_{M/B}(N/B)`` optimum to
  compare against.
* :mod:`repro.external.runs` — run formation: slice the input into
  ``M``-element chunks, sort each in memory, spill to disk.
* :mod:`repro.external.sort` — the full pipeline: run formation + one
  or more multi-way streaming merge passes, each pass reading every run
  through an ``L``-element window (Algorithm 2's cyclic buffer applied
  to files).
* :mod:`repro.external.planner` — SPM merge planning over disk runs:
  merge-path style diagonal intersections over run key samples cut the
  k-way fan-in into disjoint, memory-budgeted key-range blocks.
* :mod:`repro.external.parallel` — the SPM-planned, process-parallel
  pipeline: run formation and block merges as batched backend
  dispatches, per-shard I/O folding, full cleanup on failure.
"""

from .io_model import IOCounter, aggarwal_vitter_bound
from .parallel import ExtSortReport, external_sort_file
from .planner import MergePlan, kth_of_runs, plan_blocks
from .runs import RunFile, form_runs
from .sort import external_sort, merge_run_files

__all__ = [
    "IOCounter",
    "aggarwal_vitter_bound",
    "RunFile",
    "form_runs",
    "external_sort",
    "merge_run_files",
    "MergePlan",
    "plan_blocks",
    "kth_of_runs",
    "ExtSortReport",
    "external_sort_file",
]
