"""I/O (block-transfer) accounting — Aggarwal–Vitter's model [10].

Cost unit: one transfer of a ``B``-element block between disk and
memory.  Sorting ``N`` elements with ``M`` elements of memory costs at
least ``Θ((N/B)·log_{M/B}(N/B))`` transfers; external merge sort with a
``M/B``-way merge achieves it.  The counter here is charged by the run
and merge layers so tests can compare measured transfers to the bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InputError
from ..validation import check_positive

__all__ = ["IOCounter", "aggarwal_vitter_bound"]


@dataclass(slots=True)
class IOCounter:
    """Tallies block transfers at a fixed block size."""

    block_elements: int
    read_blocks: int = 0
    write_blocks: int = 0

    def __post_init__(self) -> None:
        check_positive(self.block_elements, "block_elements")

    def charge_read(self, elements: int) -> None:
        """Charge a read of ``elements`` contiguous elements."""
        if elements < 0:
            raise InputError("cannot read a negative element count")
        self.read_blocks += -(-elements // self.block_elements) if elements else 0

    def charge_write(self, elements: int) -> None:
        """Charge a write of ``elements`` contiguous elements."""
        if elements < 0:
            raise InputError("cannot write a negative element count")
        self.write_blocks += -(-elements // self.block_elements) if elements else 0

    def merge(self, other: "IOCounter") -> None:
        """Fold another counter in (per-shard → run aggregation).

        Mirrors :meth:`repro.obs.metrics.Histogram.merge`: parallel
        phases charge a private per-shard counter each and the driver
        folds them in task order, so totals are deterministic no matter
        how the backend interleaved the workers.  Both counters must
        use the same block size — a fold across block sizes would mix
        incomparable units.
        """
        if other.block_elements != self.block_elements:
            raise InputError(
                f"cannot merge IOCounters with different block sizes "
                f"({self.block_elements} vs {other.block_elements})"
            )
        self.read_blocks += other.read_blocks
        self.write_blocks += other.write_blocks

    @property
    def total_blocks(self) -> int:
        return self.read_blocks + self.write_blocks


def aggarwal_vitter_bound(n: int, memory: int, block: int) -> float:
    """The sorting lower bound ``(N/B) · log_{M/B}(N/B)`` in transfers.

    Returns 0 for inputs that fit in memory.  ``memory`` must exceed
    ``block`` (the model needs at least one block of workspace per
    stream plus output).
    """
    check_positive(n, "n")
    check_positive(memory, "memory")
    check_positive(block, "block")
    if memory <= block:
        raise InputError("memory must exceed the block size")
    if n <= memory:
        return 0.0
    nb = n / block
    fan = memory / block
    return nb * math.log(nb) / math.log(fan)
