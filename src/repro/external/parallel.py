"""SPM-planned, process-parallel external sort over disk-resident runs.

The serial pipeline in :mod:`repro.external.sort` merges runs one
element at a time through a heap.  This module replaces both phases
with the batched execution engine:

**Run formation** — every memory-sized chunk sort is one task of a
single :class:`~repro.backends.TaskBatch` (label ``extsort.runs``),
exactly like round 0 of :func:`repro.execution.engine.run_chunk_sorts`.
Workers are module-level functions taking ``(path, offset)`` tuples, so
the process pool pickles a few integers per task, never element data —
the file system is the arena.

**Merge fan-in** — each pass plans the k-way merge with
:func:`repro.external.planner.plan_blocks` (merge-path diagonal
intersections over run key samples) and dispatches all blocks of all
groups as one ``TaskBatch`` (label ``extsort.pass``).  Blocks cover
disjoint key ranges and write disjoint slices of a pre-created output
memmap (Theorem 14 one level up), so block tasks are idempotent —
safe to retry or speculate on a
:class:`~repro.resilience.DegradingBackend` chain, and dispatch count
is one per pass (+1 for run formation): sub-linear in block count.

Each worker charges a private :class:`~repro.external.io_model.
IOCounter` shard; the driver folds shards in task order
(:meth:`IOCounter.merge`), so parallel transfer counts are
deterministic no matter how the backend interleaved the workers.

Every run/merge file created by a call is tracked and unlinked if the
call fails, so caller-supplied spill directories are left clean on
error; on success only the final sorted file remains.
"""

from __future__ import annotations

import functools
import os
import time
import uuid
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..backends import Backend, TaskBatch
from ..core.parallel_merge import _TracerScope, _flush_telemetry, _resolve_execution
from ..core.sequential import merge_into
from ..errors import InputError
from ..execution.engine import _publish_times
from ..obs.tracer import NULL_SPAN
from ..validation import check_positive
from .io_model import IOCounter, aggarwal_vitter_bound
from .planner import plan_blocks
from .runs import RunFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry, Tracer
    from ..resilience import ExecutionTelemetry, RetryPolicy

__all__ = ["ExtSortReport", "external_sort_file"]

#: Cap on runs merged per pass; bounds simultaneously-open memmaps.
MAX_FAN_IN = 256


@dataclass(frozen=True)
class ExtSortReport:
    """Accounting for one :func:`external_sort_file` call.

    ``transfer_ratio`` is measured block transfers over the
    Aggarwal–Vitter sorting bound — the figure of merit the CI smoke
    job gates on (``None`` when the input fits in memory, where the
    bound is zero).
    """

    n: int
    dtype: str
    memory_elements: int
    block_elements: int
    io_block_elements: int
    fan_in: int
    runs: int
    passes: int
    blocks: int
    dispatches: int
    read_blocks: int
    write_blocks: int
    total_blocks: int
    av_bound_blocks: float
    transfer_ratio: float | None
    probe_elements: int
    elapsed_s: float

    def to_dict(self) -> dict:
        return asdict(self)


# ---------------------------------------------------------------------------
# Picklable workers (module-level: the process pool ships names + tuples)
# ---------------------------------------------------------------------------

def _form_run_task(args: tuple) -> dict:
    """Sort one memory-sized chunk of the input file into a run file."""
    in_path, lo, hi, run_path, io_block = args
    shard = IOCounter(block_elements=io_block)
    mm = np.load(in_path, mmap_mode="r")
    chunk = np.array(mm[lo:hi])  # materialize the window; drop the map
    del mm
    shard.charge_read(len(chunk))
    np.save(run_path, np.sort(chunk, kind="mergesort"))
    shard.charge_write(len(chunk))
    return {"length": len(chunk), "io": shard}


def _tournament(slabs: list[np.ndarray], dtype: np.dtype, kernel: str) -> np.ndarray:
    """Adjacent-pair merge of sorted slabs down to one array.

    Adjacent pairing preserves run-order tie-breaking (same argument as
    :func:`repro.core.kway._tournament`): the kernel is stable A-first,
    so lower-indexed runs' elements always land first among equals.
    """
    if not slabs:
        return np.empty(0, dtype=dtype)
    while len(slabs) > 1:
        nxt = []
        for i in range(0, len(slabs) - 1, 2):
            a, b = slabs[i], slabs[i + 1]
            buf = np.empty(len(a) + len(b), dtype=np.promote_types(a.dtype, b.dtype))
            merge_into(buf, a, b, kernel=kernel)
            nxt.append(buf)
        if len(slabs) % 2:
            nxt.append(slabs[-1])
        slabs = nxt
    return slabs[0].astype(dtype, copy=False)


def _merge_block_task(args: tuple) -> dict:
    """Merge one planned key-range block into its disjoint output slice.

    Opens its own memmaps, reads exactly the planned window of each run,
    merges through the dispatched kernel, and writes only
    ``[out_lo, out_hi)`` of the pre-created output — rerunning the task
    is byte-identical (idempotent), which is what lets the resilience
    chain retry or speculate it freely.
    """
    run_paths, cut_lo, cut_hi, out_path, out_lo, out_hi, kernel, io_block = args
    shard = IOCounter(block_elements=io_block)
    slabs: list[np.ndarray] = []
    for path, lo, hi in zip(run_paths, cut_lo, cut_hi):
        if hi <= lo:
            continue
        mm = np.load(path, mmap_mode="r")
        window = np.array(mm[lo:hi])
        del mm
        shard.charge_read(len(window))
        slabs.append(window)
    out = np.load(out_path, mmap_mode="r+")
    merged = _tournament(slabs, out.dtype, kernel)
    if len(merged) != out_hi - out_lo:  # pragma: no cover - plan invariant
        raise AssertionError(
            f"block produced {len(merged)} elements for a "
            f"{out_hi - out_lo}-element slice"
        )
    out[out_lo:out_hi] = merged
    out.flush()
    del out
    shard.charge_write(out_hi - out_lo)
    return {"io": shard}


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def _unlink(path: str) -> None:
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass


def external_sort_file(
    in_path: str,
    *,
    memory_elements: int,
    directory: str,
    out_path: str | None = None,
    fan_in: int | None = None,
    block_elements: int | None = None,
    io: IOCounter | None = None,
    backend: Backend | str = "processes",
    workers: int | None = None,
    kernel: str = "auto",
    resilience: "RetryPolicy | bool | None" = None,
    telemetry: "ExecutionTelemetry | None" = None,
    trace: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> tuple[RunFile, ExtSortReport]:
    """Sort a ``.npy`` file bigger than memory; return the sorted file.

    Parameters
    ----------
    in_path:
        1-D ``.npy`` input (read through a memory map, never loaded
        whole).
    memory_elements:
        The RAM budget ``M``: run size, and (halved) the per-block
        working-set cap during merges.
    directory:
        Spill directory for runs and merge outputs.  Must exist.  On
        failure every file this call created is unlinked; on success
        only the final sorted file remains.
    out_path:
        Where to put the sorted output (``os.replace`` of the final
        run); default keeps it in ``directory``.
    fan_in:
        Runs merged per pass.  Default: all of them (capped at
        :data:`MAX_FAN_IN`) — unlike the heap path, SPM block planning
        bounds memory by *block size*, not per-run windows, so full-width
        single-pass fan-in is free and strictly fewer passes result.
    block_elements:
        Per-block output cap (default ``M // 2``: one block's input
        windows plus its output slice together fit the budget).
    io:
        Optional caller :class:`IOCounter`; otherwise an internal one
        with ``B = max(1, M // 8)`` is used.  Per-worker shards are
        folded into it in task order.
    backend, workers, kernel, resilience, telemetry, trace, metrics:
        The standard execution surface — same semantics as
        :func:`repro.core.parallel_merge.parallel_merge`.  ``kernel``
        resolves ``"auto"`` through the autotuner *in the driver* (each
        worker process has its own autotuner singleton, so the decision
        must ship with the task).
    """
    check_positive(memory_elements, "memory_elements")
    if not os.path.isdir(directory):
        raise InputError(f"spill directory {directory!r} does not exist")
    header = np.load(in_path, mmap_mode="r")
    if header.ndim != 1:
        raise InputError("external sort input must be 1-D")
    n = int(header.shape[0])
    dtype = header.dtype
    del header

    if block_elements is None:
        block_elements = max(1, memory_elements // 2)
    check_positive(block_elements, "block_elements")
    counter = io if io is not None else IOCounter(
        block_elements=max(1, memory_elements // 8)
    )
    io_block = counter.block_elements
    p = workers if workers is not None else (os.cpu_count() or 1)
    check_positive(p, "workers")

    from ..execution.autotune import get_autotuner

    resolved_kernel = get_autotuner().resolve_kernel(
        kernel, max(1, min(block_elements, memory_elements))
    )

    t0 = time.perf_counter()
    be, owned, t_start = _resolve_execution(
        backend, p, resilience, telemetry, metrics, n=n, trace=trace
    )
    d_start = be.dispatches
    created: list[str] = []
    passes = 0
    blocks_total = 0
    probe_total = 0
    try:
        with _TracerScope(be, trace):
            # --- phase 1: run formation, one batch --------------------
            run_specs: list[tuple[int, int, str]] = []
            for lo in range(0, n, memory_elements):
                hi = min(n, lo + memory_elements)
                rpath = os.path.join(
                    directory, f"extsort-run-{uuid.uuid4().hex}.npy"
                )
                created.append(rpath)
                run_specs.append((lo, hi, rpath))
            if run_specs:
                results = be.run_batch(TaskBatch(
                    [
                        functools.partial(
                            _form_run_task, (in_path, lo, hi, rpath, io_block)
                        )
                        for lo, hi, rpath in run_specs
                    ],
                    label="extsort.runs", meta={"runs": len(run_specs)},
                ))
                _publish_times(metrics, results)
                for r in results:
                    counter.merge(r.value["io"])
            runs = [
                RunFile(path=rpath, length=hi - lo, dtype=str(dtype))
                for lo, hi, rpath in run_specs
            ]
            if not runs:
                epath = os.path.join(
                    directory, f"extsort-empty-{uuid.uuid4().hex}.npy"
                )
                created.append(epath)
                np.save(epath, np.empty(0, dtype=dtype))
                runs = [RunFile(path=epath, length=0, dtype=str(dtype))]
            formed = len(run_specs)

            # --- phase 2: SPM-planned merge passes --------------------
            if fan_in is None:
                fan_in = min(max(2, len(runs)), MAX_FAN_IN)
            if fan_in < 2:
                raise InputError("fan_in must be >= 2")
            while len(runs) > 1:
                passes += 1
                groups = [
                    runs[glo : glo + fan_in]
                    for glo in range(0, len(runs), fan_in)
                ]
                merged: list[RunFile | None] = []
                tasks = []
                for group in groups:
                    if len(group) == 1:
                        merged.append(None)
                        continue
                    span = (
                        trace.span("extsort.plan", runs=len(group))
                        if trace is not None else NULL_SPAN
                    )
                    with span:
                        plan = plan_blocks(group, block_elements, io=counter)
                    probe_total += plan.probe_elements
                    gdtype = np.result_type(
                        *[np.dtype(r.dtype) for r in group]
                    )
                    opath = os.path.join(
                        directory, f"extsort-merge-{uuid.uuid4().hex}.npy"
                    )
                    created.append(opath)
                    out = np.lib.format.open_memmap(
                        opath, mode="w+", dtype=gdtype, shape=(plan.total,)
                    )
                    del out  # workers reopen "r+" and fill disjoint slices
                    paths = tuple(r.path for r in group)
                    for j in range(plan.blocks):
                        tasks.append(functools.partial(_merge_block_task, (
                            paths, plan.cuts[j], plan.cuts[j + 1], opath,
                            plan.offsets[j], plan.offsets[j + 1],
                            resolved_kernel, io_block,
                        )))
                    blocks_total += plan.blocks
                    merged.append(
                        RunFile(path=opath, length=plan.total,
                                dtype=str(gdtype))
                    )
                if tasks:
                    results = be.run_batch(TaskBatch(
                        tasks, label="extsort.pass",
                        meta={"pass": passes, "blocks": len(tasks)},
                    ))
                    _publish_times(metrics, results)
                    for r in results:
                        counter.merge(r.value["io"])
                next_runs: list[RunFile] = []
                for group, out_run in zip(groups, merged):
                    if out_run is None:
                        next_runs.append(group[0])
                    else:
                        next_runs.append(out_run)
                        for r in group:  # consumed: reclaim disk now
                            r.unlink()
                runs = next_runs

            final = runs[0]
            if out_path is not None and final.path != out_path:
                os.replace(final.path, out_path)
                final = RunFile(path=out_path, length=final.length,
                                dtype=final.dtype)

            elapsed = time.perf_counter() - t0
            bound = (
                aggarwal_vitter_bound(n, memory_elements, io_block)
                if n > 0 and memory_elements > io_block else 0.0
            )
            ratio = counter.total_blocks / bound if bound > 0 else None
            dispatched = be.dispatches - d_start
            if metrics is not None:
                metrics.counter("extsort.calls").inc()
                metrics.counter("extsort.runs").inc(formed)
                metrics.counter("extsort.passes").inc(passes)
                metrics.counter("extsort.blocks").inc(blocks_total)
                if ratio is not None:
                    metrics.gauge("extsort.transfer_ratio").set(ratio)
            report = ExtSortReport(
                n=n, dtype=str(dtype),
                memory_elements=memory_elements,
                block_elements=block_elements,
                io_block_elements=io_block,
                fan_in=fan_in if n > memory_elements else 0,
                runs=formed, passes=passes, blocks=blocks_total,
                dispatches=dispatched,
                read_blocks=counter.read_blocks,
                write_blocks=counter.write_blocks,
                total_blocks=counter.total_blocks,
                av_bound_blocks=round(bound, 3),
                transfer_ratio=(
                    round(ratio, 4) if ratio is not None else None
                ),
                probe_elements=probe_total,
                elapsed_s=round(elapsed, 6),
            )
            return final, report
    except BaseException:
        # Satellite: never leak spill files into a caller's directory —
        # everything this call created is unlinked before re-raising.
        for path in created:
            _unlink(path)
        raise
    finally:
        _flush_telemetry(be, t_start, telemetry)
        if metrics is not None:
            dispatched = be.dispatches - d_start
            metrics.counter("exec.dispatches").inc(dispatched)
            metrics.gauge("exec.dispatches_per_call").set(dispatched)
        if owned:
            be.close()
