"""SPM merge planning over disk-resident runs.

Section IV.B's segmented parallel merge keeps every merge block
cache-resident by intersecting the merge path with equispaced output
diagonals.  This module lifts that planning one level up the memory
hierarchy: "cache" becomes the RAM budget ``M`` and "memory" becomes
disk, per the Aggarwal–Vitter block-transfer model
(:mod:`repro.external.io_model`).  A :class:`MergePlan` cuts the k-way
fan-in over ``T`` sorted runs into disjoint key-range **blocks** whose
working sets fit the memory budget, so each block merge

* touches only its own run windows (streamed from disk),
* writes only its own output slice (Theorem 14 disjointness), and is
  therefore idempotent — safe to retry or speculate on the resilience
  chain like every other batch task.

Planning never loads a run.  Boundary ranks are located by a
value-domain binary search whose candidate pivots are *key samples
probed straight off the run memmaps* — each probe touches one element
plus ``O(log |run|)`` pages for the per-run ``searchsorted`` rank
queries, the k-way generalization of the diagonal intersection's
``O(log N)`` binary search.  Ties at a boundary value are distributed
run-by-run (earlier runs first), extending the package-wide A-before-B
stability rule to exact output ranks, so successive boundaries are
monotone per run and block lengths differ by at most one from the ideal
``total / blocks`` split (Corollary 7 one level up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import InputError
from ..validation import check_positive
from .io_model import IOCounter
from .runs import RunFile

__all__ = ["MergePlan", "plan_blocks", "kth_of_runs"]


@dataclass(frozen=True)
class MergePlan:
    """Block boundaries for one SPM-planned k-way merge.

    ``cuts`` has ``blocks + 1`` rows of per-run split indices: block
    ``j`` of the merge consumes ``runs[t][cuts[j][t] : cuts[j+1][t]]``
    for every run ``t`` and produces output positions
    ``[offsets[j], offsets[j+1])``.  Row 0 is all zeros, the last row
    is the run lengths, and columns are non-decreasing — so the blocks
    partition every run and the output exactly (the Theorem 14
    disjointness witness, checked by :meth:`validate`).
    """

    cuts: tuple[tuple[int, ...], ...]
    offsets: tuple[int, ...]
    total: int
    probe_elements: int = 0

    @property
    def blocks(self) -> int:
        return len(self.offsets) - 1

    @property
    def max_block_elements(self) -> int:
        """Largest planned block (working-set bound witness)."""
        return max(
            (hi - lo for lo, hi in zip(self.offsets, self.offsets[1:])),
            default=0,
        )

    def validate(self, lengths: Sequence[int]) -> None:
        """Assert disjointness/completeness against the run lengths."""
        if list(self.cuts[0]) != [0] * len(lengths):
            raise AssertionError("first cut row must be all zeros")
        if list(self.cuts[-1]) != list(lengths):
            raise AssertionError("last cut row must equal run lengths")
        for t in range(len(lengths)):
            col = [row[t] for row in self.cuts]
            if any(x > y for x, y in zip(col, col[1:])):
                raise AssertionError(f"non-monotone cuts for run {t}")
        for j, (lo, hi) in enumerate(zip(self.offsets, self.offsets[1:])):
            if hi - lo != sum(self.cuts[j + 1]) - sum(self.cuts[j]):
                raise AssertionError(f"block {j} offsets disagree with cuts")


def kth_of_runs(
    readers: Sequence[np.ndarray], k: int
) -> tuple[object, list[int]]:
    """Per-run split indices of the k smallest elements of the union.

    The disk-friendly sibling of
    :func:`repro.core.selection.kth_of_union_many`: instead of pooling
    the arrays (which would load every run), it binary-searches the
    value domain using candidate pivots probed from the runs
    themselves.  Each round probes one key sample from the largest
    remaining candidate window and ranks it across all runs with
    ``searchsorted`` — ``O(T log N)`` rounds of ``O(T log N)`` page
    touches, never a full read.

    Ties at the k-th value are admitted run-by-run (earlier runs
    first), the k-way extension of the stable A-before-B rule.
    Returns ``(value, splits)`` with ``sum(splits) == k``.
    """
    total = sum(len(r) for r in readers)
    if not 1 <= k <= total:
        raise InputError(f"k must be in [1, {total}], got {k}")
    los = [0] * len(readers)
    his = [len(r) for r in readers]
    # Each round strictly shrinks the largest window, so this many
    # rounds is unreachable for a correct search; hitting it means a
    # run was not sorted.
    budget = 4 * sum(max(1, h).bit_length() for h in his) + 8
    value = None
    lefts = rights = None
    for _ in range(budget):
        sizes = [hi - lo for lo, hi in zip(los, his)]
        t = max(range(len(readers)), key=lambda i: sizes[i])
        if sizes[t] <= 0:
            break
        mid = (los[t] + his[t]) // 2
        pivot = readers[t][mid]
        lefts = [int(np.searchsorted(r, pivot, side="left")) for r in readers]
        rights = [int(np.searchsorted(r, pivot, side="right")) for r in readers]
        below, through = sum(lefts), sum(rights)
        if below < k <= through:
            value = pivot
            break
        if below >= k:
            # k-th value is strictly below the pivot: discard >= pivot.
            his = [min(h, le) for h, le in zip(his, lefts)]
        else:
            # k-th value is strictly above the pivot: discard <= pivot.
            los = [max(lo, ri) for lo, ri in zip(los, rights)]
    if value is None:
        raise AssertionError(
            "k-th selection over runs failed to converge (unsorted run?)"
        )
    splits = list(lefts)
    remaining = k - sum(splits)
    for t, r in enumerate(readers):
        if remaining <= 0:
            break
        take = min(rights[t] - lefts[t], remaining)
        splits[t] += take
        remaining -= take
    if remaining != 0:  # pragma: no cover - guarded by the rank checks
        raise AssertionError("rank bookkeeping failed")
    return value, splits


def plan_blocks(
    runs: Sequence[RunFile],
    block_elements: int,
    *,
    io: IOCounter | None = None,
) -> MergePlan:
    """Plan the k-way merge of ``runs`` into ≤ ``block_elements`` blocks.

    Boundary ranks are equispaced over the union (so block lengths are
    ``⌊total/blocks⌋`` or ``⌈total/blocks⌉``), located with
    :func:`kth_of_runs` over the run memmaps.  The probe cost —
    elements actually pulled from disk while planning — is charged to
    ``io`` and recorded on the plan for the I/O report.
    """
    check_positive(block_elements, "block_elements")
    if not runs:
        raise InputError("need at least one run to plan a merge")
    lengths = [r.length for r in runs]
    total = sum(lengths)
    readers = [r.open_memmap() for r in runs]
    blocks = max(1, -(-total // block_elements))
    cuts: list[list[int]] = [[0] * len(runs)]
    probes = 0
    for j in range(1, blocks):
        rank = (j * total) // blocks
        if rank <= 0:
            cuts.append([0] * len(runs))
        elif rank >= total:
            cuts.append(list(lengths))
        else:
            _, splits = kth_of_runs(readers, rank)
            # one pivot element per search round, ~log2(total) rounds:
            # nominal planning I/O, charged so the report stays honest.
            probes += max(1, total.bit_length())
            cuts.append(splits)
    cuts.append(list(lengths))
    # Ranks are non-decreasing and ties distribute earlier-run-first,
    # so per-run splits must be monotone.
    for t in range(len(runs)):
        col = [row[t] for row in cuts]
        assert all(x <= y for x, y in zip(col, col[1:])), "non-monotone cuts"
    if io is not None and probes:
        io.charge_read(probes)
    offsets = [sum(row) for row in cuts]
    plan = MergePlan(
        cuts=tuple(tuple(row) for row in cuts),
        offsets=tuple(offsets),
        total=total,
        probe_elements=probes,
    )
    plan.validate(lengths)
    return plan
