"""Run formation: memory-sized sorted runs spilled to disk.

A :class:`RunFile` wraps one sorted run stored as a raw little-endian
numpy file (``.npy``), exposing the windowed chunk reader the merge
passes feed from.  Temporary files are owned by the caller-supplied
directory (or a ``TemporaryDirectory`` created by
:func:`repro.external.sort.external_sort`, which cleans up).
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..errors import InputError
from ..validation import check_positive
from .io_model import IOCounter

__all__ = ["RunFile", "form_runs"]


@dataclass(frozen=True, slots=True)
class RunFile:
    """One sorted run on disk."""

    path: str
    length: int
    dtype: str

    def read_chunks(
        self, chunk_elements: int, io: IOCounter | None = None
    ) -> Iterator[np.ndarray]:
        """Yield the run as sorted chunks of ``chunk_elements``.

        Uses a memory map so only the touched window is resident;
        charges ``io`` per chunk read.
        """
        check_positive(chunk_elements, "chunk_elements")
        mm = np.load(self.path, mmap_mode="r")
        for lo in range(0, self.length, chunk_elements):
            chunk = np.array(mm[lo : lo + chunk_elements])  # materialize window
            if io is not None:
                io.charge_read(len(chunk))
            yield chunk

    def open_memmap(self) -> np.ndarray:
        """Read-only memory map of the run.

        Nothing is resident until touched; binary searches
        (``np.searchsorted``) over the map cost ``O(log n)`` page
        touches, which is what the SPM merge planner
        (:mod:`repro.external.planner`) exploits to plan block
        boundaries without loading runs.
        """
        return np.load(self.path, mmap_mode="r")

    def read_range(
        self, lo: int, hi: int, io: IOCounter | None = None
    ) -> np.ndarray:
        """Materialize the window ``[lo, hi)`` (charged to ``io``).

        The block-merge workers use this to pull exactly their planned
        key-range window of each run into memory — the disk analogue of
        Algorithm 2's cache-resident segment windows.
        """
        if not 0 <= lo <= hi <= self.length:
            raise InputError(
                f"window [{lo}, {hi}) out of bounds for run of "
                f"length {self.length}"
            )
        mm = np.load(self.path, mmap_mode="r")
        window = np.array(mm[lo:hi])  # materialize; drop the map
        if io is not None:
            io.charge_read(len(window))
        return window

    def unlink(self) -> None:
        """Delete the backing file (idempotent: missing files are fine)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def read_all(self) -> np.ndarray:
        """Whole run (tests / final small outputs only)."""
        return np.load(self.path)


def _write_run(data: np.ndarray, directory: str, io: IOCounter | None) -> RunFile:
    path = os.path.join(directory, f"run-{uuid.uuid4().hex}.npy")
    np.save(path, data)
    try:
        if io is not None:
            io.charge_write(len(data))
    except BaseException:
        os.unlink(path)  # the charge failed after the spill: no orphan
        raise
    return RunFile(path=path, length=len(data), dtype=str(data.dtype))


def form_runs(
    data: np.ndarray | Iterable,
    memory_elements: int,
    directory: str,
    *,
    io: IOCounter | None = None,
) -> list[RunFile]:
    """Split ``data`` into sorted runs of at most ``memory_elements``.

    ``data`` may be an array (charged as read from disk, the external
    model's input cost) or any iterable of scalars/chunks.  Each run is
    sorted in memory (``np.sort``) and spilled.
    """
    check_positive(memory_elements, "memory_elements")
    if not os.path.isdir(directory):
        raise InputError(f"run directory {directory!r} does not exist")
    runs: list[RunFile] = []

    try:
        if isinstance(data, np.ndarray):
            if data.ndim != 1:
                raise InputError("external sort input must be 1-D")
            for lo in range(0, len(data), memory_elements):
                chunk = data[lo : lo + memory_elements]
                if io is not None:
                    io.charge_read(len(chunk))
                runs.append(_write_run(np.sort(chunk, kind="mergesort"),
                                       directory, io))
            return runs

        buffer: list = []
        count = 0
        for item in data:
            values = np.atleast_1d(np.asarray(item))
            for v in values:
                buffer.append(v)
                count += 1
                if count >= memory_elements:
                    arr = np.asarray(buffer)
                    if io is not None:
                        io.charge_read(len(arr))
                    runs.append(_write_run(np.sort(arr, kind="mergesort"),
                                           directory, io))
                    buffer = []
                    count = 0
        if buffer:
            arr = np.asarray(buffer)
            if io is not None:
                io.charge_read(len(arr))
            runs.append(_write_run(np.sort(arr, kind="mergesort"),
                                   directory, io))
        return runs
    except BaseException:
        # Don't leak already-spilled runs into the caller's directory
        # when formation dies mid-way (e.g. disk full).
        for run in runs:
            run.unlink()
        raise
