"""External merge sort: run formation + multi-way streaming merge passes.

The merge pass feeds every input run through an ``L``-element window
(Algorithm 2's cyclic buffer pointed at files instead of caches) into a
loser-free k-way merge: pairwise merge-path merges arranged as a
tournament would also work, but a single k-way pass over ``fan_in``
runs halves the number of disk passes, which is what the I/O model
rewards.  ``fan_in`` defaults to ``memory // (2L)`` so all windows plus
the output buffer fit in the memory budget.
"""

from __future__ import annotations

import heapq
import os
import tempfile
import uuid

import numpy as np

from ..errors import InputError
from ..validation import check_positive
from .io_model import IOCounter
from .runs import RunFile, form_runs

__all__ = ["external_sort", "merge_run_files"]


class _RunCursor:
    """Chunked reader over one run with a one-chunk window."""

    def __init__(self, run: RunFile, chunk_elements: int, io: IOCounter | None):
        self._chunks = run.read_chunks(chunk_elements, io)
        self._buf: np.ndarray | None = None
        self._pos = 0
        self._advance_chunk()

    def _advance_chunk(self) -> None:
        try:
            self._buf = next(self._chunks)
            self._pos = 0
        except StopIteration:
            self._buf = None

    @property
    def exhausted(self) -> bool:
        return self._buf is None

    def head(self):
        assert self._buf is not None
        return self._buf[self._pos]

    def pop(self):
        assert self._buf is not None
        v = self._buf[self._pos]
        self._pos += 1
        if self._pos >= len(self._buf):
            self._advance_chunk()
        return v


def merge_run_files(
    runs: list[RunFile],
    directory: str,
    *,
    window_elements: int,
    io: IOCounter | None = None,
) -> RunFile:
    """k-way merge of sorted run files into one new run file.

    Ties across runs resolve by run order (run 0 first), consistent with
    the package-wide earlier-source-first rule.  Output is written in
    ``window_elements`` batches (charged to ``io``).
    """
    check_positive(window_elements, "window_elements")
    if not runs:
        raise InputError("need at least one run to merge")
    if len(runs) == 1:
        return runs[0]

    cursors = [_RunCursor(r, window_elements, io) for r in runs]
    # heap of (value, run_index); run_index breaks ties by source order
    heap = [
        (c.head(), t) for t, c in enumerate(cursors) if not c.exhausted
    ]
    heapq.heapify(heap)

    total = sum(r.length for r in runs)
    dtype = np.result_type(*[np.dtype(r.dtype) for r in runs])
    out_path = os.path.join(directory, f"merge-{uuid.uuid4().hex}.npy")
    out = np.lib.format.open_memmap(
        out_path, mode="w+", dtype=dtype, shape=(total,)
    )
    written = 0
    pending = 0
    while heap:
        value, t = heapq.heappop(heap)
        out[written] = cursors[t].pop()
        written += 1
        pending += 1
        if pending >= window_elements:
            if io is not None:
                io.charge_write(pending)
            pending = 0
        if not cursors[t].exhausted:
            heapq.heappush(heap, (cursors[t].head(), t))
    if pending and io is not None:
        io.charge_write(pending)
    out.flush()
    del out
    return RunFile(path=out_path, length=total, dtype=str(dtype))


def external_sort(
    data: np.ndarray,
    memory_elements: int,
    *,
    directory: str | None = None,
    window_elements: int | None = None,
    fan_in: int | None = None,
    io: IOCounter | None = None,
) -> np.ndarray:
    """Sort an array larger than the memory budget via disk runs.

    Parameters
    ----------
    data:
        Input array (stands in for the unsorted input file).
    memory_elements:
        The in-memory working budget ``M``: run size, and the cap on
        ``fan_in * window + output window`` during merge passes.
    directory:
        Spill directory; a temporary directory (cleaned up) by default.
    window_elements:
        Per-run read window ``L`` during merges (default ``M // 8``,
        min 1).
    fan_in:
        Runs merged per pass (default: as many as the windows allow).
    io:
        Optional :class:`~repro.external.io_model.IOCounter`.

    Returns
    -------
    numpy.ndarray
        The sorted data (loaded from the final run).
    """
    check_positive(memory_elements, "memory_elements")
    if window_elements is None:
        window_elements = max(1, memory_elements // 8)
    if fan_in is None:
        fan_in = max(2, memory_elements // (2 * window_elements))
    if fan_in < 2:
        raise InputError("fan_in must be >= 2")

    with tempfile.TemporaryDirectory() as tmp:
        workdir = directory or tmp
        runs = form_runs(data, memory_elements, workdir, io=io)
        if not runs:
            return np.array([], dtype=data.dtype if hasattr(data, "dtype")
                            else np.float64)
        # merge passes until a single run remains
        while len(runs) > 1:
            next_runs: list[RunFile] = []
            for lo in range(0, len(runs), fan_in):
                group = runs[lo : lo + fan_in]
                next_runs.append(
                    merge_run_files(
                        group, workdir, window_elements=window_elements, io=io
                    )
                )
            runs = next_runs
        return runs[0].read_all()
