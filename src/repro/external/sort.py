"""External merge sort: run formation + multi-way streaming merge passes.

The merge pass feeds every input run through an ``L``-element window
(Algorithm 2's cyclic buffer pointed at files instead of caches) into a
loser-free k-way merge: pairwise merge-path merges arranged as a
tournament would also work, but a single k-way pass over ``fan_in``
runs halves the number of disk passes, which is what the I/O model
rewards.  ``fan_in`` defaults to ``memory // (2L)`` so all windows plus
the output buffer fit in the memory budget.
"""

from __future__ import annotations

import heapq
import os
import tempfile
import uuid

import numpy as np

from ..errors import InputError
from ..validation import check_positive
from .io_model import IOCounter
from .runs import RunFile, form_runs

__all__ = ["external_sort", "merge_run_files"]


class _RunCursor:
    """Chunked reader over one run with a one-chunk window."""

    def __init__(self, run: RunFile, chunk_elements: int, io: IOCounter | None):
        self._chunks = run.read_chunks(chunk_elements, io)
        self._buf: np.ndarray | None = None
        self._pos = 0
        self._advance_chunk()

    def _advance_chunk(self) -> None:
        try:
            self._buf = next(self._chunks)
            self._pos = 0
        except StopIteration:
            self._buf = None

    @property
    def exhausted(self) -> bool:
        return self._buf is None

    def head(self):
        assert self._buf is not None
        return self._buf[self._pos]

    def pop(self):
        assert self._buf is not None
        v = self._buf[self._pos]
        self._pos += 1
        if self._pos >= len(self._buf):
            self._advance_chunk()
        return v


def merge_run_files(
    runs: list[RunFile],
    directory: str,
    *,
    window_elements: int,
    io: IOCounter | None = None,
) -> RunFile:
    """k-way merge of sorted run files into one new run file.

    Ties across runs resolve by run order (run 0 first), consistent with
    the package-wide earlier-source-first rule.  Output is written in
    ``window_elements`` batches (charged to ``io``).
    """
    check_positive(window_elements, "window_elements")
    if not runs:
        raise InputError("need at least one run to merge")
    if len(runs) == 1:
        return runs[0]

    cursors = [_RunCursor(r, window_elements, io) for r in runs]
    # heap of (value, run_index); run_index breaks ties by source order
    heap = [
        (c.head(), t) for t, c in enumerate(cursors) if not c.exhausted
    ]
    heapq.heapify(heap)

    total = sum(r.length for r in runs)
    dtype = np.result_type(*[np.dtype(r.dtype) for r in runs])
    out_path = os.path.join(directory, f"merge-{uuid.uuid4().hex}.npy")
    out = np.lib.format.open_memmap(
        out_path, mode="w+", dtype=dtype, shape=(total,)
    )
    try:
        written = 0
        pending = 0
        while heap:
            value, t = heapq.heappop(heap)
            out[written] = cursors[t].pop()
            written += 1
            pending += 1
            if pending >= window_elements:
                if io is not None:
                    io.charge_write(pending)
                pending = 0
            if not cursors[t].exhausted:
                heapq.heappush(heap, (cursors[t].head(), t))
        if pending and io is not None:
            io.charge_write(pending)
        out.flush()
        del out
    except BaseException:
        # A merge that dies mid-way must not leak its partial output
        # into the caller's directory (the memmap handle first, so the
        # unlink is effective on every platform).
        del out
        try:
            os.unlink(out_path)
        except FileNotFoundError:
            pass
        raise
    return RunFile(path=out_path, length=total, dtype=str(dtype))


def external_sort(
    data: np.ndarray,
    memory_elements: int,
    *,
    directory: str | None = None,
    window_elements: int | None = None,
    fan_in: int | None = None,
    io: IOCounter | None = None,
    parallel: bool = False,
    backend="processes",
    workers: int | None = None,
    kernel: str = "auto",
    block_elements: int | None = None,
    resilience=None,
    telemetry=None,
    trace=None,
    metrics=None,
) -> np.ndarray:
    """Sort an array larger than the memory budget via disk runs.

    Parameters
    ----------
    data:
        Input array (stands in for the unsorted input file).
    memory_elements:
        The in-memory working budget ``M``: run size, and the cap on
        ``fan_in * window + output window`` during merge passes.
    directory:
        Spill directory; a temporary directory (cleaned up) by default.
        On failure every intermediate file this call created is
        unlinked, so a caller-supplied directory is left clean; on
        success the final sorted run file remains (intermediates are
        reclaimed as each pass consumes them).
    window_elements:
        Per-run read window ``L`` during merges (default ``M // 8``,
        min 1).  Serial path only.
    fan_in:
        Runs merged per pass (default: as many as the windows allow on
        the serial path; all runs at once on the parallel path).
    io:
        Optional :class:`~repro.external.io_model.IOCounter`.
    parallel:
        Route through the SPM-planned batched pipeline
        (:func:`repro.external.parallel.external_sort_file`): run
        formation and block merges fan out over ``backend`` as
        :class:`~repro.backends.TaskBatch` dispatches, with merge-path
        planned, memory-budgeted, idempotent block merges replacing the
        element-at-a-time heap.
    backend, workers, kernel, block_elements, resilience, telemetry, \
trace, metrics:
        Parallel-path execution surface, forwarded to
        :func:`~repro.external.parallel.external_sort_file`.

    Returns
    -------
    numpy.ndarray
        The sorted data (loaded from the final run).
    """
    check_positive(memory_elements, "memory_elements")
    if parallel:
        return _external_sort_parallel(
            data, memory_elements, directory=directory, fan_in=fan_in,
            io=io, backend=backend, workers=workers, kernel=kernel,
            block_elements=block_elements, resilience=resilience,
            telemetry=telemetry, trace=trace, metrics=metrics,
        )
    if window_elements is None:
        window_elements = max(1, memory_elements // 8)
    if fan_in is None:
        fan_in = max(2, memory_elements // (2 * window_elements))
    if fan_in < 2:
        raise InputError("fan_in must be >= 2")

    with tempfile.TemporaryDirectory() as tmp:
        workdir = directory or tmp
        created: list[RunFile] = []
        try:
            runs = form_runs(data, memory_elements, workdir, io=io)
            created.extend(runs)
            if not runs:
                return np.array([], dtype=data.dtype if hasattr(data, "dtype")
                                else np.float64)
            # merge passes until a single run remains
            while len(runs) > 1:
                next_runs: list[RunFile] = []
                for lo in range(0, len(runs), fan_in):
                    group = runs[lo : lo + fan_in]
                    merged = merge_run_files(
                        group, workdir, window_elements=window_elements, io=io
                    )
                    created.append(merged)
                    next_runs.append(merged)
                # Consumed inputs are dead weight on disk now; reclaim
                # them (a 1-run group passes through — don't touch it).
                carried = {r.path for r in next_runs}
                for r in runs:
                    if r.path not in carried:
                        r.unlink()
                runs = next_runs
            return runs[0].read_all()
        except BaseException:
            # Leave caller-supplied directories clean on failure: unlink
            # every run/merge file this call created (idempotent).
            for r in created:
                r.unlink()
            raise


def _external_sort_parallel(
    data: np.ndarray,
    memory_elements: int,
    *,
    directory: str | None,
    fan_in: int | None,
    io: IOCounter | None,
    backend,
    workers: int | None,
    kernel: str,
    block_elements: int | None,
    resilience,
    telemetry,
    trace,
    metrics,
) -> np.ndarray:
    """Stage ``data`` to a file and run the SPM-planned parallel sort."""
    from ..validation import as_array
    from .parallel import external_sort_file

    arr = as_array(data, "data")
    if len(arr) == 0:
        return np.array([], dtype=arr.dtype)
    with tempfile.TemporaryDirectory() as tmp:
        workdir = directory or tmp
        in_path = os.path.join(workdir, f"extsort-in-{uuid.uuid4().hex}.npy")
        # Staging stands in for the input file already living on disk;
        # the run-formation workers charge its read, so the write is
        # not charged to ``io``.
        np.save(in_path, arr)
        try:
            final, _report = external_sort_file(
                in_path,
                memory_elements=memory_elements,
                directory=workdir,
                fan_in=fan_in,
                block_elements=block_elements,
                io=io,
                backend=backend,
                workers=workers,
                kernel=kernel,
                resilience=resilience,
                telemetry=telemetry,
                trace=trace,
                metrics=metrics,
            )
        finally:
            try:
                os.unlink(in_path)
            except FileNotFoundError:
                pass
        return final.read_all()
