"""SIMT-style blocked merge — the paper's GPU legacy, modeled.

Merge Path's lasting impact is in GPU libraries (moderngpu, CUB,
Thrust), which apply the diagonal-search partition at *two levels*:

1. **grid level** — one search per tile boundary splits the merge into
   tiles of ``NV = threads_per_block x items_per_thread`` outputs, each
   assigned to one thread block;
2. **block level** — the tile's A/B ranges are staged into shared
   memory, then each of the block's threads searches its own diagonal
   *within the tile* and serially merges exactly ``items_per_thread``
   elements.

This package implements that execution model faithfully enough to
reason about it on a CPU: :func:`repro.gpu.blocked_merge.blocked_merge`
produces the identical stable merge while counting the quantities GPU
authors optimize — global loads, shared-memory traffic, search probes
per level, and the guaranteed-uniform per-thread work that makes the
scheme SIMT-friendly (no divergence across threads in steps, only in
data).
"""

from .model import GPUSpec, default_gpu
from .blocked_merge import blocked_merge, plan_tiles, KernelStats, TilePlan
from .blocked_sort import blocked_sort, SortKernelStats

__all__ = [
    "GPUSpec",
    "default_gpu",
    "blocked_merge",
    "plan_tiles",
    "KernelStats",
    "TilePlan",
    "blocked_sort",
    "SortKernelStats",
]
