"""Two-level (grid + block) merge-path merge, moderngpu-style.

The structure per tile, mirroring ``DeviceMerge`` kernels:

1. grid-level diagonal searches place tile boundaries every ``NV``
   outputs (done for all tiles at once with the vectorized lockstep
   search — exactly how a partition kernel runs one thread per tile);
2. the tile's A and B ranges (``<= NV`` elements combined) are staged
   into "shared memory" (here: local copies, counted as global loads);
3. each thread binary-searches its diagonal within the staged tile
   (``items_per_thread``-spaced) — shared-memory probes;
4. each thread serially merges exactly ``items_per_thread`` outputs
   (except the ragged last thread of the last tile) — uniform work, no
   SIMT divergence in trip counts.

:class:`KernelStats` reports the traffic/probe counters that GPU papers
tabulate; correctness is bit-identical to every other merge in the
package (stable, A before equal B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.merge_path import (
    diagonal_intersection,
    diagonal_intersections_vectorized,
    max_search_steps,
)
from ..core.sequential import result_dtype
from ..validation import as_array, check_mergeable
from .model import GPUSpec, default_gpu

__all__ = ["TilePlan", "KernelStats", "plan_tiles", "blocked_merge"]


@dataclass(frozen=True, slots=True)
class TilePlan:
    """One thread block's assignment: global A/B/output ranges."""

    tile: int
    a_start: int
    a_end: int
    b_start: int
    b_end: int
    out_start: int
    out_end: int

    @property
    def staged_elements(self) -> int:
        """Elements loaded into shared memory for this tile."""
        return (self.a_end - self.a_start) + (self.b_end - self.b_start)


@dataclass(slots=True)
class KernelStats:
    """Counters of the modeled kernel execution."""

    tiles: int = 0
    grid_search_probes: int = 0
    block_search_probes: int = 0
    global_loads: int = 0
    shared_loads: int = 0
    global_stores: int = 0
    thread_steps: list[int] = field(default_factory=list)

    @property
    def max_thread_steps(self) -> int:
        """Serial merge steps of the busiest thread (uniformity check:
        equals ``items_per_thread`` except for the ragged tail)."""
        return max(self.thread_steps, default=0)


def plan_tiles(
    a: np.ndarray, b: np.ndarray, spec: GPUSpec, stats: KernelStats | None = None
) -> list[TilePlan]:
    """Grid-level partition: one merge-path search per tile boundary."""
    n = len(a) + len(b)
    nv = spec.tile_size
    tiles = max(1, -(-n // nv))
    boundaries = [min(t * nv, n) for t in range(tiles + 1)]
    interior = [d for d in boundaries[1:-1]]
    if interior:
        ivals = diagonal_intersections_vectorized(a, b, interior)
    else:
        ivals = np.array([], dtype=np.int64)
    if stats is not None:
        stats.tiles = tiles
        stats.grid_search_probes += len(interior) * max_search_steps(
            len(a), len(b)
        )
    points = [(0, 0)]
    for d, i in zip(interior, ivals):
        points.append((int(i), int(d - i)))
    points.append((len(a), len(b)))
    plans = []
    for t, ((i0, j0), (i1, j1)) in enumerate(zip(points, points[1:])):
        plans.append(
            TilePlan(
                tile=t,
                a_start=i0, a_end=i1,
                b_start=j0, b_end=j1,
                out_start=boundaries[t], out_end=boundaries[t + 1],
            )
        )
    return plans


def blocked_merge(
    a: Sequence | np.ndarray,
    b: Sequence | np.ndarray,
    spec: GPUSpec | None = None,
    *,
    check: bool = True,
    collect_stats: bool = True,
) -> tuple[np.ndarray, KernelStats]:
    """Merge with the two-level GPU execution model.

    Returns ``(merged, stats)``.  The merge is computed tile by tile;
    within a tile, thread segments are found with diagonal searches over
    the staged (shared-memory) window and merged serially — per-thread
    numpy slicing keeps this fast enough to run at millions of elements
    while the counters stay exact.
    """
    spec = spec or default_gpu()
    a = as_array(a, "A")
    b = as_array(b, "B")
    if check:
        check_mergeable(a, b)
    n = len(a) + len(b)
    out = np.empty(n, dtype=result_dtype(a, b))
    stats = KernelStats()
    if n == 0:
        return out, stats

    plans = plan_tiles(a, b, spec, stats if collect_stats else None)
    vt = spec.items_per_thread
    for plan in plans:
        # stage the tile into "shared memory" (counted as global loads)
        sa = a[plan.a_start : plan.a_end]
        sb = b[plan.b_start : plan.b_end]
        if collect_stats:
            stats.global_loads += plan.staged_elements
        tile_n = plan.out_end - plan.out_start
        # block-level thread partition over the staged window
        thread_ds = list(range(0, tile_n, vt)) + [tile_n]
        bound = max_search_steps(len(sa), len(sb))
        prev = (0, 0)
        for k, d in enumerate(thread_ds[1:]):
            pt = diagonal_intersection(sa, sb, d)
            i0, j0 = prev
            i1, j1 = pt.i, pt.j
            seg_out = out[
                plan.out_start + thread_ds[k] : plan.out_start + d
            ]
            _serial_thread_merge(sa[i0:i1], sb[j0:j1], seg_out)
            if collect_stats:
                steps = (i1 - i0) + (j1 - j0)
                stats.thread_steps.append(steps)
                stats.block_search_probes += bound
                stats.shared_loads += 2 * steps  # reads during the merge
                stats.global_stores += steps
            prev = (i1, j1)
    return out, stats


def _serial_thread_merge(sa: np.ndarray, sb: np.ndarray, seg_out: np.ndarray) -> None:
    """One thread's serial merge of its ≤ VT items (vectorized here —
    the *step count* is what the model tracks, not the host loop)."""
    if len(sa) == 0:
        seg_out[:] = sb
        return
    if len(sb) == 0:
        seg_out[:] = sa
        return
    pos_a = np.arange(len(sa), dtype=np.intp) + np.searchsorted(sb, sa, side="left")
    pos_b = np.arange(len(sb), dtype=np.intp) + np.searchsorted(sa, sb, side="right")
    seg_out[pos_a] = sa
    seg_out[pos_b] = sb
