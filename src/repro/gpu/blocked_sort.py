"""SIMT merge sort: CTA-local sorts + rounds of blocked merges.

The complete moderngpu ``mergesort`` shape, continuing
:mod:`repro.gpu.blocked_merge`:

1. **block-sort kernel** — each thread block loads a tile of ``NV``
   elements into shared memory and sorts it.  Real kernels sort with a
   bitonic/odd-even network or a register-blocked mergesort; we model
   the network (for depth/comparator accounting) and perform the data
   movement with numpy.
2. **merge rounds** — ``log2(tiles)`` launches of the blocked merge,
   doubling run lengths each round.  Every launch is a full grid-level
   diagonal partition + per-tile two-level merge, exactly as in
   :func:`~repro.gpu.blocked_merge.blocked_merge`.

:class:`SortKernelStats` accumulates per-launch counters so the cost
anatomy (how much traffic each round moves, how the tile count decays)
is visible — the numbers GPU papers put in their kernel tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..baselines.bitonic import bitonic_network, comparator_count, network_depth
from ..validation import as_array
from .blocked_merge import KernelStats, blocked_merge
from .model import GPUSpec, default_gpu

__all__ = ["SortKernelStats", "blocked_sort"]


@dataclass(slots=True)
class SortKernelStats:
    """Counters across the whole sort (block sort + merge rounds)."""

    tiles: int = 0
    block_sort_comparators: int = 0
    block_sort_depth: int = 0
    merge_rounds: int = 0
    round_stats: list[KernelStats] = field(default_factory=list)

    @property
    def total_global_loads(self) -> int:
        return self.tiles_elements + sum(
            s.global_loads for s in self.round_stats
        )

    tiles_elements: int = 0


def blocked_sort(
    x,
    spec: GPUSpec | None = None,
    *,
    collect_stats: bool = True,
) -> tuple[np.ndarray, SortKernelStats]:
    """Sort with the SIMT execution model; returns (sorted, stats).

    Values-only (not stable — the block sorter is a bitonic network,
    like early GPU mergesorts; moderngpu later moved to stable
    register mergesorts).
    """
    spec = spec or default_gpu()
    arr = as_array(x, "x").copy()
    n = len(arr)
    stats = SortKernelStats()
    if n <= 1:
        return arr, stats

    nv = spec.tile_size
    tiles = -(-n // nv)
    stats.tiles = tiles
    stats.tiles_elements = n

    # --- block-sort launch: each tile sorted in "shared memory" -------
    net_size = 1 << math.ceil(math.log2(min(nv, max(2, n))))
    network = bitonic_network(net_size)
    if collect_stats:
        stats.block_sort_comparators = tiles * comparator_count(network)
        stats.block_sort_depth = network_depth(network)
    runs: list[np.ndarray] = []
    for t in range(tiles):
        tile = arr[t * nv : (t + 1) * nv]
        runs.append(np.sort(tile, kind="mergesort"))

    # --- merge rounds: blocked merges, doubling run lengths ----------
    while len(runs) > 1:
        stats.merge_rounds += 1
        nxt: list[np.ndarray] = []
        round_totals = KernelStats()
        for i in range(0, len(runs) - 1, 2):
            merged, ks = blocked_merge(
                runs[i], runs[i + 1], spec, check=False,
                collect_stats=collect_stats,
            )
            nxt.append(merged)
            if collect_stats:
                round_totals.tiles += ks.tiles
                round_totals.grid_search_probes += ks.grid_search_probes
                round_totals.block_search_probes += ks.block_search_probes
                round_totals.global_loads += ks.global_loads
                round_totals.shared_loads += ks.shared_loads
                round_totals.global_stores += ks.global_stores
                round_totals.thread_steps.extend(ks.thread_steps)
        if len(runs) % 2:
            nxt.append(runs[-1])
        runs = nxt
        if collect_stats:
            stats.round_stats.append(round_totals)
    return runs[0], stats
