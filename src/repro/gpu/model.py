"""Lightweight GPU execution-model parameters."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InputError

__all__ = ["GPUSpec", "default_gpu"]


@dataclass(frozen=True, slots=True)
class GPUSpec:
    """The tuning triple every merge-path GPU kernel is templated on.

    Attributes
    ----------
    threads_per_block:
        CTA width (a multiple of the warp size on real hardware).
    items_per_thread:
        ``VT`` in moderngpu's nomenclature: how many outputs one thread
        merges serially from shared memory.
    shared_limit_elements:
        Shared-memory capacity per block, in elements.  The tile's
        staged A+B window (``NV`` elements) must fit.
    """

    threads_per_block: int = 128
    items_per_thread: int = 7
    shared_limit_elements: int = 4096

    def __post_init__(self) -> None:
        if self.threads_per_block < 1 or self.items_per_thread < 1:
            raise InputError("threads_per_block and items_per_thread must be >= 1")
        if self.tile_size > self.shared_limit_elements:
            raise InputError(
                f"tile of {self.tile_size} elements exceeds shared memory "
                f"capacity {self.shared_limit_elements}"
            )

    @property
    def tile_size(self) -> int:
        """``NV``: outputs per block per kernel launch."""
        return self.threads_per_block * self.items_per_thread


def default_gpu() -> GPUSpec:
    """moderngpu's classic 128x7 tuning."""
    return GPUSpec(threads_per_block=128, items_per_thread=7,
                   shared_limit_elements=4096)
