"""Machine models: hardware specs and the analytic timing model.

The paper's measurements ran on a Dell T610 (two six-core Xeon X5670
processors).  :mod:`repro.machine.specs` encodes that machine (and a
Hypercore-like shared-L1 many-core) as data; :mod:`repro.machine.timing`
prices PRAM operation counts on a spec — a documented roofline model
(compute throughput vs memory bandwidth, plus the partition's log-term)
that converts the architecture-independent counts from
:mod:`repro.pram` into the architecture-specific speedup curves of
Figure 5.
"""

from .specs import MachineSpec, dell_t610, hypercore_like, laptop_generic
from .timing import TimingModel, MergeTimings

__all__ = [
    "MachineSpec",
    "dell_t610",
    "hypercore_like",
    "laptop_generic",
    "TimingModel",
    "MergeTimings",
]
