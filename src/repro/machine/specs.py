"""Hardware specifications as data.

Numbers for :func:`dell_t610` follow Section VI of the paper: two Intel
X5670 processors (6 cores each, hyper-threading and turbo disabled),
32 KB private L1D, 256 KB private L2, 12 MB shared L3 per socket,
6.4 GT/s QPI, 12 GB DDR3.  Sustained memory bandwidth is not stated in
the paper; 24 GB/s per socket is a standard sustained triple-channel
DDR3 figure for Westmere-EP and is (with the small large-page derate)
the calibrated constant of the Figure 5 reproduction (EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InputError

__all__ = ["MachineSpec", "dell_t610", "hypercore_like", "laptop_generic"]


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """Static description of a shared-memory machine.

    Attributes
    ----------
    name:
        Display name.
    sockets, cores_per_socket:
        Topology; ``total_cores`` is their product.
    clock_hz:
        Core clock (turbo disabled, as in the paper's setup).
    l1d_bytes, l2_bytes:
        Private per-core cache capacities.
    l3_bytes:
        Shared per-socket last-level cache capacity.
    line_bytes:
        Cache-line size used by the cache simulator.
    dram_bw_bytes_s:
        Sustained DRAM bandwidth *per socket* (memory interleaved across
        sockets, so total bandwidth scales with socket count).
    l3_bw_bytes_s:
        Aggregate bandwidth when the working set fits in L3.
    bw_droop_per_doubling:
        Fractional bandwidth loss per doubling of the working set beyond
        L3 capacity (TLB/page-walk/row-miss effects); produces the
        paper's mild speedup reduction for the largest arrays.
    """

    name: str
    sockets: int
    cores_per_socket: int
    clock_hz: float
    l1d_bytes: int
    l2_bytes: int
    l3_bytes: int
    line_bytes: int
    dram_bw_bytes_s: float
    l3_bw_bytes_s: float
    bw_droop_per_doubling: float = 0.01

    def __post_init__(self) -> None:
        for field_name in ("sockets", "cores_per_socket", "l1d_bytes",
                           "l2_bytes", "l3_bytes", "line_bytes"):
            if getattr(self, field_name) < 1:
                raise InputError(f"{field_name} must be >= 1")
        if self.clock_hz <= 0 or self.dram_bw_bytes_s <= 0 or self.l3_bw_bytes_s <= 0:
            raise InputError("rates must be positive")

    @property
    def total_cores(self) -> int:
        """All physical cores across sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def l3_total_bytes(self) -> int:
        """Combined last-level cache across sockets."""
        return self.sockets * self.l3_bytes

    @property
    def total_dram_bw_bytes_s(self) -> float:
        """Aggregate sustained DRAM bandwidth (interleaved allocation)."""
        return self.sockets * self.dram_bw_bytes_s


def dell_t610() -> MachineSpec:
    """The paper's evaluation platform (Section VI)."""
    return MachineSpec(
        name="Dell T610 (2x Xeon X5670)",
        sockets=2,
        cores_per_socket=6,
        clock_hz=2.93e9,
        l1d_bytes=32 * 1024,
        l2_bytes=256 * 1024,
        l3_bytes=12 * 1024 * 1024,
        line_bytes=64,
        dram_bw_bytes_s=24e9,
        l3_bw_bytes_s=120e9,
        bw_droop_per_doubling=0.03,
    )


def hypercore_like() -> MachineSpec:
    """A Plurality-Hypercore-like many-core with a shared low-level cache.

    Modeled as one socket of many simple cores sharing a 2 MB cache —
    the CREW-PRAM-like machine of the paper's Section VI last paragraph,
    used by the SPM experiments where cache behaviour dominates.
    """
    return MachineSpec(
        name="Hypercore-like shared-cache many-core",
        sockets=1,
        cores_per_socket=64,
        clock_hz=0.5e9,
        l1d_bytes=2 * 1024 * 1024,  # the shared cache, modeled at L1
        l2_bytes=2 * 1024 * 1024,
        l3_bytes=2 * 1024 * 1024,
        line_bytes=32,
        dram_bw_bytes_s=8e9,
        l3_bw_bytes_s=64e9,
        bw_droop_per_doubling=0.0,
    )


def laptop_generic() -> MachineSpec:
    """A generic 4-core laptop, for the examples' self-contained runs."""
    return MachineSpec(
        name="Generic quad-core laptop",
        sockets=1,
        cores_per_socket=4,
        clock_hz=3.0e9,
        l1d_bytes=48 * 1024,
        l2_bytes=1024 * 1024,
        l3_bytes=8 * 1024 * 1024,
        line_bytes=64,
        dram_bw_bytes_s=30e9,
        l3_bw_bytes_s=150e9,
        bw_droop_per_doubling=0.01,
    )
