"""Analytic timing model: PRAM counts → seconds on a MachineSpec.

A documented roofline model.  For a merge of ``N`` output elements on
``p`` cores of a :class:`~repro.machine.specs.MachineSpec`:

``T(p) = max(T_compute(p), T_memory(p)) + T_partition(p)``

* ``T_compute(p)`` — the slowest processor's counted PRAM cycles times
  ``seconds_per_op``.  Counted cycles come from
  :func:`repro.pram.merge_programs.counted_parallel_merge` (exact for
  the data), so load imbalance — were there any — would show up here.
* ``T_memory(p)`` — streamed bytes over the effective bandwidth.  A
  merge reads each input element once and writes each output element
  once (``traffic_bytes_per_element``, default 12 B for 32-bit ints:
  4 read + 4 read + 4 write, hardware prefetch assumed perfect as the
  paper's Section VI does).  Effective bandwidth is the L3 figure while
  the working set (``4·|A|·itemsize``, the paper's own accounting)
  fits in combined L3, else the DRAM figure derated by
  ``bw_droop_per_doubling`` per doubling beyond L3 — the mild,
  size-dependent term that reproduces Figure 5's droop for 64M/256M.
* ``T_partition(p)`` — the diagonal binary searches: depth
  ``log2(min(|A|,|B|))`` probes, each a dependent (unprefetchable) pair
  of loads priced at DRAM latency.  This is the ``+ log N`` term of the
  paper's time complexity, and is why single-thread Merge Path trails a
  raw sequential merge by a few percent (the REM6PCT experiment).

The model has one calibrated constant (sustained DRAM bandwidth, on the
spec) and one structural constant (``cycles_per_op``); everything else
is paper- or datasheet-derived.  EXPERIMENTS.md records the resulting
paper-vs-model deltas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InputError
from ..validation import check_positive
from .specs import MachineSpec

__all__ = ["TimingModel", "MergeTimings"]


@dataclass(frozen=True, slots=True)
class MergeTimings:
    """Per-phase modeled times (seconds) for one merge configuration."""

    p: int
    compute_s: float
    memory_s: float
    partition_s: float

    @property
    def total_s(self) -> float:
        """Roofline total: bound by the slower of compute and memory,
        plus the serial partition latency."""
        return max(self.compute_s, self.memory_s) + self.partition_s

    @property
    def bound(self) -> str:
        """Which roof binds: ``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_s >= self.memory_s else "memory"


class TimingModel:
    """Prices merge operation counts on a machine spec.

    Parameters
    ----------
    spec:
        Target machine.
    cycles_per_op:
        CPU cycles one counted PRAM cycle costs (covers address
        arithmetic, branch, loop overhead around each read/compare/
        write).  2.5 models a scalar in-order-ish merge loop at ~10
        cycles per merged element, consistent with measured scalar
        merges on Westmere.
    element_bytes:
        Input element size (4 for the paper's 32-bit integers).
    dram_latency_s:
        Latency of one dependent DRAM access (binary-search probes are
        pointer-chase-like).
    """

    def __init__(
        self,
        spec: MachineSpec,
        *,
        cycles_per_op: float = 2.5,
        element_bytes: int = 4,
        dram_latency_s: float = 90e-9,
    ) -> None:
        if cycles_per_op <= 0 or dram_latency_s < 0:
            raise InputError("cycles_per_op must be > 0 and latency >= 0")
        check_positive(element_bytes, "element_bytes")
        self.spec = spec
        self.cycles_per_op = cycles_per_op
        self.element_bytes = element_bytes
        self.dram_latency_s = dram_latency_s

    # ------------------------------------------------------------------
    @property
    def seconds_per_op(self) -> float:
        """Wall seconds per counted PRAM cycle on one core."""
        return self.cycles_per_op / self.spec.clock_hz

    def working_set_bytes(self, a_len: int, b_len: int) -> int:
        """Paper's accounting: ``4 · |A| · |type|`` for |A| == |B|;
        generally inputs + output."""
        return (2 * (a_len + b_len)) * self.element_bytes

    def effective_bandwidth(self, working_set_bytes: int) -> float:
        """Aggregate streaming bandwidth for a given working set."""
        spec = self.spec
        if working_set_bytes <= spec.l3_total_bytes:
            return spec.l3_bw_bytes_s
        doublings = math.log2(working_set_bytes / spec.l3_total_bytes)
        derate = 1.0 + spec.bw_droop_per_doubling * doublings
        return spec.total_dram_bw_bytes_s / derate

    # ------------------------------------------------------------------
    def merge_timings(
        self,
        a_len: int,
        b_len: int,
        p: int,
        *,
        max_cycles_per_processor: float | None = None,
        search_depth: int | None = None,
    ) -> MergeTimings:
        """Model one parallel merge.

        ``max_cycles_per_processor`` defaults to the perfectly balanced
        ideal (``(a_len + b_len) / p`` merge steps at 4 counted cycles
        each); pass the exact value from
        :class:`~repro.pram.merge_programs.CountedMerge` when data-exact
        counts are wanted.
        """
        check_positive(p, "p")
        if p > self.spec.total_cores:
            raise InputError(
                f"p={p} exceeds {self.spec.name!r} core count "
                f"{self.spec.total_cores}"
            )
        n = a_len + b_len
        if max_cycles_per_processor is None:
            # 4 counted cycles per two-sided merge step (see
            # repro.pram.merge_programs.MERGE_CYCLES_PER_ELEMENT).
            max_cycles_per_processor = 4.0 * math.ceil(n / p)
        compute_s = max_cycles_per_processor * self.seconds_per_op

        # Per output element: one input element read (4 B), plus the
        # output store with its write-allocate fill (4 + 4 B).
        traffic = 3 * n * self.element_bytes
        ws = self.working_set_bytes(a_len, b_len)
        memory_s = traffic / self.effective_bandwidth(ws)

        if search_depth is None:
            search_depth = (
                int(math.ceil(math.log2(min(a_len, b_len) + 1)))
                if min(a_len, b_len) > 0
                else 0
            )
        # Two searches per processor (own start + own end), each probe a
        # dependent load pair; searches across processors overlap, so
        # latency is paid once, not p times.
        partition_s = (0 if p == 1 else 2 * search_depth) * self.dram_latency_s
        return MergeTimings(
            p=p, compute_s=compute_s, memory_s=memory_s, partition_s=partition_s
        )

    def speedup(self, a_len: int, b_len: int, p: int) -> float:
        """Modeled speedup of Algorithm 1 vs its own single-thread run —
        the exact quantity Figure 5 plots."""
        t1 = self.merge_timings(a_len, b_len, 1).total_s
        tp = self.merge_timings(a_len, b_len, p).total_s
        return t1 / tp

    def speedup_series(
        self, a_len: int, b_len: int, ps: list[int]
    ) -> list[tuple[int, float]]:
        """Speedup at each processor count, as (p, speedup) pairs."""
        return [(p, self.speedup(a_len, b_len, p)) for p in ps]
