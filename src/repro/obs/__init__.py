"""Observability layer: tracing, metrics, and load-balance gauges.

The paper's claims are observable properties — equal partitions
(Theorem 14), an ``O(N/p + log N)`` split between diagonal search and
segment merge (Algorithm 1), cache-block behavior (Section IV).  This
package makes them visible with zero external dependencies:

* :mod:`repro.obs.tracer` — nested spans with lock-free per-worker
  buffers (``partition.search``, ``segment.merge``, ``spm.block``,
  ``sort.round``, ``backend.task``);
* :mod:`repro.obs.export` — Chrome trace-event JSON (loadable in
  ``chrome://tracing`` / Perfetto) and a text flame summary;
* :mod:`repro.obs.metrics` — the unified counter/gauge/histogram
  registry every subsystem (kernels, resilience, conformance chaos)
  feeds;
* :mod:`repro.obs.balance` — per-worker load shares and the Theorem 14
  work-spread gauge;
* :mod:`repro.obs.capture` — traced reference workloads behind the
  ``python -m repro trace`` CLI verb (imported lazily: it depends on
  :mod:`repro.core`);
* :mod:`repro.obs.bench` — the bench-regression emitter behind
  ``benchmarks/emit.py`` and ``python -m repro bench`` (also lazy).

Enable at any entry point with the ``trace=`` / ``metrics=`` keywords::

    from repro import parallel_merge
    from repro.obs import Tracer, MetricsRegistry, write_chrome_trace

    tracer, registry = Tracer(), MetricsRegistry()
    parallel_merge(a, b, p=4, trace=tracer, metrics=registry)
    write_chrome_trace(tracer, "trace.json")
    print(registry.snapshot())
"""

from .balance import (
    LoadBalanceReport,
    WorkerLoad,
    load_balance_from_trace,
    partition_work_spread,
    record_load_balance,
)
from .export import (
    chrome_trace,
    chrome_trace_events,
    flame_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, RegistryMergeStats
from .tracer import NULL_SPAN, NullSpan, Span, SpanRecord, Tracer

__all__ = [
    "Tracer",
    "Span",
    "SpanRecord",
    "NullSpan",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RegistryMergeStats",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "flame_summary",
    "LoadBalanceReport",
    "WorkerLoad",
    "load_balance_from_trace",
    "partition_work_spread",
    "record_load_balance",
]
