"""Load-balance gauges: the empirical witness of Theorem 14.

Corollary 7 / Theorem 14 promise that merge-path segments differ by at
most one output element — *perfect* static load balance.  This module
turns that claim into numbers you can watch:

* :func:`partition_work_spread` — max-min segment length of a
  :class:`~repro.types.Partition` (the theorem says <= 1, always);
* :func:`load_balance_from_trace` — per-OS-worker busy time and element
  throughput aggregated from ``segment.merge`` spans, with max/mean
  imbalance ratios (1.0 = perfectly even; thread pools may multiplex
  several logical segments onto one OS thread, which is a scheduling
  artifact, not a partitioning one — the *work spread* gauge is the
  theorem's statement);
* :func:`record_load_balance` — publish both as registry gauges
  (``balance.work_spread``, ``balance.time_imbalance``,
  ``balance.workers``).

This is the same per-processor work-breakdown view Green et al.'s GPU
follow-up and Siebert & Träff's analysis argue from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import Partition
from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "WorkerLoad",
    "LoadBalanceReport",
    "load_balance_from_trace",
    "partition_work_spread",
    "record_load_balance",
]


@dataclass(frozen=True, slots=True)
class WorkerLoad:
    """Aggregate of one worker's traced merge spans.

    ``tid`` is the aggregation key: a logical worker-slot index (the
    paper's processor ``k``) when the report was built ``by="worker"``,
    or an OS thread id when built ``by="tid"``.
    """

    tid: int
    spans: int
    busy_ns: int
    elements: int


@dataclass(frozen=True, slots=True)
class LoadBalanceReport:
    """Per-worker load shares for one traced execution.

    ``by`` records the aggregation axis (``"worker"`` = logical
    processor slots, ``"tid"`` = OS threads); ``os_threads`` counts the
    distinct OS threads observed regardless of axis, so a report can
    show both "4 logical workers" and "multiplexed onto 1 thread".
    """

    workers: tuple[WorkerLoad, ...]
    span_name: str = "segment.merge"
    by: str = "tid"
    os_threads: int = 0

    @property
    def worker_count(self) -> int:
        return len(self.workers)

    @property
    def total_elements(self) -> int:
        return sum(w.elements for w in self.workers)

    @property
    def time_imbalance(self) -> float:
        """Max over mean of per-worker busy time (1.0 = perfect)."""
        if not self.workers:
            return 1.0
        times = [w.busy_ns for w in self.workers]
        mean = sum(times) / len(times)
        return max(times) / mean if mean > 0 else 1.0

    @property
    def work_imbalance(self) -> float:
        """Max over mean of per-worker element throughput."""
        if not self.workers:
            return 1.0
        work = [w.elements for w in self.workers]
        mean = sum(work) / len(work)
        return max(work) / mean if mean > 0 else 1.0

    def describe(self) -> str:
        if not self.workers:
            return f"(no {self.span_name!r} spans recorded)"
        lines = [
            f"load balance over {self.worker_count} worker(s) "
            f"[{self.span_name} spans, by {self.by}"
            + (
                f", on {self.os_threads} OS thread(s)"
                if self.by == "worker" and self.os_threads
                else ""
            )
            + "]:"
        ]
        for w in sorted(self.workers, key=lambda w: -w.busy_ns):
            lines.append(
                f"  {self.by}={w.tid}: spans={w.spans} "
                f"busy={w.busy_ns / 1e6:.3f}ms elements={w.elements}"
            )
        lines.append(
            f"  time max/mean={self.time_imbalance:.3f} "
            f"work max/mean={self.work_imbalance:.3f}"
        )
        return "\n".join(lines)


def load_balance_from_trace(
    tracer: Tracer, span_name: str = "segment.merge", *, by: str = "auto"
) -> LoadBalanceReport:
    """Aggregate ``span_name`` spans per worker.

    ``by`` selects the aggregation axis:

    ``"worker"``
        The logical worker-slot index the entry points attach to each
        span (attribute ``worker`` — the paper's processor ``k``).
        This is the axis Theorem 14 speaks about: with equispaced
        diagonals, per-slot elements differ by at most one.
    ``"tid"``
        The OS thread that happened to run the span.  A warm pool may
        multiplex several logical slots onto fewer threads (one, on a
        single-core host) — a scheduling artifact, not a partitioning
        one, so per-tid *work* imbalance can legitimately exceed 1 even
        though the partition is perfect.
    ``"auto"`` (default)
        ``"worker"`` when every matching span carries the attribute,
        ``"tid"`` otherwise (traces recorded before the attribute
        existed).

    The aggregation axis is **all-or-nothing**: when any matching span
    lacks an integer ``worker`` tag, the whole report deterministically
    falls back to ``"tid"`` — documented precedence worker→tid — even
    when ``by="worker"`` was requested.  Mixing worker-slot indices and
    OS thread ids in one report would silently collide small worker
    indices with small tids and corrupt every imbalance ratio; the
    report's ``by`` field always names the axis actually used.

    Element counts come from each span's ``length`` attribute (attached
    by the instrumented entry points); spans without it count time only.
    """
    if by not in ("auto", "worker", "tid"):
        raise ValueError(f"by must be 'auto', 'worker' or 'tid', got {by!r}")
    records = [rec for rec in tracer.spans() if rec.name == span_name]
    tids = {rec.tid for rec in records}
    fully_tagged = bool(records) and all(
        isinstance(rec.args.get("worker"), int) for rec in records
    )
    if by == "auto":
        by = "worker" if fully_tagged else "tid"
    elif by == "worker" and not fully_tagged:
        by = "tid"  # partial tags: never mix axes in one report
    acc: dict[int, list[int]] = {}
    for rec in records:
        key = rec.args["worker"] if by == "worker" else rec.tid
        entry = acc.setdefault(key, [0, 0, 0])
        entry[0] += 1
        entry[1] += rec.duration_ns
        length = rec.args.get("length")
        if isinstance(length, int):
            entry[2] += length
    workers = tuple(
        WorkerLoad(tid=tid, spans=n, busy_ns=busy, elements=elems)
        for tid, (n, busy, elems) in sorted(acc.items())
    )
    return LoadBalanceReport(
        workers=workers, span_name=span_name, by=by, os_threads=len(tids)
    )


def partition_work_spread(partition: Partition) -> int:
    """Max-min segment output length — Theorem 14 bounds this by 1."""
    return partition.max_imbalance


def record_load_balance(
    registry: MetricsRegistry,
    *,
    report: LoadBalanceReport | None = None,
    partition: Partition | None = None,
) -> None:
    """Publish load-balance gauges into ``registry``.

    ``balance.work_spread`` (from a partition) is the Theorem 14 gauge:
    it must never exceed 1.  ``balance.time_imbalance`` and
    ``balance.workers`` (from a trace report) describe how evenly the
    backend actually ran the segments.
    """
    if partition is not None:
        registry.gauge("balance.work_spread").set(
            partition_work_spread(partition)
        )
    if report is not None and report.workers:
        registry.gauge("balance.time_imbalance").set(report.time_imbalance)
        registry.gauge("balance.work_imbalance").set(report.work_imbalance)
        registry.gauge("balance.workers").set(report.worker_count)
