"""Bench-regression emitter: ``BENCH_<date>.json`` snapshots.

A deliberately small, reproducible suite — merge / segmented merge /
sort over a size-and-``p`` grid — timed *untraced* (best of three) so
the numbers reflect the kernels, then run once more *traced* to attach
the load-balance story (per-worker time imbalance and the Theorem 14
work spread) to every row.  The output is a flat JSON document that a
later run can diff against::

    python -m repro bench --quick --out BENCH_ci.json
    python benchmarks/emit.py --quick          # same thing, standalone

Schema (``"repro-bench/1"``)::

    {
      "schema": "repro-bench/1",
      "created_utc": "2026-08-06T12:00:00Z",
      "host": {"platform": ..., "python": ..., "numpy": ..., "cpus": ...},
      "quick": true,
      "results": [
        {"op": "parallel_merge", "n": 65536, "p": 4,
         "ns_per_elem": 12.3, "best_s": ..., "runs_s": [...],
         "time_imbalance": 1.04, "work_imbalance": 1.0, "workers": 4}
      ]
    }

``ns_per_elem`` divides by the *output* length (2n for merges, n for
sorts) so rows are comparable across ops.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
import time
from typing import Callable

import numpy as np

from ..core.merge_sort import parallel_merge_sort
from ..core.parallel_merge import parallel_merge
from ..core.segmented_merge import segmented_parallel_merge
from ..workloads.generators import sorted_uniform_ints, unsorted_uniform_ints
from .balance import load_balance_from_trace
from .tracer import Tracer

__all__ = ["BENCH_SCHEMA", "run_bench_suite", "write_bench_file"]

BENCH_SCHEMA = "repro-bench/1"

_REPEATS = 3


def _time_best(fn: Callable[[], object], repeats: int = _REPEATS) -> tuple[float, list[float]]:
    """Best-of-``repeats`` wall time of ``fn`` in seconds."""
    runs: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - t0)
    return min(runs), runs


def _bench_case(
    op: str,
    n: int,
    p: int,
    untraced: Callable[[], object],
    traced: Callable[[Tracer], object],
    out_len: int,
) -> dict:
    best, runs = _time_best(untraced)
    tracer = Tracer()
    traced(tracer)
    report = load_balance_from_trace(tracer)
    return {
        "op": op,
        "n": int(n),
        "p": int(p),
        "best_s": round(best, 6),
        "runs_s": [round(r, 6) for r in runs],
        "ns_per_elem": round(best * 1e9 / max(1, out_len), 3),
        "time_imbalance": round(report.time_imbalance, 4),
        "work_imbalance": round(report.work_imbalance, 4),
        "workers": report.worker_count,
    }


def run_bench_suite(*, quick: bool = False, seed: int = 7) -> dict:
    """Run the regression suite and return the bench document."""
    sizes = [1 << 14] if quick else [1 << 16, 1 << 18]
    ps = (2, 4) if quick else (2, 4, 8)
    results: list[dict] = []

    for n in sizes:
        a = sorted_uniform_ints(n, seed)
        b = sorted_uniform_ints(n, seed + 1)
        x = unsorted_uniform_ints(n, seed + 2)
        L = max(1, n // 8)
        for p in ps:
            results.append(_bench_case(
                "parallel_merge", n, p,
                lambda: parallel_merge(a, b, p, backend="threads"),
                lambda tr: parallel_merge(a, b, p, backend="threads",
                                          trace=tr),
                2 * n,
            ))
            results.append(_bench_case(
                "segmented_parallel_merge", n, p,
                lambda: segmented_parallel_merge(a, b, p, L=L,
                                                 backend="threads"),
                lambda tr: segmented_parallel_merge(a, b, p, L=L,
                                                    backend="threads",
                                                    trace=tr),
                2 * n,
            ))
            results.append(_bench_case(
                "parallel_merge_sort", n, p,
                lambda: parallel_merge_sort(x, p, backend="threads"),
                lambda tr: parallel_merge_sort(x, p, backend="threads",
                                               trace=tr),
                n,
            ))

    created = _dt.datetime.now(_dt.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": created,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count() or 1,
        },
        "quick": bool(quick),
        "results": results,
    }


def write_bench_file(
    path: str | None = None, *, quick: bool = False, seed: int = 7
) -> str:
    """Run the suite and write ``BENCH_<YYYY-MM-DD>.json`` (or ``path``)."""
    doc = run_bench_suite(quick=quick, seed=seed)
    if path is None:
        date = doc["created_utc"][:10]
        path = f"BENCH_{date}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path
