"""Bench-regression emitter: ``BENCH_<date>.json`` snapshots.

A deliberately small, reproducible suite — merge / segmented merge /
sort / out-of-core external sort over a size-and-``p`` grid — timed
*untraced* (best of three) so
the numbers reflect the kernels, then run once more *traced* to attach
the load-balance story and once more *metered* to attach the batched
execution engine's dispatch accounting.  The output is a flat JSON
document that a later run can diff against::

    python -m repro bench --quick --out BENCH_ci.json
    python benchmarks/emit.py --quick          # same thing, standalone
    python benchmarks/emit.py --quick --compare BENCH_2026-08-06.json

Schema (``"repro-bench/2"``)::

    {
      "schema": "repro-bench/2",
      "created_utc": "2026-08-06T12:00:00Z",
      "host": {"platform": ..., "python": ..., "numpy": ..., "cpus": ...},
      "quick": true,
      "results": [
        {"op": "parallel_merge", "n": 65536, "p": 4,
         "ns_per_elem": 12.3, "best_s": ..., "runs_s": [...],
         "time_imbalance": 1.04, "work_imbalance": 1.0, "workers": 4,
         "os_threads": 1, "work_spread": 1, "dispatches": 1}
      ]
    }

Version history: ``repro-bench/1`` lacked ``os_threads``,
``work_spread`` and ``dispatches``, and its ``workers`` /
``work_imbalance`` aggregated by OS thread — on a host whose pool
multiplexes several logical slots onto one thread that under-reported
``workers`` and inflated ``work_imbalance`` even though the partition
was perfect (Theorem 14).  v2 aggregates by logical worker slot and
reports the OS-thread count separately; :func:`compare_bench` accepts
both versions.

``ns_per_elem`` divides by the *output* length (2n for merges, n for
sorts) so rows are comparable across ops.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
import time
from typing import Callable

import numpy as np

from ..core.merge_sort import parallel_merge_sort
from ..core.parallel_merge import parallel_merge
from ..core.segmented_merge import segmented_parallel_merge
from ..external.sort import external_sort
from ..workloads.generators import sorted_uniform_ints, unsorted_uniform_ints
from .balance import load_balance_from_trace
from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "BENCH_SCHEMA",
    "run_bench_suite",
    "write_bench_file",
    "compare_bench",
    "format_comparison",
]

BENCH_SCHEMA = "repro-bench/2"

_REPEATS = 3


def _time_best(fn: Callable[[], object], repeats: int = _REPEATS) -> tuple[float, list[float]]:
    """Best-of-``repeats`` wall time of ``fn`` in seconds."""
    runs: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - t0)
    return min(runs), runs


def _bench_case(
    op: str,
    n: int,
    p: int,
    untraced: Callable[[], object],
    traced: Callable[[Tracer], object],
    metered: Callable[[MetricsRegistry], object],
    out_len: int,
    balance_span: str = "segment.merge",
) -> dict:
    best, runs = _time_best(untraced)
    tracer = Tracer()
    traced(tracer)
    report = load_balance_from_trace(tracer, balance_span)
    registry = MetricsRegistry()
    metered(registry)
    names = registry.names()
    dispatches = (
        int(registry.value("exec.dispatches_per_call"))
        if "exec.dispatches_per_call" in names else 0
    )
    work_spread = (
        int(registry.value("balance.work_spread"))
        if "balance.work_spread" in names else 0
    )
    return {
        "op": op,
        "n": int(n),
        "p": int(p),
        "best_s": round(best, 6),
        "runs_s": [round(r, 6) for r in runs],
        "ns_per_elem": round(best * 1e9 / max(1, out_len), 3),
        "time_imbalance": round(report.time_imbalance, 4),
        "work_imbalance": round(report.work_imbalance, 4),
        "workers": report.worker_count,
        "os_threads": report.os_threads,
        "work_spread": work_spread,
        "dispatches": dispatches,
    }


def run_bench_suite(*, quick: bool = False, seed: int = 7) -> dict:
    """Run the regression suite and return the bench document."""
    sizes = [1 << 14] if quick else [1 << 16, 1 << 18]
    ps = (2, 4) if quick else (2, 4, 8)
    results: list[dict] = []

    for n in sizes:
        a = sorted_uniform_ints(n, seed)
        b = sorted_uniform_ints(n, seed + 1)
        x = unsorted_uniform_ints(n, seed + 2)
        L = max(1, n // 8)
        for p in ps:
            results.append(_bench_case(
                "parallel_merge", n, p,
                lambda: parallel_merge(a, b, p, backend="threads"),
                lambda tr: parallel_merge(a, b, p, backend="threads",
                                          trace=tr),
                lambda reg: parallel_merge(a, b, p, backend="threads",
                                           metrics=reg),
                2 * n,
            ))
            results.append(_bench_case(
                "segmented_parallel_merge", n, p,
                lambda: segmented_parallel_merge(a, b, p, L=L,
                                                 backend="threads"),
                lambda tr: segmented_parallel_merge(a, b, p, L=L,
                                                    backend="threads",
                                                    trace=tr),
                lambda reg: segmented_parallel_merge(a, b, p, L=L,
                                                     backend="threads",
                                                     metrics=reg),
                2 * n,
            ))
            results.append(_bench_case(
                "parallel_merge_sort", n, p,
                lambda: parallel_merge_sort(x, p, backend="threads"),
                lambda tr: parallel_merge_sort(x, p, backend="threads",
                                               trace=tr),
                lambda reg: parallel_merge_sort(x, p, backend="threads",
                                                metrics=reg),
                n,
            ))
            # Out-of-core path under a 1/8 RAM budget: 8 spilled runs,
            # SPM-planned single-pass block fan-in (docs/external.md).
            M = max(1, n // 8)
            results.append(_bench_case(
                "external_sort", n, p,
                lambda: external_sort(x, M, parallel=True,
                                      backend="threads", workers=p),
                lambda tr: external_sort(x, M, parallel=True,
                                         backend="threads", workers=p,
                                         trace=tr),
                lambda reg: external_sort(x, M, parallel=True,
                                          backend="threads", workers=p,
                                          metrics=reg),
                n,
                # the out-of-core pipeline's unit of parallel work is
                # the batch task (runs / block merges), not an in-RAM
                # merge segment
                balance_span="backend.task",
            ))

    created = _dt.datetime.now(_dt.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": created,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count() or 1,
        },
        "quick": bool(quick),
        "results": results,
    }


def write_bench_file(
    path: str | None = None, *, quick: bool = False, seed: int = 7
) -> str:
    """Run the suite and write ``BENCH_<YYYY-MM-DD>.json`` (or ``path``)."""
    doc = run_bench_suite(quick=quick, seed=seed)
    if path is None:
        date = doc["created_utc"][:10]
        path = f"BENCH_{date}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# Snapshot comparison (the perf ratchet behind ``emit.py --compare``)
# ---------------------------------------------------------------------------

def compare_bench(
    baseline: dict,
    current: dict,
    *,
    warn_frac: float = 0.25,
    fail_frac: float = 0.25,
) -> dict:
    """Diff two bench documents row by row on ``ns_per_elem``.

    Rows match on ``(op, n, p)``; rows present in only one document are
    reported but never gate.  ``delta`` is the fractional change
    ``(current - baseline) / baseline`` — positive = regression.  A row
    whose delta exceeds ``warn_frac`` gets status ``"warn"``; above
    ``fail_frac`` it gets ``"fail"``.  Accepts both ``repro-bench/1``
    and ``/2`` documents (the gate only needs ``ns_per_elem``).

    Returns ``{"rows": [...], "warned": bool, "failed": bool,
    "worst": float | None}`` where ``worst`` is the largest delta over
    matched rows.
    """
    def index(doc: dict) -> dict[tuple, dict]:
        return {
            (r["op"], r["n"], r["p"]): r for r in doc.get("results", [])
        }

    base_rows = index(baseline)
    cur_rows = index(current)
    rows: list[dict] = []
    worst: float | None = None
    warned = failed = False
    for key in sorted(set(base_rows) | set(cur_rows)):
        op, n, p = key
        base = base_rows.get(key)
        cur = cur_rows.get(key)
        row: dict = {"op": op, "n": n, "p": p}
        if base is None or cur is None:
            row.update({
                "status": "unmatched",
                "base_ns": base["ns_per_elem"] if base else None,
                "cur_ns": cur["ns_per_elem"] if cur else None,
                "delta": None,
            })
            rows.append(row)
            continue
        base_ns = float(base["ns_per_elem"])
        cur_ns = float(cur["ns_per_elem"])
        delta = (cur_ns - base_ns) / base_ns if base_ns > 0 else 0.0
        worst = delta if worst is None else max(worst, delta)
        if delta > fail_frac:
            status = "fail"
            failed = True
        elif delta > warn_frac:
            status = "warn"
            warned = True
        else:
            status = "ok"
        row.update({
            "status": status,
            "base_ns": base_ns,
            "cur_ns": cur_ns,
            "delta": round(delta, 4),
        })
        rows.append(row)
    return {"rows": rows, "warned": warned, "failed": failed, "worst": worst}


def format_comparison(cmp: dict) -> str:
    """Human-readable table for a :func:`compare_bench` result."""
    lines = [
        f"{'op':<26} {'n':>8} {'p':>3} {'base ns/el':>11} "
        f"{'cur ns/el':>11} {'delta':>8}  status"
    ]
    for row in cmp["rows"]:
        delta = (
            f"{row['delta'] * 100:+7.1f}%" if row["delta"] is not None
            else "      —"
        )
        base_ns = f"{row['base_ns']:.3f}" if row["base_ns"] is not None else "—"
        cur_ns = f"{row['cur_ns']:.3f}" if row["cur_ns"] is not None else "—"
        lines.append(
            f"{row['op']:<26} {row['n']:>8} {row['p']:>3} {base_ns:>11} "
            f"{cur_ns:>11} {delta:>8}  {row['status']}"
        )
    if cmp["worst"] is not None:
        lines.append(f"worst delta: {cmp['worst'] * 100:+.1f}%")
    return "\n".join(lines)
