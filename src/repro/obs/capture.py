"""Traced reference workloads for ``python -m repro trace``.

Each capture runs the workload family of one paper experiment with a
:class:`~repro.obs.Tracer` and :class:`~repro.obs.MetricsRegistry`
installed, on the real thread backend, and returns both — ready for
Chrome-trace export, flame summarisation, and load-balance reporting.
The CLI verb is the front door::

    python -m repro trace fig5 --quick --out trace.json

Sizes are deliberately modest (tracing is for *shape*, the bench
emitter in :mod:`repro.obs.bench` is for *speed*): quick captures run
in well under a second, full captures in a few.

Kept out of ``repro.obs.__init__`` on purpose — this module imports
:mod:`repro.core`, which itself imports the tracer primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.cache_sort import cache_efficient_sort
from ..core.merge_sort import parallel_merge_sort
from ..core.parallel_merge import parallel_merge
from ..core.segmented_merge import segmented_parallel_merge
from ..errors import InputError
from ..workloads.adversarial import ADVERSARIAL_PAIRS
from ..workloads.generators import sorted_uniform_ints, unsorted_uniform_ints
from .balance import load_balance_from_trace, record_load_balance
from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["CaptureResult", "TRACEABLE", "trace_workload"]


@dataclass
class CaptureResult:
    """One traced workload run: the tracer, its metrics, and run notes."""

    exp_id: str
    tracer: Tracer
    metrics: MetricsRegistry
    notes: list[str] = field(default_factory=list)


def _capture_fig5(quick: bool, seed: int) -> CaptureResult:
    """Figure 5 workload: Algorithm 1 across thread counts."""
    n = 1 << 15 if quick else 1 << 17
    ps = (2, 4) if quick else (2, 4, 8, 12)
    tracer, metrics = Tracer(), MetricsRegistry()
    a = sorted_uniform_ints(n, seed)
    b = sorted_uniform_ints(n, seed + 1)
    for p in ps:
        parallel_merge(a, b, p, backend="threads", trace=tracer,
                       metrics=metrics)
    notes = [f"parallel_merge of 2x{n} elements at p in {ps} (threads)"]
    return CaptureResult("fig5", tracer, metrics, notes)


def _capture_spm(quick: bool, seed: int) -> CaptureResult:
    """Algorithm 2 workload: segmented merge with cache-sized blocks."""
    n = 1 << 14 if quick else 1 << 16
    p = 4
    L = max(1, n // 8)
    tracer, metrics = Tracer(), MetricsRegistry()
    a = sorted_uniform_ints(n, seed)
    b = sorted_uniform_ints(n, seed + 1)
    segmented_parallel_merge(a, b, p, L=L, backend="threads", trace=tracer,
                             metrics=metrics)
    notes = [f"segmented_parallel_merge of 2x{n} elements, p={p}, L={L}"]
    return CaptureResult("spm", tracer, metrics, notes)


def _capture_sort(quick: bool, seed: int) -> CaptureResult:
    """Section III workload: the parallel merge sort's rounds."""
    n = 1 << 14 if quick else 1 << 16
    p = 4
    tracer, metrics = Tracer(), MetricsRegistry()
    x = unsorted_uniform_ints(n, seed)
    parallel_merge_sort(x, p, backend="threads", trace=tracer, metrics=metrics)
    notes = [f"parallel_merge_sort of {n} elements, p={p} (threads)"]
    return CaptureResult("sort", tracer, metrics, notes)


def _capture_cachesort(quick: bool, seed: int) -> CaptureResult:
    """Section IV.C workload: the cache-efficient three-stage sort."""
    n = 1 << 13 if quick else 1 << 15
    p = 4
    cache = max(8, n // 4)
    tracer, metrics = Tracer(), MetricsRegistry()
    x = unsorted_uniform_ints(n, seed)
    cache_efficient_sort(x, p, cache, backend="threads", trace=tracer,
                         metrics=metrics)
    notes = [f"cache_efficient_sort of {n} elements, p={p}, C={cache}"]
    return CaptureResult("cachesort", tracer, metrics, notes)


def _capture_lb(quick: bool, seed: int) -> CaptureResult:
    """Section V workload: adversarial inputs, the balance stress test."""
    n = 1 << 12 if quick else 1 << 14
    p = 8
    tracer, metrics = Tracer(), MetricsRegistry()
    for name, make in ADVERSARIAL_PAIRS.items():
        a, b = make(n)
        parallel_merge(a, b, p, backend="threads", trace=tracer,
                       metrics=metrics)
    notes = [
        f"parallel_merge at p={p} over {len(ADVERSARIAL_PAIRS)} adversarial "
        f"pairs of {n} elements each"
    ]
    return CaptureResult("lb", tracer, metrics, notes)


#: Capture id -> (runner, one-line description).  Ids mirror the
#: experiment registry where a matching experiment exists.
TRACEABLE = {
    "fig5": (_capture_fig5, "Algorithm 1 across thread counts (Figure 5)"),
    "spm": (_capture_spm, "Algorithm 2 segmented merge blocks (Section IV)"),
    "sort": (_capture_sort, "parallel merge sort rounds (Section III)"),
    "cachesort": (_capture_cachesort,
                  "cache-efficient three-stage sort (Section IV.C)"),
    "lb": (_capture_lb, "adversarial load-balance sweep (Section V)"),
}


def trace_workload(
    exp_id: str, *, quick: bool = False, seed: int = 7
) -> CaptureResult:
    """Run the traced workload for ``exp_id`` (case-insensitive).

    Returns a :class:`CaptureResult`; the tracer is ready for
    :func:`repro.obs.write_chrome_trace` and the metrics registry holds
    kernel counts plus the load-balance gauges (the trace-derived
    gauges are recorded here too, so a single snapshot tells the whole
    story).
    """
    key = exp_id.lower()
    if key not in TRACEABLE:
        raise InputError(
            f"unknown traceable workload {exp_id!r}; "
            f"choose from {', '.join(sorted(TRACEABLE))}"
        )
    runner, _desc = TRACEABLE[key]
    capture = runner(quick, seed)
    report = load_balance_from_trace(capture.tracer)
    record_load_balance(capture.metrics, report=report)
    capture.notes.append(
        f"{capture.tracer.span_count} spans from "
        f"{len(capture.tracer.worker_ids())} worker thread(s)"
    )
    return capture
