"""Trace exporters: Chrome trace-event JSON and a text flame summary.

The JSON exporter emits the Trace Event Format understood by
``chrome://tracing`` and by Perfetto's legacy-trace importer
(https://ui.perfetto.dev — drag the file in): an object with a
``traceEvents`` array of complete (``"ph": "X"``) events carrying
``name``, ``cat``, ``ts``/``dur`` (microseconds), ``pid``/``tid`` and
an ``args`` mapping, preceded by ``"M"`` metadata events naming the
process and each worker thread.

:func:`validate_chrome_trace` re-checks a produced document against the
event-format requirements — it is what the trace tests and the CI
artifact job run before calling a trace shippable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .tracer import SpanRecord, Tracer

__all__ = [
    "chrome_trace_events",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "flame_summary",
]


def _jsonable(value: Any) -> Any:
    """Coerce an attribute value to something JSON-representable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    # numpy scalars and anything else: item() if available, else repr.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:  # pragma: no cover - exotic array-likes
            pass
    return repr(value)


def chrome_trace_events(tracer: Tracer) -> list[dict[str, Any]]:
    """Render every finished span as Trace Event Format dictionaries."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": tracer.pid,
            "tid": 0,
            "args": {"name": tracer.process_name},
        }
    ]
    for tid, tname in sorted(tracer.thread_names().items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": tracer.pid,
                "tid": tid,
                "args": {"name": tname},
            }
        )
    for rec in tracer.spans():
        events.append(
            {
                "name": rec.name,
                "cat": rec.name.split(".", 1)[0],
                "ph": "X",
                # Trace-event timestamps are microseconds (float ok).
                "ts": rec.start_ns / 1000.0,
                "dur": max(rec.duration_ns / 1000.0, 0.001),
                "pid": rec.pid,
                "tid": rec.tid,
                "args": {str(k): _jsonable(v) for k, v in rec.args.items()},
            }
        )
    return events


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Full trace document (JSON Object Format variant)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs (Merge Path reproduction)",
            "spanCount": tracer.span_count,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Serialize the trace to ``path``; returns the written path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer), indent=None) + "\n")
    return path


def validate_chrome_trace(doc: Any) -> list[str]:
    """Check a trace document against the event-format schema.

    Returns a list of problems (empty = valid).  Checks the fields the
    viewers actually require: every event has ``name``/``ph``/``pid``/
    ``tid``; duration events additionally have numeric non-negative
    ``ts`` and ``dur``; and events are JSON-serializable.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a 'traceEvents' array"]
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["'traceEvents' must be a non-empty array"]
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing required field {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                val = ev.get(key)
                if not isinstance(val, (int, float)) or val < 0:
                    problems.append(
                        f"{where}: field {key!r} must be a non-negative "
                        f"number, got {val!r}"
                    )
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], int):
                problems.append(f"{where}: field {key!r} must be an integer")
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as exc:
        problems.append(f"document is not JSON-serializable: {exc}")
    return problems


def flame_summary(tracer: Tracer, width: int = 40) -> str:
    """Aggregate spans by name into a text flame table.

    Columns: span name, count, inclusive ms, self ms (inclusive minus
    time attributed to child spans), share bar of total self time.
    """
    spans = tracer.spans()
    if not spans:
        return "(no spans recorded)"
    inclusive: dict[str, int] = {}
    child_time: dict[str, int] = {}
    count: dict[str, int] = {}
    for rec in spans:
        inclusive[rec.name] = inclusive.get(rec.name, 0) + rec.duration_ns
        count[rec.name] = count.get(rec.name, 0) + 1
        if rec.parent is not None:
            child_time[rec.parent] = child_time.get(rec.parent, 0) + rec.duration_ns
    self_time = {
        name: max(0, inclusive[name] - child_time.get(name, 0))
        for name in inclusive
    }
    total_self = sum(self_time.values()) or 1
    name_w = max(len("span"), *(len(n) for n in inclusive))
    lines = [
        f"{'span':<{name_w}}  {'count':>6}  {'incl ms':>9}  {'self ms':>9}  share",
    ]
    for name in sorted(inclusive, key=lambda n: -self_time[n]):
        share = self_time[name] / total_self
        bar = "#" * max(1, int(round(share * width))) if self_time[name] else ""
        lines.append(
            f"{name:<{name_w}}  {count[name]:>6}  "
            f"{inclusive[name] / 1e6:>9.3f}  {self_time[name] / 1e6:>9.3f}  "
            f"{bar}"
        )
    workers = len({rec.tid for rec in spans})
    lines.append(f"({len(spans)} spans from {workers} worker(s))")
    return "\n".join(lines)
