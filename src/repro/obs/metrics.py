"""Unified counters / gauges / histograms for every merge-path phase.

One :class:`MetricsRegistry` replaces the ad-hoc counter sinks that had
grown around the package: the :class:`~repro.types.MergeStats` protocol
(comparisons / moves / search probes) stays the *kernel-facing* sink —
it is tiny and allocation-free — but its totals now land in named
registry counters, next to the resilience layer's retry/timeout/
speculation counts and the load-balance gauges.  There is exactly one
counting path: kernels count into a ``MergeStats``-shaped object, entry
points flush the *delta* of each call into the registry, and
:class:`~repro.resilience.ExecutionTelemetry` emits its batch totals
into the same registry when bound to one.

Metric name conventions (full table in ``docs/observability.md``):

``merge.comparisons`` / ``merge.moves`` / ``merge.search_probes``
    Kernel operation counts (the quantities of the paper's step model).
``merge.calls`` / ``merge.segments``
    Entry-point invocations and merge segments dispatched.
``spm.blocks`` and histogram ``spm.block_a_share``
    Algorithm 2 block count and per-block A-consumption share.
``sort.rounds``
    Merge rounds executed by the parallel sort.
``exec.dispatches`` and gauge ``exec.dispatches_per_call``
    Batched execution engine accounting: total backend fork/join
    dispatches, and how many the most recent entry-point call cost.
    Under the batched engine a sort call costs one dispatch per round
    (``O(log N)``) and a parallel merge exactly one.
``resilience.dispatches`` / ``.retries`` / ``.timeouts`` /
``.speculations`` / ``.worker_deaths`` / ``.batches`` / ``.tasks`` /
``.recoveries``
    Fault-tolerant execution totals (fed by ``ExecutionTelemetry``);
    ``.recoveries`` counts circuit-breaker re-promotions of a
    previously failed degradation level.
``balance.work_spread`` / ``balance.time_imbalance`` /
``balance.workers``
    Load-balance gauges (Theorem 14 witnesses; see ``obs.balance``).
``slo.ns_per_elem`` (+ per-op ``slo.merge.*`` / ``slo.sort.*``)
    Canary-workload latency histograms; the SLO evaluator reads p50/p99
    straight off their summaries (see ``repro.control``).
``control.steps`` / ``.retunes`` / ``.degradations`` /
``.recoveries`` / ``.slo_failures`` and gauge ``control.last_status``
    The controller's own decisions — the control plane is observable
    through the same registry it reads.  ``.recoveries`` counts
    recovery events the controller consumed (restoring the cutover a
    degradation displaced).
``autotune.cache_corrupt``
    Calibration-cache loads that found garbage bytes instead of JSON
    (each is a counted miss, never a crash; see ``repro.durable``).
``extsort.calls`` / ``.runs`` / ``.passes`` / ``.blocks`` and gauge
``extsort.transfer_ratio``
    The SPM-planned parallel external sort
    (:mod:`repro.external.parallel`): invocations, runs formed, merge
    passes, planned block merges, and the last call's measured block
    transfers over the Aggarwal–Vitter sorting bound.
``serve.requests`` / ``.responses`` / ``.shed`` / ``.bad_requests`` /
``.errors`` / ``.deadline_misses`` / ``.connections`` /
``.degradations`` / ``.recoveries`` / ``.batches`` /
``.coalesced_requests`` / ``.drains`` / ``.drain_rejects`` /
``.oversize_lines``, gauge ``serve.inflight``, histograms
``serve.batch_size`` / ``serve.latency_ms``
    The asyncio front door (:mod:`repro.serve`): admission and shed
    accounting, coalescer window sizes, end-to-end request latency.
    Lifecycle hardening lands here too: ``.drains`` (graceful drains
    begun), ``.drain_rejects`` (typed 503s to late arrivals),
    ``.oversize_lines`` (typed 413s to over-long request frames), and
    ``.recoveries`` (breaker re-promotions observed by the server).
    The server also observes batch-compute time into
    ``slo.ns_per_elem`` (+ ``slo.serve.ns_per_elem``) so ``doctor
    --slo --metrics-from`` judges live traffic with the same clauses
    as the canary.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistryMergeStats",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..types import MergeStats


class Counter:
    """Monotonically increasing integer counter (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Last-value-wins instantaneous measurement."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self._value})"


#: Bound on retained histogram samples.  Below the cap every observed
#: value is kept, so small-sample quantiles are *exact*; past it the
#: retained set is decimated (keep-every-other, stride doubles) — a
#: deterministic systematic subsample over the whole stream.
HISTOGRAM_SAMPLE_CAP = 2048


class Histogram:
    """Streaming summary plus quantiles of observed values.

    ``count``/``sum``/``min``/``max``/``mean`` are exact over the whole
    stream; :meth:`quantile` is exact while at most
    :data:`HISTOGRAM_SAMPLE_CAP` values have been observed and a
    deterministic systematic subsample beyond that.  The SLO evaluator
    (:mod:`repro.control`) reads p50/p99 from here — there is no second
    latency-accounting path.
    """

    __slots__ = (
        "name", "count", "total", "min", "max",
        "_samples", "_stride", "_pending", "_lock",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self._pending = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._pending += 1
            if self._pending >= self._stride:
                self._pending = 0
                self._samples.append(value)
                if len(self._samples) > HISTOGRAM_SAMPLE_CAP:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (per-worker → run aggregation).

        Exact for count/sum/min/max; the sample sets concatenate and
        re-decimate under the same cap, so merged quantiles stay exact
        whenever the combined sample count fits the cap.
        """
        with other._lock:
            o_count, o_total = other.count, other.total
            o_min, o_max = other.min, other.max
            o_samples = list(other._samples)
        with self._lock:
            self.count += o_count
            self.total += o_total
            if o_min < self.min:
                self.min = o_min
            if o_max > self.max:
                self.max = o_max
            self._samples.extend(o_samples)
            while len(self._samples) > HISTOGRAM_SAMPLE_CAP:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1), linearly interpolated.

        Matches ``numpy.quantile``'s default ``linear`` method on the
        retained samples; returns 0.0 when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0]
        pos = q * (len(samples) - 1)
        lo = int(pos)
        frac = pos - lo
        if lo + 1 >= len(samples):
            return samples[-1]
        return samples[lo] + frac * (samples[lo + 1] - samples[lo])

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Named metric namespace shared by every subsystem of one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors --------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
        return metric

    # -- bulk reads ----------------------------------------------------
    def value(self, name: str, default: float = 0) -> float:
        """Current value of a counter or gauge (0 when never touched)."""
        with self._lock:
            if name in self._counters:
                return self._counters[name].value
            if name in self._gauges:
                return self._gauges[name].value
        return default

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every metric (stable, JSON-serializable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            hists = dict(self._histograms)
        out: dict[str, Any] = {}
        for name in sorted(counters):
            out[name] = counters[name].value
        for name in sorted(gauges):
            out[name] = gauges[name].value
        for name in sorted(hists):
            out[name] = hists[name].summary()
        return out

    def delta(self, before: dict[str, Any] | None = None) -> dict[str, Any]:
        """Changes since ``before`` (a prior :meth:`snapshot` dict).

        The controller's reading protocol: take ``snapshot()`` at the
        start of a control window, ``delta(before)`` at the end, and
        every subsystem's activity *within the window* falls out of one
        source of truth — counters report their increment, gauges their
        current value (gauges are instantaneous, a difference would be
        meaningless), and histogram summaries report count/sum
        increments while min/max/mean/quantiles describe the current
        sample window.  ``before=None`` (or a metric absent from
        ``before``) degrades to the plain snapshot values.
        """
        snap = self.snapshot()
        if not before:
            return snap
        with self._lock:
            counters = set(self._counters)
            hists = set(self._histograms)
        out: dict[str, Any] = {}
        for name, val in snap.items():
            prev = before.get(name)
            if name in counters and isinstance(prev, (int, float)):
                out[name] = val - prev
            elif name in hists and isinstance(prev, dict):
                cur = dict(val)
                cur["count"] = val["count"] - prev.get("count", 0)
                cur["sum"] = val["sum"] - prev.get("sum", 0.0)
                out[name] = cur
            else:
                out[name] = val
        return out

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(
                sorted({*self._counters, *self._gauges, *self._histograms})
            )

    # -- MergeStats protocol bridge ------------------------------------
    def merge_stats(self, prefix: str = "merge") -> "RegistryMergeStats":
        """A ``MergeStats``-protocol sink that writes through to counters.

        This is the *one protocol* for operation counting: any API that
        accepts ``stats=`` (``partition_merge_path``, the merge kernels,
        ``cache_efficient_sort``, ...) can be pointed at the registry by
        passing ``registry.merge_stats()``.
        """
        return RegistryMergeStats(self, prefix)

    def record_merge_stats(
        self, stats: "MergeStats", prefix: str = "merge"
    ) -> None:
        """Add a finished ``MergeStats`` total into the registry counters."""
        self.counter(f"{prefix}.comparisons").inc(stats.comparisons)
        self.counter(f"{prefix}.moves").inc(stats.moves)
        self.counter(f"{prefix}.search_probes").inc(stats.search_probes)

    def record_merge_delta(
        self,
        before: tuple[int, int, int],
        stats: "MergeStats",
        prefix: str = "merge",
    ) -> None:
        """Add only the counts accrued since ``before`` (a field snapshot).

        Entry points use this so a caller-provided ``stats`` object that
        already held counts is not double-recorded.
        """
        c0, m0, s0 = before
        self.counter(f"{prefix}.comparisons").inc(stats.comparisons - c0)
        self.counter(f"{prefix}.moves").inc(stats.moves - m0)
        self.counter(f"{prefix}.search_probes").inc(stats.search_probes - s0)


class RegistryMergeStats:
    """Adapter implementing the ``MergeStats`` attribute protocol.

    Kernels mutate stats sinks with ``stats.comparisons += n`` /
    ``stats.merge(other)``; this class maps those attribute writes onto
    registry counters, so legacy call sites route through the unified
    registry without signature changes.  Intended for single-threaded
    accumulation (per-task sinks are separate objects merged at the
    barrier, exactly like plain ``MergeStats``).
    """

    __slots__ = ("_comparisons", "_moves", "_search_probes")

    def __init__(self, registry: MetricsRegistry, prefix: str = "merge") -> None:
        object.__setattr__(self, "_comparisons", registry.counter(f"{prefix}.comparisons"))
        object.__setattr__(self, "_moves", registry.counter(f"{prefix}.moves"))
        object.__setattr__(self, "_search_probes", registry.counter(f"{prefix}.search_probes"))

    # Attribute protocol: reads return the counter total; writes record
    # the (non-negative) delta, which is what ``x.field += n`` produces.
    @property
    def comparisons(self) -> int:
        return self._comparisons.value

    @comparisons.setter
    def comparisons(self, value: int) -> None:
        self._comparisons.inc(value - self._comparisons.value)

    @property
    def moves(self) -> int:
        return self._moves.value

    @moves.setter
    def moves(self, value: int) -> None:
        self._moves.inc(value - self._moves.value)

    @property
    def search_probes(self) -> int:
        return self._search_probes.value

    @search_probes.setter
    def search_probes(self, value: int) -> None:
        self._search_probes.inc(value - self._search_probes.value)

    def merge(self, other: Any) -> None:
        """Accumulate another sink's counters (MergeStats-compatible)."""
        self._comparisons.inc(other.comparisons)
        self._moves.inc(other.moves)
        self._search_probes.inc(other.search_probes)

    @property
    def total_ops(self) -> int:
        return self.comparisons + self.moves + self.search_probes
