"""Nested-span tracer with lock-free per-worker buffers.

The tracing model is deliberately tiny — exactly what is needed to *see*
where Algorithm 1 and 2 spend their time:

* a :class:`Span` is a named interval with key/value attributes,
  recorded on whichever thread *enters* it (so a span opened inside a
  thread-pool task lands in that worker's buffer);
* each OS thread appends finished spans to its own private buffer — no
  lock is taken on the hot path, only once per thread to register the
  buffer (the same discipline as the paper's workers writing disjoint
  output slices);
* spans nest via a per-thread stack; every record carries its depth and
  parent name so exporters can rebuild the flame shape;
* timestamps are ``perf_counter_ns`` relative to the tracer's epoch,
  which keeps buffers from different threads on one comparable clock.

Disabled tracing must cost nothing: call sites guard with
``tracer.span(...) if tracer is not None else NULL_SPAN`` so that when
no tracer is installed *no span object is ever allocated* —
:data:`NULL_SPAN` is a shared do-nothing singleton.

Span-name conventions used across the package (see
``docs/observability.md`` for the full table):

==================  ====================================================
``partition.search``  diagonal binary search (Theorem 14) of one
                      partitioning call
``segment.merge``     one processor's sequential merge of its segment
``spm.block``         one cache-sized block of Algorithm 2
``sort.round``        one round of the parallel merge sort
``backend.task``      task execution as seen by the backend
==================  ====================================================
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["SpanRecord", "Span", "Tracer", "NullSpan", "NULL_SPAN"]


@dataclass(slots=True)
class SpanRecord:
    """One finished span: name, interval, worker identity, attributes.

    ``start_ns`` is relative to the owning tracer's epoch; ``tid`` is
    the OS thread ident of the worker that ran the span; ``depth`` is
    the nesting level on that worker (0 = top level) and ``parent`` the
    name of the enclosing span, if any.
    """

    name: str
    start_ns: int
    duration_ns: int
    pid: int
    tid: int
    depth: int
    parent: str | None
    args: dict[str, Any]

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


class NullSpan:
    """Do-nothing stand-in used when tracing is disabled.

    A single shared instance (:data:`NULL_SPAN`) serves every disabled
    call site, so the "tracing off" path performs zero allocations.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        return self


#: Shared disabled-span singleton; ``with tracer.span(...) if tracer
#: is not None else NULL_SPAN:`` is the canonical guarded call site.
NULL_SPAN = NullSpan()


@dataclass(slots=True)
class _ThreadState:
    """Per-thread span buffer and nesting stack (registered once)."""

    tid: int
    thread_name: str
    records: list[SpanRecord] = field(default_factory=list)
    stack: list["Span"] = field(default_factory=list)


class Span:
    """A live (entered but not yet exited) traced interval.

    Use as a context manager; attributes can be attached at creation
    (``tracer.span("segment.merge", index=3)``) or mid-span via
    :meth:`set` (e.g. a probe count known only at the end).
    """

    __slots__ = ("_tracer", "name", "args", "_start_ns", "_depth", "_parent", "_state")

    def __init__(self, tracer: "Tracer", name: str, args: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0
        self._depth = 0
        self._parent: str | None = None
        self._state: _ThreadState | None = None

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "Span":
        state = self._tracer._thread_state()
        self._state = state
        self._depth = len(state.stack)
        self._parent = state.stack[-1].name if state.stack else None
        state.stack.append(self)
        self._start_ns = time.perf_counter_ns() - self._tracer.epoch_ns
        return self

    def __exit__(self, *exc_info: object) -> bool:
        end_ns = time.perf_counter_ns() - self._tracer.epoch_ns
        state = self._state
        assert state is not None, "span exited without being entered"
        state.stack.pop()
        state.records.append(
            SpanRecord(
                name=self.name,
                start_ns=self._start_ns,
                duration_ns=max(0, end_ns - self._start_ns),
                pid=self._tracer.pid,
                tid=state.tid,
                depth=self._depth,
                parent=self._parent,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Collects spans from any number of worker threads.

    One tracer instance spans one recording session (e.g. one
    ``parallel_merge`` call, or a whole experiment).  Thread safety: the
    only shared mutation is registering a new thread's buffer, guarded
    by a lock taken once per thread; recording itself is thread-local.
    """

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        self.pid = os.getpid()
        self.epoch_ns = time.perf_counter_ns()
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._states: list[_ThreadState] = []

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """Create a span; enter it with ``with`` to start the clock."""
        return Span(self, name, attrs)

    def _thread_state(self) -> _ThreadState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = _ThreadState(
                tid=threading.get_ident(),
                thread_name=threading.current_thread().name,
            )
            self._tls.state = state
            with self._lock:
                self._states.append(state)
        return state

    # -- reading -------------------------------------------------------
    def spans(self) -> list[SpanRecord]:
        """All finished spans, merged across worker buffers.

        Sorted by start timestamp (parents before their children when
        starts coincide, thanks to the longer-duration-first tiebreak).
        """
        with self._lock:
            records = [r for state in self._states for r in state.records]
        return sorted(records, key=lambda r: (r.start_ns, -r.duration_ns))

    def thread_names(self) -> dict[int, str]:
        """Mapping of thread ident -> thread name for every worker seen."""
        with self._lock:
            return {state.tid: state.thread_name for state in self._states}

    @property
    def span_count(self) -> int:
        with self._lock:
            return sum(len(state.records) for state in self._states)

    def worker_ids(self) -> set[int]:
        """Thread idents that recorded at least one span."""
        with self._lock:
            return {s.tid for s in self._states if s.records}

    def clear(self) -> None:
        """Drop all recorded spans (buffers stay registered)."""
        with self._lock:
            for state in self._states:
                state.records.clear()
