"""CREW PRAM simulator substrate.

The paper analyzes Merge Path on a CREW PRAM: p synchronous processors
sharing a flat memory, where concurrent reads of one address are legal
but concurrent writes are not.  This package provides an executable
model of that machine:

* :mod:`repro.pram.memory` — shared memory with per-cycle access
  auditing that *enforces* the EREW/CREW/CRCW contract (a CREW
  violation raises, which is how the tests prove Algorithm 1 is
  synchronization-free).
* :mod:`repro.pram.machine` — the lockstep executor: each cycle, every
  live processor issues exactly one operation (read / write / compute);
  writes commit synchronously at end of cycle.
* :mod:`repro.pram.program` — the operation vocabulary and program type.
* :mod:`repro.pram.metrics` — time (cycles), work (operation total),
  per-processor step counts.
* :mod:`repro.pram.merge_programs` — Merge Path, sequential merge and
  the naive split expressed as PRAM programs, plus the closed-form
  "counted" mode used at paper scale.
"""

from .program import Read, Write, Compute, Program
from .memory import AccessMode, SharedMemory
from .machine import PRAMMachine
from .metrics import RunMetrics
from .sort_programs import run_parallel_merge_sort_pram, SortRunMetrics
from .timeline import TimelineRecorder, TracingPRAMMachine, render_timeline
from .segmented_programs import run_segmented_merge_pram
from .merge_programs import (
    merge_path_program,
    sequential_merge_program,
    run_parallel_merge_pram,
    run_sequential_merge_pram,
    counted_parallel_merge,
    CountedMerge,
)

__all__ = [
    "Read",
    "Write",
    "Compute",
    "Program",
    "AccessMode",
    "SharedMemory",
    "PRAMMachine",
    "RunMetrics",
    "merge_path_program",
    "sequential_merge_program",
    "run_parallel_merge_pram",
    "run_sequential_merge_pram",
    "counted_parallel_merge",
    "CountedMerge",
    "run_parallel_merge_sort_pram",
    "SortRunMetrics",
    "TimelineRecorder",
    "TracingPRAMMachine",
    "render_timeline",
    "run_segmented_merge_pram",
]
