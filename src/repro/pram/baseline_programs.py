"""Baseline partitioners executed on the lockstep PRAM.

Section V's latency argument is about *machine time*: a partitioner
that hands one processor ``2N/p`` elements makes the whole barrier wait
for it.  :func:`run_partitioned_merge_pram` runs the merge phase of any
:class:`~repro.types.Partition` — Merge Path's, Shiloach–Vishkin's,
anyone's — on the lockstep machine, so the LB experiment can report the
measured cycle ratio, not just segment sizes.  (Partitioning cost is
excluded on purpose: the comparison isolates the load-balance effect
the paper's "2X increase in latency" sentence is about.)
"""

from __future__ import annotations

import numpy as np

from ..types import Partition, Segment
from ..validation import as_array, check_mergeable
from .machine import PRAMMachine
from .memory import AccessMode, SharedMemory
from .metrics import RunMetrics
from .program import Compute, Program, Read, Write

__all__ = ["segment_merge_program", "run_partitioned_merge_pram"]


def segment_merge_program(seg: Segment) -> Program:
    """Two-pointer merge of one segment as a PRAM program.

    Reads shared ``A``/``B``, writes its disjoint ``S`` range — the
    merge phase of Algorithm 1 (and of every baseline, which differ
    only in where the segment boundaries lie).
    """

    def prog() -> Program:
        i, j, k = seg.a_start, seg.b_start, seg.out_start
        while i < seg.a_end and j < seg.b_end:
            av = yield Read("A", i)
            bv = yield Read("B", j)
            yield Compute()
            if av <= bv:
                yield Write("S", k, av)
                i += 1
            else:
                yield Write("S", k, bv)
                j += 1
            k += 1
        while i < seg.a_end:
            av = yield Read("A", i)
            yield Write("S", k, av)
            i += 1
            k += 1
        while j < seg.b_end:
            bv = yield Read("B", j)
            yield Write("S", k, bv)
            j += 1
            k += 1

    return prog()


def run_partitioned_merge_pram(
    a: np.ndarray,
    b: np.ndarray,
    partition: Partition,
    *,
    mode: AccessMode = AccessMode.CREW,
) -> tuple[np.ndarray, RunMetrics]:
    """Execute a partition's merge phase on the lockstep PRAM.

    Returns ``(merged, metrics)``; ``metrics.time`` is the barrier time
    (slowest processor), the quantity Section V's latency comparison is
    about.  Works for any structurally valid partition — including the
    imbalanced Shiloach–Vishkin one — because each program only touches
    its own output range.
    """
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    mem = SharedMemory(mode)
    mem.alloc("A", a)
    mem.alloc("B", b)
    mem.alloc("S", np.zeros(partition.total_length,
                            dtype=np.promote_types(a.dtype, b.dtype)))
    machine = PRAMMachine(mem)
    programs = [
        segment_merge_program(seg) for seg in partition.segments if seg.length
    ]
    if not programs:
        return mem.array("S").copy(), RunMetrics(steps_per_processor=[0])
    metrics = machine.run(programs)
    return mem.array("S").copy(), metrics
