"""Lockstep PRAM executor.

Runs a set of per-processor generator programs in synchronous cycles:
every live program issues exactly one operation per cycle; the shared
memory audits the batch against the access mode, serves reads from the
pre-cycle state and commits writes at cycle end.  Programs that finish
simply stop issuing; the run ends when all have halted.

This is deliberately a *faithful* (slow) model — it executes one Python
generator step per processor-cycle — used for correctness proofs and
complexity measurements at small N.  Paper-scale runs use the
closed-form counted mode in :mod:`repro.pram.merge_programs`.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import DeadlockError, InputError
from .memory import SharedMemory
from .metrics import RunMetrics
from .program import Compute, Op, Program, Read, Write

__all__ = ["PRAMMachine"]


class PRAMMachine:
    """A p-processor synchronous PRAM over a :class:`SharedMemory`.

    Parameters
    ----------
    memory:
        The shared memory (carries the access mode).
    max_cycles:
        Safety valve: abort with :class:`~repro.errors.DeadlockError`
        if the run exceeds this many cycles (default 50 million).
    """

    def __init__(self, memory: SharedMemory, max_cycles: int = 50_000_000) -> None:
        self.memory = memory
        self.max_cycles = max_cycles

    def run(self, programs: Sequence[Program]) -> RunMetrics:
        """Execute the programs to completion in lockstep.

        Returns
        -------
        RunMetrics
            time / work / per-processor counters for the run.
        """
        if not programs:
            raise InputError("need at least one program")
        p = len(programs)
        metrics = RunMetrics(steps_per_processor=[0] * p)

        # Prime every generator to obtain its first pending operation.
        pending: list[Op | None] = []
        live: list[Program | None] = list(programs)
        for pid, prog in enumerate(programs):
            try:
                op = next(prog)
                pending.append(self._validate_op(op, pid))
            except StopIteration:
                live[pid] = None
                pending.append(None)

        # Expand Compute(units=k) into k single-cycle computes.
        compute_debt = [0] * p
        for pid, op in enumerate(pending):
            if isinstance(op, Compute) and op.units > 1:
                compute_debt[pid] = op.units - 1
                pending[pid] = Compute()

        while any(prog is not None for prog in live):
            if metrics.cycles >= self.max_cycles:
                raise DeadlockError(
                    f"run exceeded {self.max_cycles} cycles; "
                    "suspect a non-terminating program"
                )
            reads: dict[int, tuple[str, int]] = {}
            writes: dict[int, tuple[str, int, Any]] = {}
            for pid, op in enumerate(pending):
                if op is None:
                    continue
                if isinstance(op, Read):
                    reads[pid] = (op.array, op.index)
                elif isinstance(op, Write):
                    writes[pid] = (op.array, op.index, op.value)
                # Compute ops generate no memory traffic.

            results = self.memory.execute_cycle(reads, writes)
            metrics.cycles += 1
            metrics.reads += len(reads)
            metrics.writes += len(writes)

            # Advance every live program with its result (None for
            # writes/computes), collecting next cycle's operations.
            for pid, prog in enumerate(live):
                if prog is None:
                    continue
                metrics.steps_per_processor[pid] += 1
                if isinstance(pending[pid], Compute):
                    metrics.computes += 1
                    if compute_debt[pid] > 0:
                        compute_debt[pid] -= 1
                        continue  # stay on the same Compute op
                try:
                    nxt = prog.send(results.get(pid))
                except StopIteration:
                    live[pid] = None
                    pending[pid] = None
                    continue
                nxt = self._validate_op(nxt, pid)
                if isinstance(nxt, Compute) and nxt.units > 1:
                    compute_debt[pid] = nxt.units - 1
                    nxt = Compute()
                pending[pid] = nxt
        metrics.concurrent_read_events = self.memory.concurrent_read_events
        return metrics

    @staticmethod
    def _validate_op(op: object, pid: int) -> Op:
        if not isinstance(op, (Read, Write, Compute)):
            raise InputError(
                f"processor {pid} yielded {op!r}; programs must yield "
                "Read/Write/Compute operations"
            )
        if isinstance(op, Compute) and op.units < 1:
            raise InputError(f"Compute.units must be >= 1, got {op.units}")
        return op
