"""Shared PRAM memory with access-mode enforcement.

The memory owns named 1-D arrays (numpy-backed).  During each machine
cycle it collects every processor's access and validates the
concurrent-access rules of the selected :class:`AccessMode`:

* ``EREW`` — no two processors may touch (read *or* write) one address
  in the same cycle.
* ``CREW`` — concurrent reads allowed; an address written this cycle
  may be touched by no other processor (the paper's model).
* ``CRCW_COMMON`` — concurrent writes allowed only if every writer
  stores the same value.

Violations raise :class:`~repro.errors.MemoryConflictError` naming the
address and processors — the mechanism by which the test suite proves
Algorithm 1 needs no synchronization (it runs clean under CREW) and
quantifies what EREW would cost (the partition search provokes
concurrent reads).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Any, Mapping

import numpy as np

from ..errors import InputError, MemoryConflictError

__all__ = ["AccessMode", "SharedMemory"]


class AccessMode(enum.Enum):
    """Concurrent-access contract enforced per cycle."""

    EREW = "EREW"
    CREW = "CREW"
    CRCW_COMMON = "CRCW_COMMON"


class SharedMemory:
    """Named-array shared memory with per-cycle conflict auditing."""

    def __init__(self, mode: AccessMode = AccessMode.CREW) -> None:
        self.mode = mode
        self._arrays: dict[str, np.ndarray] = {}
        #: Cumulative counts for metrics.
        self.total_reads = 0
        self.total_writes = 0
        #: Number of addresses that ever saw a legal concurrent read
        #: (interesting because the paper remarks such sharing is rare).
        self.concurrent_read_events = 0

    # ------------------------------------------------------------------
    # Array management
    # ------------------------------------------------------------------
    def alloc(self, name: str, data_or_size: np.ndarray | int) -> None:
        """Register array ``name``, either copying ``data`` or zero-filled."""
        if name in self._arrays:
            raise InputError(f"array {name!r} already allocated")
        if isinstance(data_or_size, (int, np.integer)):
            self._arrays[name] = np.zeros(int(data_or_size))
        else:
            self._arrays[name] = np.array(data_or_size, copy=True)

    def array(self, name: str) -> np.ndarray:
        """Direct (host-side) view of an array, for setup and verification."""
        try:
            return self._arrays[name]
        except KeyError:
            raise InputError(f"no array named {name!r}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._arrays)

    def _check_bounds(self, array: str, index: int) -> None:
        arr = self.array(array)
        if not 0 <= index < len(arr):
            raise InputError(
                f"address {array}[{index}] out of bounds (len {len(arr)})"
            )

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------
    def execute_cycle(
        self,
        reads: Mapping[int, tuple[str, int]],
        writes: Mapping[int, tuple[str, int, Any]],
    ) -> dict[int, Any]:
        """Apply one lockstep cycle of accesses.

        Parameters
        ----------
        reads:
            ``pid -> (array, index)`` for every processor reading.
        writes:
            ``pid -> (array, index, value)`` for every processor writing.

        Returns
        -------
        dict
            ``pid -> value`` read results, taken from the memory state
            *before* this cycle's writes commit (synchronous PRAM
            semantics).

        Raises
        ------
        MemoryConflictError
            On any violation of the configured access mode.
        """
        readers: dict[tuple[str, int], list[int]] = defaultdict(list)
        writers: dict[tuple[str, int], list[int]] = defaultdict(list)
        for pid, (arr, idx) in reads.items():
            self._check_bounds(arr, idx)
            readers[(arr, idx)].append(pid)
        for pid, (arr, idx, _val) in writes.items():
            self._check_bounds(arr, idx)
            writers[(arr, idx)].append(pid)

        self._audit(readers, writers, writes)

        # Reads observe pre-cycle state.
        results = {
            pid: self._arrays[arr][idx] for pid, (arr, idx) in reads.items()
        }
        # Writes commit together at end of cycle.
        for _pid, (arr, idx, val) in writes.items():
            self._arrays[arr][idx] = val

        self.total_reads += len(reads)
        self.total_writes += len(writes)
        self.concurrent_read_events += sum(
            1 for pids in readers.values() if len(pids) > 1
        )
        return results

    def _audit(
        self,
        readers: Mapping[tuple[str, int], list[int]],
        writers: Mapping[tuple[str, int], list[int]],
        writes: Mapping[int, tuple[str, int, Any]],
    ) -> None:
        """Raise on the first access-rule violation for this cycle."""
        if self.mode is AccessMode.EREW:
            for addr, pids in readers.items():
                others = writers.get(addr, [])
                if len(pids) + len(others) > 1:
                    raise MemoryConflictError(
                        "EREW access", addr, tuple(pids + others)
                    )
            for addr, pids in writers.items():
                if len(pids) > 1 or addr in readers:
                    raise MemoryConflictError(
                        "EREW write",
                        addr,
                        tuple(pids + readers.get(addr, [])),
                    )
            return

        # CREW and CRCW share the read-write exclusion rule.
        for addr, wpids in writers.items():
            rpids = readers.get(addr, [])
            if rpids:
                raise MemoryConflictError(
                    "read-write", addr, tuple(wpids + rpids)
                )
            if len(wpids) > 1:
                if self.mode is AccessMode.CREW:
                    raise MemoryConflictError(
                        "CREW write", addr, tuple(wpids)
                    )
                # CRCW_COMMON: all written values must agree.
                vals = {repr(writes[pid][2]) for pid in wpids}
                if len(vals) > 1:
                    raise MemoryConflictError(
                        "CRCW-common disagreement", addr, tuple(wpids)
                    )
