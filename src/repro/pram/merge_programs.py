"""Merge algorithms expressed as PRAM programs, plus counted mode.

Three layers:

* :func:`merge_path_program` / :func:`sequential_merge_program` —
  Algorithm 1 and the plain sequential merge written in the PRAM
  operation vocabulary, cycle-accurate, for the lockstep machine.
* :func:`run_parallel_merge_pram` / :func:`run_sequential_merge_pram` —
  convenience drivers that allocate memory, run the machine and return
  the merged output together with :class:`~repro.pram.metrics.RunMetrics`.
* :func:`counted_parallel_merge` — closed-form per-processor cycle
  counts for Algorithm 1 *without* stepping the machine.  The formula is
  exact for the programs above (validated against the lockstep machine
  in the test suite) and is what lets the Figure 5 experiment run at
  256M elements: counting replaces simulating.

Cycle model of Algorithm 1 per processor (matching the generators):

* binary search: 2 reads + 1 compute per probe (read A[mid], read
  B[d-1-mid], compare);
* merge loop: per output element, 2 reads + 1 compute + 1 write while
  both sub-arrays are non-empty, 1 read + 1 write during the tail copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.merge_path import diagonal_bounds, partition_merge_path
from ..types import Partition
from ..validation import as_array, check_mergeable, check_positive
from .machine import PRAMMachine
from .memory import AccessMode, SharedMemory
from .metrics import RunMetrics
from .program import Compute, Program, Read, Write

__all__ = [
    "merge_path_program",
    "sequential_merge_program",
    "run_parallel_merge_pram",
    "run_sequential_merge_pram",
    "counted_parallel_merge",
    "CountedMerge",
    "SEARCH_CYCLES_PER_PROBE",
    "MERGE_CYCLES_PER_ELEMENT",
    "TAIL_CYCLES_PER_ELEMENT",
]

#: Cycles one binary-search probe costs (2 reads + 1 compare).
SEARCH_CYCLES_PER_PROBE = 3
#: Cycles one two-sided merge step costs (2 reads + 1 compare + 1 write).
MERGE_CYCLES_PER_ELEMENT = 4
#: Cycles one exhausted-tail copy step costs (1 read + 1 write).
TAIL_CYCLES_PER_ELEMENT = 2


def merge_path_program(
    pid: int, p: int, a_len: int, b_len: int
) -> Program:
    """Algorithm 1 for processor ``pid`` of ``p`` as a PRAM program.

    Steps 1–3 of the paper's listing: compute the starting diagonal,
    binary-search its merge-path intersection (reading shared ``A`` and
    ``B``), then run the sequential merge for the segment, writing the
    shared output ``S``.  Note every processor reads *shared* arrays and
    writes a *disjoint* output range — exactly the access pattern whose
    CREW-cleanliness the simulator verifies.
    """
    n = a_len + b_len
    d_start = (pid * n) // p  # step 1: DiagonalNum (0-based)
    d_end = ((pid + 1) * n) // p

    def search(d: int):
        """Binary search of the merge path / diagonal-d intersection."""
        lo, hi = diagonal_bounds(d, a_len, b_len)
        while lo < hi:
            mid = (lo + hi) // 2
            av = yield Read("A", mid)
            bv = yield Read("B", d - 1 - mid)
            yield Compute()  # the comparison
            if av <= bv:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def prog() -> Program:
        # Step 2: find own start; the end boundary is the next
        # processor's start, recomputed locally (no communication, at
        # the cost of the small duplicated search the paper accepts).
        i0 = yield from search(d_start)
        j0 = d_start - i0
        if d_end >= n:
            i1, j1 = a_len, b_len
        else:
            i1 = yield from search(d_end)
            j1 = d_end - i1
        # Step 3: sequential merge of A[i0:i1] with B[j0:j1] into
        # S[d_start:d_end].
        i, j, k = i0, j0, d_start
        while i < i1 and j < j1:
            av = yield Read("A", i)
            bv = yield Read("B", j)
            yield Compute()
            if av <= bv:
                yield Write("S", k, av)
                i += 1
            else:
                yield Write("S", k, bv)
                j += 1
            k += 1
        while i < i1:
            av = yield Read("A", i)
            yield Write("S", k, av)
            i += 1
            k += 1
        while j < j1:
            bv = yield Read("B", j)
            yield Write("S", k, bv)
            j += 1
            k += 1

    return prog()


def sequential_merge_program(a_len: int, b_len: int) -> Program:
    """Plain one-processor merge as a PRAM program (the baseline)."""

    def prog() -> Program:
        i = j = k = 0
        while i < a_len and j < b_len:
            av = yield Read("A", i)
            bv = yield Read("B", j)
            yield Compute()
            if av <= bv:
                yield Write("S", k, av)
                i += 1
            else:
                yield Write("S", k, bv)
                j += 1
            k += 1
        while i < a_len:
            av = yield Read("A", i)
            yield Write("S", k, av)
            i += 1
            k += 1
        while j < b_len:
            bv = yield Read("B", j)
            yield Write("S", k, bv)
            j += 1
            k += 1

    return prog()


def _setup_memory(a: np.ndarray, b: np.ndarray, mode: AccessMode) -> SharedMemory:
    mem = SharedMemory(mode)
    mem.alloc("A", a)
    mem.alloc("B", b)
    out_dtype = np.promote_types(a.dtype, b.dtype)
    mem.alloc("S", np.zeros(len(a) + len(b), dtype=out_dtype))
    return mem


def run_parallel_merge_pram(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    *,
    mode: AccessMode = AccessMode.CREW,
) -> tuple[np.ndarray, RunMetrics]:
    """Run Algorithm 1 on the lockstep PRAM and return (merged, metrics)."""
    check_positive(p, "p")
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    mem = _setup_memory(a, b, mode)
    machine = PRAMMachine(mem)
    programs = [merge_path_program(pid, p, len(a), len(b)) for pid in range(p)]
    metrics = machine.run(programs)
    return mem.array("S").copy(), metrics


def run_sequential_merge_pram(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, RunMetrics]:
    """Run the sequential merge on the PRAM (p = 1 baseline)."""
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)
    mem = _setup_memory(a, b, AccessMode.CREW)
    machine = PRAMMachine(mem)
    metrics = machine.run([sequential_merge_program(len(a), len(b))])
    return mem.array("S").copy(), metrics


@dataclass(frozen=True, slots=True)
class CountedMerge:
    """Closed-form Algorithm 1 cycle counts (no simulation).

    ``search_cycles[k]`` and ``merge_cycles[k]`` are processor ``k``'s
    cycles in the two phases; time is ``max`` of the sums, work their
    grand total — identical definitions to the lockstep machine.
    """

    partition: Partition
    search_cycles: tuple[int, ...]
    merge_cycles: tuple[int, ...]

    @property
    def per_processor(self) -> tuple[int, ...]:
        """Total cycles per processor."""
        return tuple(
            s + m for s, m in zip(self.search_cycles, self.merge_cycles)
        )

    @property
    def time(self) -> int:
        """PRAM time: slowest processor's cycle count."""
        return max(self.per_processor)

    @property
    def work(self) -> int:
        """PRAM work: all processors' cycles summed."""
        return sum(self.per_processor)


def _search_probe_count(a: np.ndarray, b: np.ndarray, d: int) -> int:
    """Exact probe count of the program's binary search on diagonal d."""
    lo, hi = diagonal_bounds(d, len(a), len(b))
    probes = 0
    while lo < hi:
        mid = (lo + hi) // 2
        probes += 1
        if a[mid] <= b[d - 1 - mid]:
            lo = mid + 1
        else:
            hi = mid
    return probes


def counted_parallel_merge(a: np.ndarray, b: np.ndarray, p: int) -> CountedMerge:
    """Count Algorithm 1's cycles per processor without simulating.

    Runs the real partition (so the segment shapes — and therefore the
    two-sided vs tail-copy mix — are data-exact), then prices each
    processor's phases with the documented cycle model.  Agreement with
    the lockstep machine is asserted by ``tests/pram``.
    """
    check_positive(p, "p")
    a = as_array(a, "A")
    b = as_array(b, "B")
    n = len(a) + len(b)

    partition = partition_merge_path(a, b, p, check=False)
    search_cycles = []
    merge_cycles = []
    for pid, seg in enumerate(partition.segments):
        d_start = (pid * n) // p
        d_end = ((pid + 1) * n) // p
        probes = _search_probe_count(a, b, d_start) if 0 < d_start < n else 0
        if 0 < d_end < n:
            probes += _search_probe_count(a, b, d_end)
        # How many merge steps run two-sided vs as tail copy depends on
        # where the segment's path hits an input edge; compute exactly.
        two_sided = _two_sided_steps(a, b, seg)
        tail = seg.length - two_sided
        search_cycles.append(probes * SEARCH_CYCLES_PER_PROBE)
        merge_cycles.append(
            two_sided * MERGE_CYCLES_PER_ELEMENT + tail * TAIL_CYCLES_PER_ELEMENT
        )
    return CountedMerge(
        partition=partition,
        search_cycles=tuple(search_cycles),
        merge_cycles=tuple(merge_cycles),
    )


def _two_sided_steps(a: np.ndarray, b: np.ndarray, seg) -> int:
    """Output elements the segment produces while both inputs are live.

    The two-pointer loop exits once either sub-array is exhausted; the
    number of two-sided steps is the path length until the segment's
    path first reaches its own A- or B-boundary.  That point is the
    merge-path intersection with the *rectangle edge*, found with the
    same O(log) search on the smaller dimension.
    """
    la = seg.a_len
    lb = seg.b_len
    if la == 0 or lb == 0:
        return 0
    sub_a = a[seg.a_start : seg.a_end]
    sub_b = b[seg.b_start : seg.b_end]
    # Binary search the largest t such that after t path steps inside
    # the segment, neither input is exhausted.  Equivalent formulation:
    # steps until exhaustion = position where the path meets i==la or
    # j==lb; path point at local diagonal d is monotone in d, so bisect.
    lo, hi = 0, la + lb
    from ..core.merge_path import diagonal_intersection

    while lo < hi:
        mid = (lo + hi + 1) // 2
        pt = diagonal_intersection(sub_a, sub_b, mid)
        if pt.i < la and pt.j < lb:
            lo = mid
        else:
            hi = mid - 1
    # lo = last diagonal with both sides strictly unfinished; the
    # two-pointer loop also executes the step that exhausts one side.
    return min(lo + 1, la + lb)
