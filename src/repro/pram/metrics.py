"""Run metrics for PRAM executions.

The two complexity measures of the paper's Section V:

* **time** — number of lockstep cycles until the last processor halts
  (elapsed time on the abstract machine);
* **work** — total operations executed across processors (what a single
  processor would need; parallelization must not inflate it).

Per-processor step counts are kept so load balance (Corollary 7) can be
checked directly: for Merge Path, ``max(steps) - min(steps)`` stays
within the partition's ±1 segment-length slack plus the log-factor
search-depth variation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunMetrics"]


@dataclass(slots=True)
class RunMetrics:
    """Aggregated counters from one PRAM run."""

    #: Cycles each processor was active (issued an operation).
    steps_per_processor: list[int] = field(default_factory=list)
    #: Total lockstep cycles until every program finished.
    cycles: int = 0
    reads: int = 0
    writes: int = 0
    computes: int = 0
    #: Cycles in which at least two processors legally read one address.
    concurrent_read_events: int = 0

    @property
    def p(self) -> int:
        """Number of processors in the run."""
        return len(self.steps_per_processor)

    @property
    def time(self) -> int:
        """PRAM time: lockstep cycles (== max active steps once all halt)."""
        return self.cycles

    @property
    def work(self) -> int:
        """PRAM work: total operations across processors."""
        return sum(self.steps_per_processor)

    @property
    def speedup_vs_work(self) -> float:
        """work / time — parallel speedup relative to one processor
        executing the same operations back to back."""
        return self.work / self.time if self.time else 1.0

    @property
    def efficiency(self) -> float:
        """Speedup divided by processor count (1.0 == perfect scaling)."""
        return self.speedup_vs_work / self.p if self.p else 1.0

    @property
    def load_imbalance(self) -> int:
        """max − min active steps across processors."""
        if not self.steps_per_processor:
            return 0
        return max(self.steps_per_processor) - min(self.steps_per_processor)
