"""PRAM operation vocabulary and program representation.

A PRAM *program* is a Python generator: each ``yield`` hands the machine
exactly one operation to execute in the current cycle, and (for reads)
the machine sends the read value back as the result of the ``yield``
expression.  This turns the paper's per-processor pseudocode into
ordinary sequential Python whose every memory touch is visible to the
lockstep executor and the conflict auditor:

.. code-block:: python

    def prog(pid):
        v = yield Read("A", 3)      # cycle 1: read A[3]
        yield Compute()              # cycle 2: one local ALU step
        yield Write("S", 0, v + 1)  # cycle 3: write S[0]

Addresses are ``(array_name, index)`` pairs rather than raw integers —
semantically identical for conflict analysis, and far easier to audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Union

__all__ = ["Read", "Write", "Compute", "Op", "Program"]


@dataclass(frozen=True, slots=True)
class Read:
    """Read ``array[index]``; the value arrives as the yield's result."""

    array: str
    index: int


@dataclass(frozen=True, slots=True)
class Write:
    """Write ``value`` to ``array[index]``; commits at end of cycle."""

    array: str
    index: int
    value: Any


@dataclass(frozen=True, slots=True)
class Compute:
    """One cycle of local computation (no memory traffic).

    ``units`` > 1 is shorthand for that many consecutive compute cycles.
    """

    units: int = 1


Op = Union[Read, Write, Compute]

#: A PRAM program: a generator yielding ops and receiving read values.
Program = Generator[Op, Any, None]
