"""Algorithm 2 (Segmented Parallel Merge) on the lockstep PRAM.

Completes the PRAM program family: the cache-efficient merge's outer
block loop is serial with a barrier per block (step 3 of the paper's
listing), which maps to one machine phase per block — the same
phase-synchronized structure as the PRAM sort.

Beyond correctness, this measures the *time cost* of SPM's extra
synchronization, the paper's own complexity caveat
(``N/C · log C`` partitioning overhead): comparing
:func:`run_segmented_merge_pram` time against the basic Algorithm 1
time quantifies what the cache locality buys its latency price with.
"""

from __future__ import annotations

import numpy as np

from ..core.segmented_merge import plan_segments
from ..types import Segment
from ..validation import as_array, check_mergeable, check_positive
from .machine import PRAMMachine
from .memory import AccessMode, SharedMemory
from .program import Compute, Program, Read, Write
from .sort_programs import SortRunMetrics

__all__ = ["run_segmented_merge_pram"]


def _block_segment_program(
    block: Segment, seg: Segment
) -> Program:
    """One processor's sub-segment of one SPM block, global coordinates."""

    def prog() -> Program:
        i = block.a_start + seg.a_start
        i_end = block.a_start + seg.a_end
        j = block.b_start + seg.b_start
        j_end = block.b_start + seg.b_end
        k = block.out_start + seg.out_start
        while i < i_end and j < j_end:
            av = yield Read("A", i)
            bv = yield Read("B", j)
            yield Compute()
            if av <= bv:
                yield Write("S", k, av)
                i += 1
            else:
                yield Write("S", k, bv)
                j += 1
            k += 1
        while i < i_end:
            av = yield Read("A", i)
            yield Write("S", k, av)
            i += 1
            k += 1
        while j < j_end:
            bv = yield Read("B", j)
            yield Write("S", k, bv)
            j += 1
            k += 1

    return prog()


def run_segmented_merge_pram(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    L: int,
    *,
    mode: AccessMode = AccessMode.CREW,
    charge_searches: bool = True,
) -> tuple[np.ndarray, SortRunMetrics]:
    """Run Algorithm 2 on the lockstep PRAM, one phase per block.

    ``charge_searches`` adds each block's partition searches as compute
    phases of the appropriate depth (the per-block ``log C`` term);
    disable to isolate pure merge time.

    Returns ``(merged, metrics)`` with per-phase cycles.
    """
    check_positive(p, "p")
    check_positive(L, "L")
    a = as_array(a, "A")
    b = as_array(b, "B")
    check_mergeable(a, b)

    mem = SharedMemory(mode)
    mem.alloc("A", a)
    mem.alloc("B", b)
    mem.alloc(
        "S", np.zeros(len(a) + len(b), dtype=np.promote_types(a.dtype, b.dtype))
    )
    machine = PRAMMachine(mem)
    metrics = SortRunMetrics()

    for plan in plan_segments(a, b, p, L, check=False):
        programs = [
            _block_segment_program(plan.block, seg)
            for seg in plan.partition.segments
            if seg.length > 0
        ]
        if charge_searches:
            # Each processor's intra-block diagonal search: measure the
            # actual probe count against the block windows and prepend
            # an equivalent Read/Read/Compute phase cost by running the
            # probes as real programs.
            wa = a[plan.block.a_start : plan.block.a_end]
            wb = b[plan.block.b_start : plan.block.b_end]
            lb = plan.block.length
            search_programs = []
            for k in range(1, p):
                d = (k * lb) // p
                if 0 < d < lb:
                    search_programs.append(
                        _search_program(
                            wa, wb, d, plan.block.a_start, plan.block.b_start
                        )
                    )
            if search_programs:
                phase = machine.run(search_programs)
                metrics.phase_cycles.append(phase.cycles)
                metrics.total_work += phase.work
        if programs:
            phase = machine.run(programs)
            metrics.phase_cycles.append(phase.cycles)
            metrics.total_work += phase.work
    return mem.array("S").copy(), metrics


def _search_program(
    wa: np.ndarray, wb: np.ndarray, d: int, a_off: int, b_off: int
) -> Program:
    """One intra-block diagonal search as a PRAM program.

    Probes global addresses (window offsets applied) so concurrent-read
    auditing covers the search phase too.
    """

    def prog() -> Program:
        lo = max(0, d - len(wb))
        hi = min(d, len(wa))
        while lo < hi:
            mid = (lo + hi) // 2
            av = yield Read("A", a_off + mid)
            bv = yield Read("B", b_off + d - 1 - mid)
            yield Compute()
            if av <= bv:
                lo = mid + 1
            else:
                hi = mid

    return prog()
