"""Parallel merge sort as barrier-synchronized PRAM phases (Section III).

The paper's sort runs ``log N`` rounds "one after the other" — a global
barrier between rounds.  On the lockstep machine that maps naturally to
one :meth:`~repro.pram.machine.PRAMMachine.run` per phase over a shared
memory that persists across phases:

* **Phase 0** — each processor bottom-up merge-sorts its own chunk of
  ``X`` in place (via the scratch array ``Y``), independently.
* **Merge round r** — adjacent sorted runs are merged pairwise; the
  processors assigned to a pair first binary-search their merge-path
  diagonals *inside the run ranges* (reads of shared ``X``), then merge
  their segments into ``Y``; a final copy phase moves ``Y`` back to
  ``X``.  (Ping-pong would avoid the copy; the copy keeps every round's
  invariant "sorted runs live in X" simple, and its cost is charged
  honestly.)

``run_parallel_merge_sort_pram`` returns the sorted array plus
:class:`SortRunMetrics` with per-phase cycle counts — the measured
quantity behind the Section III complexity claim, now from a real
lockstep execution rather than the counted approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..validation import as_array, check_positive
from .machine import PRAMMachine
from .memory import AccessMode, SharedMemory
from .metrics import RunMetrics
from .program import Compute, Program, Read, Write

__all__ = ["run_parallel_merge_sort_pram", "SortRunMetrics"]


@dataclass(slots=True)
class SortRunMetrics:
    """Aggregated metrics of a phase-synchronized PRAM sort."""

    phase_cycles: list[int] = field(default_factory=list)
    total_work: int = 0

    @property
    def time(self) -> int:
        """Total cycles: phases are sequential (global barriers)."""
        return sum(self.phase_cycles)

    @property
    def phases(self) -> int:
        return len(self.phase_cycles)


def _merge_ranges_program(
    a_lo: int, a_hi: int, b_lo: int, b_hi: int,
    out_lo: int, d_start: int, d_end: int,
    src: str, dst: str,
) -> Program:
    """Merge path steps ``[d_start, d_end)`` of ``src[a_lo:a_hi]`` vs
    ``src[b_lo:b_hi]`` into ``dst`` — Algorithm 1 on sub-ranges.

    ``d_*`` are path positions local to this run pair.  The diagonal
    searches read shared ``src`` (CREW-legal), the merge writes a
    disjoint ``dst`` range.
    """
    la = a_hi - a_lo
    lb = b_hi - b_lo

    def search(d: int):
        lo = max(0, d - lb)
        hi = min(d, la)
        while lo < hi:
            mid = (lo + hi) // 2
            av = yield Read(src, a_lo + mid)
            bv = yield Read(src, b_lo + d - 1 - mid)
            yield Compute()
            if av <= bv:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def prog() -> Program:
        i0 = yield from search(d_start)
        j0 = d_start - i0
        if d_end >= la + lb:
            i1, j1 = la, lb
        else:
            i1 = yield from search(d_end)
            j1 = d_end - i1
        i, j, k = i0, j0, out_lo + d_start
        while i < i1 and j < j1:
            av = yield Read(src, a_lo + i)
            bv = yield Read(src, b_lo + j)
            yield Compute()
            if av <= bv:
                yield Write(dst, k, av)
                i += 1
            else:
                yield Write(dst, k, bv)
                j += 1
            k += 1
        while i < i1:
            av = yield Read(src, a_lo + i)
            yield Write(dst, k, av)
            i += 1
            k += 1
        while j < j1:
            bv = yield Read(src, b_lo + j)
            yield Write(dst, k, bv)
            j += 1
            k += 1

    return prog()


def _local_sort_program(lo: int, hi: int) -> Program:
    """Bottom-up merge sort of ``X[lo:hi]`` by one processor.

    Each width pass merges adjacent runs into ``Y`` then copies back —
    2 reads + 1 compare + 1 write per element per pass, plus the
    copy-back's 1 read + 1 write.
    """

    def merge_pass(width: int):
        start = lo
        while start < hi:
            mid = min(start + width, hi)
            end = min(start + 2 * width, hi)
            i, j, k = start, mid, start
            while i < mid and j < end:
                av = yield Read("X", i)
                bv = yield Read("X", j)
                yield Compute()
                if av <= bv:
                    yield Write("Y", k, av)
                    i += 1
                else:
                    yield Write("Y", k, bv)
                    j += 1
                k += 1
            while i < mid:
                av = yield Read("X", i)
                yield Write("Y", k, av)
                i += 1
                k += 1
            while j < end:
                bv = yield Read("X", j)
                yield Write("Y", k, bv)
                j += 1
                k += 1
            start = end
        # copy back so the next pass reads X again
        for idx in range(lo, hi):
            v = yield Read("Y", idx)
            yield Write("X", idx, v)

    def prog() -> Program:
        width = 1
        while width < hi - lo:
            yield from merge_pass(width)
            width *= 2

    return prog()


def _copy_program(lo: int, hi: int, src: str, dst: str) -> Program:
    def prog() -> Program:
        for idx in range(lo, hi):
            v = yield Read(src, idx)
            yield Write(dst, idx, v)

    return prog()


def run_parallel_merge_sort_pram(
    x: np.ndarray,
    p: int,
    *,
    mode: AccessMode = AccessMode.CREW,
    max_cycles: int = 50_000_000,
) -> tuple[np.ndarray, SortRunMetrics]:
    """Sort ``x`` on the lockstep PRAM with ``p`` processors.

    Returns ``(sorted_array, metrics)``.  Every memory access of every
    phase goes through the audited shared memory, so a CREW violation
    anywhere in the sort raises — the synchronization-freedom proof for
    the whole pipeline, not just one merge.
    """
    check_positive(p, "p")
    x = as_array(x, "x")
    n = len(x)
    metrics = SortRunMetrics()
    if n <= 1:
        return x.copy(), metrics

    mem = SharedMemory(mode)
    mem.alloc("X", x)
    mem.alloc("Y", np.zeros(n, dtype=x.dtype))
    machine = PRAMMachine(mem, max_cycles=max_cycles)

    def run_phase(programs: list[Program]) -> None:
        if not programs:
            return
        phase: RunMetrics = machine.run(programs)
        metrics.phase_cycles.append(phase.cycles)
        metrics.total_work += phase.work

    # Phase 0: independent chunk sorts.
    chunks = min(p, n)
    bounds = [(k * n) // chunks for k in range(chunks + 1)]
    run_phase(
        [
            _local_sort_program(lo, hi)
            for lo, hi in zip(bounds, bounds[1:])
            if hi - lo > 1
        ]
    )

    # Merge rounds over run boundaries, with a copy-back phase each.
    runs = [(lo, hi) for lo, hi in zip(bounds, bounds[1:]) if hi > lo]
    while len(runs) > 1:
        pairs = [(runs[i], runs[i + 1]) for i in range(0, len(runs) - 1, 2)]
        procs_per_pair = max(1, p // len(pairs))
        programs: list[Program] = []
        for (a_lo, a_hi), (b_lo, b_hi) in pairs:
            total = (a_hi - a_lo) + (b_hi - b_lo)
            for k in range(procs_per_pair):
                d0 = (k * total) // procs_per_pair
                d1 = ((k + 1) * total) // procs_per_pair
                if d1 > d0:
                    programs.append(
                        _merge_ranges_program(
                            a_lo, a_hi, b_lo, b_hi, a_lo, d0, d1, "X", "Y"
                        )
                    )
        run_phase(programs)

        # copy merged regions back to X (split across all p processors)
        copy_spans = [(a[0], b[1]) for a, b in pairs]
        copy_programs: list[Program] = []
        for lo, hi in copy_spans:
            span = hi - lo
            workers = max(1, p // len(copy_spans))
            for k in range(workers):
                c0 = lo + (k * span) // workers
                c1 = lo + ((k + 1) * span) // workers
                if c1 > c0:
                    copy_programs.append(_copy_program(c0, c1, "Y", "X"))
        run_phase(copy_programs)

        next_runs = [(a[0], b[1]) for a, b in pairs]
        if len(runs) % 2:
            next_runs.append(runs[-1])
        runs = next_runs

    return mem.array("X").copy(), metrics
