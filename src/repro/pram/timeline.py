"""Per-cycle PRAM activity timelines (teaching/diagnostic aid).

A :class:`TimelineRecorder` hooks the lockstep machine's cycle loop and
records which operation kind each processor issued per cycle;
:func:`render_timeline` draws the result as an ASCII Gantt strip —
making load (im)balance *visible*: Merge Path's strips all end at the
same cycle; an imbalanced partition leaves long idle tails.

Legend: ``r`` read, ``w`` write, ``c`` compute, ``.`` idle (halted).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InputError
from .machine import PRAMMachine
from .memory import SharedMemory
from .metrics import RunMetrics
from .program import Program

__all__ = ["TimelineRecorder", "TracingPRAMMachine", "render_timeline"]


@dataclass(slots=True)
class TimelineRecorder:
    """Per-processor, per-cycle operation kinds."""

    lanes: list[list[str]] = field(default_factory=list)

    def ensure(self, p: int) -> None:
        while len(self.lanes) < p:
            self.lanes.append([])

    def record(self, pid: int, kind: str) -> None:
        self.lanes[pid].append(kind)

    def pad(self) -> None:
        """Pad halted processors with idle marks to the final cycle."""
        horizon = max((len(l) for l in self.lanes), default=0)
        for lane in self.lanes:
            lane.extend("." * (horizon - len(lane)))


class TracingPRAMMachine(PRAMMachine):
    """A PRAM machine that also fills a :class:`TimelineRecorder`.

    Implemented by shadowing the memory's ``execute_cycle`` — the one
    point every cycle's accesses already flow through — so the lockstep
    semantics are untouched.
    """

    def __init__(self, memory: SharedMemory, recorder: TimelineRecorder,
                 **kwargs) -> None:
        super().__init__(memory, **kwargs)
        self.recorder = recorder

    def run(self, programs: list[Program]) -> RunMetrics:
        self.recorder.ensure(len(programs))
        inner_execute = self.memory.execute_cycle
        p = len(programs)
        # cycle-indexed marks: None until classified
        marks: list[dict[int, str]] = []

        def traced_execute(reads, writes):
            cycle_marks = {}
            for pid in reads:
                cycle_marks[pid] = "r"
            for pid in writes:
                cycle_marks[pid] = "w"
            marks.append(cycle_marks)
            return inner_execute(reads, writes)

        self.memory.execute_cycle = traced_execute  # type: ignore[method-assign]
        try:
            metrics = super().run(programs)
        finally:
            self.memory.execute_cycle = inner_execute  # type: ignore[method-assign]
        # A lockstep processor never stalls: it is active for exactly its
        # first `steps` cycles.  Any active cycle without a memory mark
        # was a compute; cycles past its halt are idle.
        for pid in range(p):
            steps = metrics.steps_per_processor[pid]
            lane = self.recorder.lanes[pid]
            for t, cycle_marks in enumerate(marks):
                if t < steps:
                    lane.append(cycle_marks.get(pid, "c"))
                else:
                    lane.append(".")
        self.recorder.pad()
        return metrics


def render_timeline(
    recorder: TimelineRecorder, *, max_width: int = 100
) -> str:
    """Render lanes as an ASCII strip, compressing long runs if needed.

    When the horizon exceeds ``max_width`` cycles, each output column
    summarizes a bucket of cycles by its most interesting mark
    (w > r > c > .) so imbalance tails stay visible.
    """
    if max_width < 1:
        raise InputError("max_width must be >= 1")
    lanes = recorder.lanes
    if not lanes:
        return "(no timeline)"
    horizon = len(lanes[0])
    rank = {".": 0, "c": 1, "r": 2, "w": 3}
    lines = []
    for pid, lane in enumerate(lanes):
        if horizon <= max_width:
            strip = "".join(lane)
        else:
            strip = ""
            bucket = max(1, -(-horizon // max_width))
            for lo in range(0, horizon, bucket):
                chunk = lane[lo : lo + bucket]
                strip += max(chunk, key=lambda m: rank[m])
        lines.append(f"P{pid:<3} |{strip}|")
    lines.append(f"      cycles: {horizon} "
                 f"(r=read w=write c=compute .=idle)")
    return "\n".join(lines)
