"""Fault-tolerant execution layer for Merge Path backends.

The paper's structural guarantee makes this layer cheap: the ``p``
merge tasks produced by Algorithm 1 are independent, idempotent, and
write disjoint output slices (Theorem 14), so a supervisor may retry a
failed task, abandon a hung attempt, speculatively duplicate a
straggler, or replay a whole batch on a different backend — all without
locks or coordination, and without ever corrupting the merged output.

Components
----------
:class:`RetryPolicy`
    Frozen knobs: retries, per-attempt timeout, seeded-jitter
    exponential backoff, speculation thresholds.
:class:`ResilientBackend`
    Wraps any backend with per-task supervision and reports everything
    it did through :class:`ExecutionTelemetry`.
:class:`FaultInjector` / :class:`FaultyBackend`
    Seeded, deterministic chaos: injected errors, delays, hangs, and
    worker deaths for testing the layer (and the conformance chaos
    tier).
:func:`resolve_backend` / :class:`DegradingBackend`
    Graceful degradation along ``mpi → processes → threads → serial``
    with health probes and :class:`DegradationWarning` diagnostics.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, RecoveryPolicy
from .degrade import (
    DEGRADATION_CHAIN,
    DegradationEvent,
    DegradationWarning,
    DegradingBackend,
    RecoveryEvent,
    probe_backend,
    resolve_backend,
    subscribe_degradation,
    subscribe_recovery,
)
from .netchaos import ChaosProxy, ChaosProxyThread, ChaosSpec
from .faults import (
    FaultDecision,
    FaultInjector,
    FaultyBackend,
    InjectedFault,
    SimulatedWorkerDeath,
)
from .policy import RetryPolicy
from .resilient import ResilientBackend, innermost_backend
from .telemetry import BatchTelemetry, ExecutionTelemetry, TaskTelemetry

__all__ = [
    "RetryPolicy",
    "ResilientBackend",
    "innermost_backend",
    "FaultInjector",
    "FaultyBackend",
    "FaultDecision",
    "InjectedFault",
    "SimulatedWorkerDeath",
    "TaskTelemetry",
    "BatchTelemetry",
    "ExecutionTelemetry",
    "DEGRADATION_CHAIN",
    "DegradationWarning",
    "DegradationEvent",
    "RecoveryEvent",
    "subscribe_degradation",
    "subscribe_recovery",
    "probe_backend",
    "resolve_backend",
    "DegradingBackend",
    "CircuitBreaker",
    "RecoveryPolicy",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ChaosSpec",
    "ChaosProxy",
    "ChaosProxyThread",
]
