"""Circuit breaker: closed → open → half-open → closed, with recovery.

The degradation chain (PR 3) was a one-way ratchet: a level that
exhausted its strike budget was disabled for the rest of the process,
so one transient pool death pinned a server to ``serial`` forever.
The breaker makes recovery a first-class state transition:

``closed``
    The level is healthy; failures accrue strikes.  At
    ``failure_threshold`` strikes the breaker **opens**.
``open``
    The level receives no work for a cooldown period.  The cooldown is
    exponential in the number of consecutive opens and jittered by a
    *seeded* stream (``random.Random((seed, name, opens))``), so two
    runs of the same chaos schedule produce the same reopen times and
    a fleet of breakers does not re-probe in lockstep.
``half-open``
    The cooldown expired; exactly one caller wins :meth:`try_probe`
    and runs a health probe.  Success **closes** the breaker (strikes
    and the cooldown ladder reset); failure re-opens it with the next,
    longer cooldown.

Re-running work on a recovered level is safe for the same reason
retries are: the paper's merge tasks are idempotent and write disjoint
slices (Theorem 14), so nothing about a level's death-and-rebirth can
corrupt a result — the only question is *when* to trust it again,
which is exactly what this state machine answers.

Time is injected (``clock=``) so tests drive the cooldown ladder
deterministically instead of sleeping and hoping.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..errors import InputError

__all__ = ["RecoveryPolicy", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

#: Breaker states (string-valued for cheap introspection/logging).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for breaker cooldown and re-probe behavior.

    Parameters
    ----------
    cooldown_s:
        Base cooldown after the first open.
    multiplier / cooldown_cap_s:
        Consecutive opens grow the cooldown exponentially
        (``min(cap, cooldown_s * multiplier**(opens-1))``) — a level
        that keeps failing its re-probe is consulted less and less.
    jitter:
        Fractional jitter: each cooldown is multiplied by
        ``1 + U(0, jitter)`` drawn from a stream seeded with
        ``(seed, breaker-name, open-count)``, reproducible by seed.
    seed:
        Seeds the jitter stream.
    """

    cooldown_s: float = 5.0
    multiplier: float = 2.0
    cooldown_cap_s: float = 120.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cooldown_s <= 0:
            raise InputError("cooldown_s must be positive")
        if self.multiplier < 1.0:
            raise InputError("multiplier must be >= 1")
        if self.cooldown_cap_s < self.cooldown_s:
            raise InputError("cooldown_cap_s must be >= cooldown_s")
        if self.jitter < 0:
            raise InputError("jitter must be >= 0")

    def cooldown_for(self, name: str, opens: int) -> float:
        """Jittered cooldown before re-probe ``opens`` (1-based)."""
        base = min(
            self.cooldown_cap_s,
            self.cooldown_s * self.multiplier ** (opens - 1),
        )
        rng = random.Random(f"{self.seed}:{name}:{opens}")
        return base * (1.0 + rng.random() * self.jitter)


class CircuitBreaker:
    """One level's health state machine (thread-safe).

    ``policy=None`` degrades to the legacy one-way ratchet: once open,
    the breaker never half-opens, which is exactly the pre-breaker
    ``DegradingBackend`` behavior (a disabled level stays disabled).
    """

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 1,
        policy: RecoveryPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.failure_threshold = max(1, failure_threshold)
        self.policy = policy
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._strikes = 0
        self._opens = 0  #: consecutive opens since the last close
        self._opened_at = 0.0
        self._reopen_at = float("inf")
        self._last_reason = ""

    # -- introspection -------------------------------------------------

    @property
    def state(self) -> str:
        """Current state string (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            return self._state

    @property
    def strikes(self) -> int:
        """Failures accrued in the current closed period."""
        with self._lock:
            return self._strikes

    @property
    def opens(self) -> int:
        """Consecutive opens since the breaker last closed."""
        with self._lock:
            return self._opens

    @property
    def last_reason(self) -> str:
        """The failure message that caused the most recent strike."""
        with self._lock:
            return self._last_reason

    def cooldown_remaining(self) -> float:
        """Seconds until a half-open probe is allowed (0 when ready;
        ``inf`` when recovery is disabled or the breaker is closed)."""
        with self._lock:
            if self._state != OPEN or self.policy is None:
                return float("inf") if self._state == OPEN else 0.0
            return max(0.0, self._reopen_at - self.clock())

    # -- transitions ---------------------------------------------------

    def record_failure(self, reason: str = "") -> bool:
        """Register one failure; returns True when this strike opened
        (or re-opened) the breaker."""
        with self._lock:
            self._last_reason = reason
            if self._state == HALF_OPEN:
                # The probe's own batch failed: straight back to open.
                self._open_locked()
                return True
            self._strikes += 1
            if self._state == CLOSED and self._strikes >= self.failure_threshold:
                self._open_locked()
                return True
            return False

    def _open_locked(self) -> None:
        self._state = OPEN
        self._strikes = 0
        self._opens += 1
        self._opened_at = self.clock()
        if self.policy is None:
            self._reopen_at = float("inf")
        else:
            self._reopen_at = self._opened_at + self.policy.cooldown_for(
                self.name, self._opens
            )

    def allows(self) -> bool:
        """Whether a caller may route work through this level *now*
        (read-only: never transitions state)."""
        with self._lock:
            return self._state == CLOSED

    def try_probe(self) -> bool:
        """Attempt to claim the half-open probe slot.

        Returns True for exactly one caller once the cooldown expired;
        that caller must follow up with :meth:`record_probe_success` or
        :meth:`record_probe_failure`.  Everyone else keeps falling
        through to lower levels while the probe is in flight.
        """
        with self._lock:
            if self._state != OPEN or self.clock() < self._reopen_at:
                return False
            self._state = HALF_OPEN
            return True

    def record_probe_success(self) -> float:
        """Close the breaker after a successful probe; returns how long
        the level was out of rotation (seconds since it first opened)."""
        with self._lock:
            outage = max(0.0, self.clock() - self._opened_at)
            self._state = CLOSED
            self._strikes = 0
            self._opens = 0
            self._reopen_at = float("inf")
            return outage

    def record_probe_failure(self, reason: str = "") -> None:
        """Re-open after a failed probe (the cooldown ladder grows)."""
        with self._lock:
            self._last_reason = reason
            self._open_locked()

    def describe(self) -> str:
        """One-line diagnostic for logs and doctor output."""
        with self._lock:
            if self._state == OPEN and self.policy is not None:
                wait = max(0.0, self._reopen_at - self.clock())
                return (f"{self.name}: open (reprobe in {wait:.2f}s, "
                        f"opens={self._opens})")
            return f"{self.name}: {self._state} (strikes={self._strikes})"
