"""Graceful backend degradation: mpi → processes → threads → serial.

Two entry points:

* :func:`resolve_backend` — one-shot resolution.  Probes the preferred
  backend (construct + run a trivial task) and walks down the chain on
  failure, emitting a structured :class:`DegradationWarning` per hop,
  until a healthy backend answers; returns it wrapped in a
  :class:`~repro.resilience.ResilientBackend`.
* :class:`DegradingBackend` — a live fallback chain.  Levels are built
  lazily, each wrapped in a :class:`ResilientBackend`; when a batch
  still fails after that layer's retries (e.g. the pool keeps dying),
  the level accrues a strike, the batch transparently re-runs on the
  next level, and a level that exhausts its strike budget trips its
  per-level :class:`~repro.resilience.breaker.CircuitBreaker`.

Degradation is no longer a one-way ratchet: pass a
:class:`~repro.resilience.breaker.RecoveryPolicy` and a tripped level
re-enters rotation through the breaker's seeded-jitter cooldown and a
health re-probe (half-open → closed), emitting a structured
:class:`RecoveryEvent` that subscribers — the control plane, the serve
front door — consume to undo their own degradation reactions.  With
``recovery=None`` (the default) a tripped level stays out for the rest
of the run, the pre-breaker behavior.

The re-run-elsewhere move is safe for the same reason retries are: the
paper's merge tasks are idempotent and write disjoint slices
(Theorem 14), so a batch that half-ran on a dying pool can be replayed
wholesale on another executor — and one that re-runs on a *recovered*
executor is just another replay.  The serial tail of the default chain
cannot die, so a degrading execution always completes (or surfaces a
genuine task bug).
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..backends.base import Backend
from ..errors import BackendError, BackendUnavailableError, InputError
from ..types import Partition
from .breaker import CLOSED, CircuitBreaker, RecoveryPolicy
from .policy import RetryPolicy
from .resilient import ResilientBackend
from .telemetry import ExecutionTelemetry

__all__ = [
    "DEGRADATION_CHAIN",
    "DegradationWarning",
    "DegradationEvent",
    "RecoveryEvent",
    "subscribe_degradation",
    "subscribe_recovery",
    "probe_backend",
    "resolve_backend",
    "DegradingBackend",
]

#: Default fallback order, fastest-but-most-fragile first.
DEGRADATION_CHAIN: tuple[str, ...] = ("mpi", "processes", "threads", "serial")


class DegradationWarning(UserWarning):
    """A backend was skipped or abandoned in favor of a lower level."""


@dataclass(frozen=True, slots=True)
class DegradationEvent:
    """One structured hop down the degradation chain.

    Warnings tell a human *that* a level fell; events tell a subscriber
    *what* to do about it.  The control plane (:mod:`repro.control`)
    subscribes so a backend falling from processes to threads triggers
    re-tuning (the calibrated threads↔processes crossover is now
    routing work to a dead level) instead of silently worse latency.

    ``kind``
        ``"unavailable"`` (construction failed), ``"probe-failed"``
        (health probe), or ``"batch-failed"`` (a live batch exhausted
        the level's retries).
    ``backend`` / ``fallback``
        The level that fell and the next level tried (``None`` when the
        chain is exhausted).
    """

    kind: str
    backend: str
    fallback: str | None
    reason: str
    what: str = ""


@dataclass(frozen=True, slots=True)
class RecoveryEvent:
    """One structured hop *back up* the degradation chain.

    The mirror image of :class:`DegradationEvent`: a level whose
    circuit breaker half-opened just passed its health re-probe and
    re-entered rotation.  Subscribers use it to undo whatever they did
    when the level fell — the :class:`repro.control.Controller` clears
    its ``process_cutover=NEVER`` seed, the serve front door counts
    ``serve.recoveries``.

    ``backend``
        The recovered level's name.
    ``outage_s``
        How long the level was out of rotation (first open → close).
    ``opens``
        How many open→half-open cycles it took (1 = first re-probe
        succeeded).
    """

    backend: str
    outage_s: float
    opens: int
    reason: str = ""
    what: str = ""


_SUB_LOCK = threading.Lock()
_SUBSCRIBERS: list[Callable[[DegradationEvent], None]] = []
_RECOVERY_SUBSCRIBERS: list[Callable[[RecoveryEvent], None]] = []


def subscribe_degradation(
    callback: Callable[[DegradationEvent], None],
) -> Callable[[], None]:
    """Register ``callback`` for every degradation event; returns an
    unsubscribe function.  Callbacks must be cheap and must not raise
    (exceptions are swallowed — degradation handling can never be made
    less reliable by an observer)."""
    with _SUB_LOCK:
        _SUBSCRIBERS.append(callback)

    def unsubscribe() -> None:
        with _SUB_LOCK:
            try:
                _SUBSCRIBERS.remove(callback)
            except ValueError:
                pass

    return unsubscribe


def subscribe_recovery(
    callback: Callable[[RecoveryEvent], None],
) -> Callable[[], None]:
    """Register ``callback`` for every :class:`RecoveryEvent`; returns
    an unsubscribe function.  Same contract as
    :func:`subscribe_degradation`: callbacks must be cheap and their
    exceptions are swallowed."""
    with _SUB_LOCK:
        _RECOVERY_SUBSCRIBERS.append(callback)

    def unsubscribe() -> None:
        with _SUB_LOCK:
            try:
                _RECOVERY_SUBSCRIBERS.remove(callback)
            except ValueError:
                pass

    return unsubscribe


def _emit_event(event: DegradationEvent) -> None:
    with _SUB_LOCK:
        subscribers = list(_SUBSCRIBERS)
    for cb in subscribers:
        try:
            cb(event)
        except Exception:  # noqa: BLE001 - observers never break fallback
            pass


def _emit_recovery(event: RecoveryEvent) -> None:
    with _SUB_LOCK:
        subscribers = list(_RECOVERY_SUBSCRIBERS)
    for cb in subscribers:
        try:
            cb(event)
        except Exception:  # noqa: BLE001 - observers never break recovery
            pass


def _probe_task() -> int:
    # Module-level so it pickles into process workers.
    return 1729


def _construct(name: str, max_workers: int | None = None):
    """Build a registered backend, tolerating no-``max_workers`` ctors."""
    from ..backends.base import get_backend

    if max_workers is None:
        return get_backend(name)
    try:
        return get_backend(name, max_workers=max_workers)
    except TypeError:
        return get_backend(name)


def _probe_instance(backend) -> str | None:
    """Run one trivial task; return a defect description or ``None``."""
    try:
        results = backend.run_tasks([_probe_task])
    except Exception as exc:  # noqa: BLE001 - probe reports, never raises
        return f"health probe failed: {exc!r}"
    if len(results) != 1 or results[0].value != 1729:
        return "health probe returned a wrong result"
    return None


def probe_backend(name: str, *, max_workers: int | None = None) -> str | None:
    """Check one backend end to end.  ``None`` means healthy."""
    try:
        backend = _construct(name, max_workers)
    except BackendUnavailableError as exc:
        return f"requires {exc.missing}"
    except (BackendError, InputError) as exc:
        return str(exc)
    try:
        return _probe_instance(backend)
    finally:
        backend.close()


def _candidates(
    preferred: str | None, chain: Sequence[str]
) -> list[str]:
    if preferred is None:
        return list(chain)
    if preferred in chain:
        return list(chain[list(chain).index(preferred):])
    return [preferred, *chain]


def resolve_backend(
    preferred: str | None = None,
    *,
    policy: RetryPolicy | None = None,
    max_workers: int | None = None,
    chain: Sequence[str] = DEGRADATION_CHAIN,
) -> ResilientBackend:
    """Resolve the best healthy backend at or below ``preferred``.

    Construction failures (missing ``mpi4py``, restricted shared
    memory) and failed health probes both demote: each hop emits a
    :class:`DegradationWarning` naming the skipped backend and the
    reason, and the first healthy level is returned wrapped in a
    :class:`ResilientBackend` (with ``policy``, default policy when
    ``None``).  Raises :class:`~repro.errors.BackendError` only if every
    candidate — including ``serial`` — is broken.
    """
    reasons: list[str] = []
    names = _candidates(preferred, chain)
    for pos, name in enumerate(names):
        kind = "unavailable"
        try:
            backend = _construct(name, max_workers)
        except BackendUnavailableError as exc:
            reason = f"requires {exc.missing}"
        except (BackendError, InputError) as exc:
            reason = str(exc)
        else:
            defect = _probe_instance(backend)
            if defect is None:
                if pos > 0:
                    warnings.warn(
                        f"degraded to backend {name!r} "
                        f"(skipped: {'; '.join(reasons)})",
                        DegradationWarning,
                        stacklevel=2,
                    )
                return ResilientBackend(backend, policy, owns_inner=True)
            backend.close()
            reason = defect
            kind = "probe-failed"
        reasons.append(f"{name}: {reason}")
        _emit_event(DegradationEvent(
            kind=kind,
            backend=name,
            fallback=names[pos + 1] if pos + 1 < len(names) else None,
            reason=reason,
            what="backend resolution",
        ))
        warnings.warn(
            f"backend {name!r} unavailable ({reason}); "
            f"falling back along {names[pos + 1:] or ['<nothing>']}",
            DegradationWarning,
            stacklevel=2,
        )
    raise BackendError(
        "no backend in the degradation chain is healthy: "
        + "; ".join(reasons)
    )


class DegradingBackend(Backend):
    """A backend that falls down a chain of levels as they fail.

    ``chain`` entries are backend names or ready :class:`Backend`
    instances; each is lazily wrapped in a :class:`ResilientBackend`
    sharing this instance's ``telemetry``.  A batch runs on the highest
    healthy level; if that level's resilience layer still raises
    :class:`~repro.errors.BackendError`, the level takes a strike, a
    :class:`DegradationWarning` is emitted, and the batch is replayed on
    the next level (safe: tasks are idempotent with disjoint outputs).
    A level with ``failure_threshold`` strikes trips its circuit
    breaker.

    ``recovery`` decides what a tripped breaker means: ``None`` (the
    default) keeps the level out for the rest of the run; a
    :class:`~repro.resilience.breaker.RecoveryPolicy` re-probes it
    after a seeded-jitter cooldown — on the next dispatch that crosses
    the level, via an explicit :meth:`reprobe` call (the serve front
    door runs one in the background), or both.  A passed re-probe
    emits a :class:`RecoveryEvent`, counts ``resilience.recoveries``
    when the telemetry is bound to a registry, and puts the level back
    in front of everything below it.

    ``clock`` injects time for the breakers (tests advance a fake
    clock instead of sleeping through cooldowns).
    """

    name = "degrading"

    def __init__(
        self,
        chain: Sequence[Any] = DEGRADATION_CHAIN,
        *,
        policy: RetryPolicy | None = None,
        max_workers: int | None = None,
        failure_threshold: int = 1,
        recovery: RecoveryPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not chain:
            raise BackendError("degradation chain must not be empty")
        self._entries = list(chain)
        self._policy = policy
        self._max_workers = max_workers
        self._failure_threshold = max(1, failure_threshold)
        self._recovery = recovery
        self._clock = clock
        self._levels: dict[int, ResilientBackend] = {}
        self._breakers: dict[int, CircuitBreaker] = {}
        self._disabled: dict[int, str] = {}
        self.telemetry = ExecutionTelemetry()

    def _entry_name(self, index: int) -> str:
        entry = self._entries[index]
        return entry if isinstance(entry, str) else getattr(
            entry, "name", type(entry).__name__
        )

    def _breaker(self, index: int) -> CircuitBreaker:
        breaker = self._breakers.get(index)
        if breaker is None:
            breaker = CircuitBreaker(
                self._entry_name(index),
                failure_threshold=self._failure_threshold,
                policy=self._recovery,
                clock=self._clock,
            )
            self._breakers[index] = breaker
        return breaker

    def _level(self, index: int) -> ResilientBackend:
        level = self._levels.get(index)
        if level is None:
            entry = self._entries[index]
            if isinstance(entry, ResilientBackend):
                level = entry
            elif isinstance(entry, str):
                level = ResilientBackend(
                    _construct(entry, self._max_workers),
                    self._policy,
                    owns_inner=True,
                )
            else:
                level = ResilientBackend(entry, self._policy, owns_inner=False)
            level.telemetry = self.telemetry
            self._levels[index] = level
        return level

    def _disable(self, index: int, reason: str) -> None:
        self._disabled[index] = reason

    def _eligible(self, index: int) -> bool:
        """Whether a level may receive work right now (no transitions)."""
        if index in self._disabled:
            return False
        breaker = self._breakers.get(index)
        return breaker is None or breaker.allows()

    @property
    def active_backend(self) -> str | None:
        """Name of the first level still eligible to run batches."""
        for i in range(len(self._entries)):
            if self._eligible(i):
                return self._entry_name(i)
        return None

    def breaker_states(self) -> dict[str, str]:
        """Per-level breaker state, for doctor output and tests."""
        out: dict[str, str] = {}
        for i in range(len(self._entries)):
            name = self._entry_name(i)
            if i in self._disabled:
                out[name] = "disabled"
            else:
                breaker = self._breakers.get(i)
                out[name] = breaker.state if breaker is not None else CLOSED
        return out

    def _next_level_name(self, index: int) -> str | None:
        for j in range(index + 1, len(self._entries)):
            if self._eligible(j):
                return self._entry_name(j)
        return None

    def _recover(self, index: int, breaker: CircuitBreaker) -> bool:
        """Run the half-open health probe for ``index``.

        The caller must have claimed the probe slot via
        ``breaker.try_probe()``.  Returns True when the level passed and
        is back in rotation (a :class:`RecoveryEvent` was emitted).
        """
        name = self._entry_name(index)
        opens = breaker.opens
        # A dead pool does not heal by being asked again: rebuild
        # constructible (string) entries from scratch before probing.
        if isinstance(self._entries[index], str):
            stale = self._levels.pop(index, None)
            if stale is not None:
                try:
                    stale.close()
                except Exception:  # noqa: BLE001 - old pool may be wrecked
                    pass
        try:
            level = self._level(index)
        except (BackendError, InputError) as exc:
            breaker.record_probe_failure(f"rebuild failed: {exc}")
            return False
        defect = _probe_instance(level)
        if defect is not None:
            breaker.record_probe_failure(defect)
            return False
        outage = breaker.record_probe_success()
        event = RecoveryEvent(
            backend=name,
            outage_s=outage,
            opens=opens,
            reason=breaker.last_reason,
            what="health re-probe",
        )
        registry = self.telemetry.metrics
        if registry is not None:
            registry.counter("resilience.recoveries").inc()
        _emit_recovery(event)
        warnings.warn(
            f"recovery: backend {name!r} passed its re-probe after "
            f"{outage:.2f}s out of rotation; promoting",
            DegradationWarning,
            stacklevel=4,
        )
        return True

    def reprobe(self) -> list[str]:
        """Re-probe every open breaker whose cooldown has expired.

        Returns the names of levels that recovered.  Safe to call from
        a background loop (the serve front door does); dispatches also
        re-probe opportunistically, so calling this is an optimization
        for idle periods, not a requirement.
        """
        recovered: list[str] = []
        for i in range(len(self._entries)):
            if i in self._disabled:
                continue
            breaker = self._breakers.get(i)
            if breaker is not None and breaker.try_probe():
                if self._recover(i, breaker):
                    recovered.append(self._entry_name(i))
        return recovered

    def _dispatch(self, op: Callable[[ResilientBackend], Any], what: str) -> Any:
        last: BackendError | None = None
        for i in range(len(self._entries)):
            if i in self._disabled:
                continue
            name = self._entry_name(i)
            breaker = self._breakers.get(i)
            if breaker is not None and not breaker.allows():
                # Open level: opportunistically re-probe once the
                # cooldown expired, then fall through on failure.
                if not (breaker.try_probe() and self._recover(i, breaker)):
                    continue
            try:
                level = self._level(i)
            except BackendUnavailableError as exc:
                self._disable(i, f"requires {exc.missing}")
                last = exc
                _emit_event(DegradationEvent(
                    kind="unavailable",
                    backend=name,
                    fallback=self._next_level_name(i),
                    reason=f"requires {exc.missing}",
                    what=what,
                ))
                warnings.warn(
                    f"degradation: backend {name!r} unavailable "
                    f"(requires {exc.missing}); trying the next level",
                    DegradationWarning,
                    stacklevel=3,
                )
                continue
            try:
                return op(level)
            except BackendError as exc:
                last = exc
                self._breaker(i).record_failure(str(exc))
                _emit_event(DegradationEvent(
                    kind="batch-failed",
                    backend=name,
                    fallback=self._next_level_name(i),
                    reason=str(exc),
                    what=what,
                ))
                warnings.warn(
                    f"degradation: backend {name!r} failed {what} even with "
                    f"retries ({exc}); replaying on the next level",
                    DegradationWarning,
                    stacklevel=3,
                )
        raise BackendError(
            f"every level of the degradation chain failed {what}"
        ) from last

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list:
        tasks = list(tasks)
        return self._dispatch(lambda lvl: lvl.run_tasks(tasks), "a task batch")

    def merge_partition(
        self, a: np.ndarray, b: np.ndarray, partition: Partition
    ) -> np.ndarray:
        """Partitioned merge that survives level failures.

        Stages the arrays in a shared-memory arena so the segment tasks
        are picklable (process levels) yet equally runnable in-process
        (thread/serial levels), and replays the whole idempotent batch
        on the next level if one gives out mid-merge.
        """
        from ..backends.processes import SharedMergeArena

        def op(level: ResilientBackend) -> np.ndarray:
            with SharedMergeArena(a, b, partition) as arena:
                tasks = arena.tasks()
                if tasks:
                    level.run_tasks(tasks)
                return arena.result()

        # One fork/join from the caller's point of view, exactly like
        # run_batch — level replays underneath don't multiply it.
        self.dispatches += 1
        return self._dispatch(op, "a partitioned merge")

    def close(self) -> None:
        for level in self._levels.values():
            level.close()
        self._levels.clear()
