"""Graceful backend degradation: mpi → processes → threads → serial.

Two entry points:

* :func:`resolve_backend` — one-shot resolution.  Probes the preferred
  backend (construct + run a trivial task) and walks down the chain on
  failure, emitting a structured :class:`DegradationWarning` per hop,
  until a healthy backend answers; returns it wrapped in a
  :class:`~repro.resilience.ResilientBackend`.
* :class:`DegradingBackend` — a live fallback chain.  Levels are built
  lazily, each wrapped in a :class:`ResilientBackend`; when a batch
  still fails after that layer's retries (e.g. the pool keeps dying),
  the level accrues a strike, the batch transparently re-runs on the
  next level, and a level that exhausts its strike budget is disabled
  for the rest of the run.

The re-run-elsewhere move is safe for the same reason retries are: the
paper's merge tasks are idempotent and write disjoint slices
(Theorem 14), so a batch that half-ran on a dying pool can be replayed
wholesale on another executor.  The serial tail of the default chain
cannot die, so a degrading execution always completes (or surfaces a
genuine task bug).
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..backends.base import Backend
from ..errors import BackendError, BackendUnavailableError, InputError
from ..types import Partition
from .policy import RetryPolicy
from .resilient import ResilientBackend
from .telemetry import ExecutionTelemetry

__all__ = [
    "DEGRADATION_CHAIN",
    "DegradationWarning",
    "DegradationEvent",
    "subscribe_degradation",
    "probe_backend",
    "resolve_backend",
    "DegradingBackend",
]

#: Default fallback order, fastest-but-most-fragile first.
DEGRADATION_CHAIN: tuple[str, ...] = ("mpi", "processes", "threads", "serial")


class DegradationWarning(UserWarning):
    """A backend was skipped or abandoned in favor of a lower level."""


@dataclass(frozen=True, slots=True)
class DegradationEvent:
    """One structured hop down the degradation chain.

    Warnings tell a human *that* a level fell; events tell a subscriber
    *what* to do about it.  The control plane (:mod:`repro.control`)
    subscribes so a backend falling from processes to threads triggers
    re-tuning (the calibrated threads↔processes crossover is now
    routing work to a dead level) instead of silently worse latency.

    ``kind``
        ``"unavailable"`` (construction failed), ``"probe-failed"``
        (health probe), or ``"batch-failed"`` (a live batch exhausted
        the level's retries).
    ``backend`` / ``fallback``
        The level that fell and the next level tried (``None`` when the
        chain is exhausted).
    """

    kind: str
    backend: str
    fallback: str | None
    reason: str
    what: str = ""


_SUB_LOCK = threading.Lock()
_SUBSCRIBERS: list[Callable[[DegradationEvent], None]] = []


def subscribe_degradation(
    callback: Callable[[DegradationEvent], None],
) -> Callable[[], None]:
    """Register ``callback`` for every degradation event; returns an
    unsubscribe function.  Callbacks must be cheap and must not raise
    (exceptions are swallowed — degradation handling can never be made
    less reliable by an observer)."""
    with _SUB_LOCK:
        _SUBSCRIBERS.append(callback)

    def unsubscribe() -> None:
        with _SUB_LOCK:
            try:
                _SUBSCRIBERS.remove(callback)
            except ValueError:
                pass

    return unsubscribe


def _emit_event(event: DegradationEvent) -> None:
    with _SUB_LOCK:
        subscribers = list(_SUBSCRIBERS)
    for cb in subscribers:
        try:
            cb(event)
        except Exception:  # noqa: BLE001 - observers never break fallback
            pass


def _probe_task() -> int:
    # Module-level so it pickles into process workers.
    return 1729


def _construct(name: str, max_workers: int | None = None):
    """Build a registered backend, tolerating no-``max_workers`` ctors."""
    from ..backends.base import get_backend

    if max_workers is None:
        return get_backend(name)
    try:
        return get_backend(name, max_workers=max_workers)
    except TypeError:
        return get_backend(name)


def _probe_instance(backend) -> str | None:
    """Run one trivial task; return a defect description or ``None``."""
    try:
        results = backend.run_tasks([_probe_task])
    except Exception as exc:  # noqa: BLE001 - probe reports, never raises
        return f"health probe failed: {exc!r}"
    if len(results) != 1 or results[0].value != 1729:
        return "health probe returned a wrong result"
    return None


def probe_backend(name: str, *, max_workers: int | None = None) -> str | None:
    """Check one backend end to end.  ``None`` means healthy."""
    try:
        backend = _construct(name, max_workers)
    except BackendUnavailableError as exc:
        return f"requires {exc.missing}"
    except (BackendError, InputError) as exc:
        return str(exc)
    try:
        return _probe_instance(backend)
    finally:
        backend.close()


def _candidates(
    preferred: str | None, chain: Sequence[str]
) -> list[str]:
    if preferred is None:
        return list(chain)
    if preferred in chain:
        return list(chain[list(chain).index(preferred):])
    return [preferred, *chain]


def resolve_backend(
    preferred: str | None = None,
    *,
    policy: RetryPolicy | None = None,
    max_workers: int | None = None,
    chain: Sequence[str] = DEGRADATION_CHAIN,
) -> ResilientBackend:
    """Resolve the best healthy backend at or below ``preferred``.

    Construction failures (missing ``mpi4py``, restricted shared
    memory) and failed health probes both demote: each hop emits a
    :class:`DegradationWarning` naming the skipped backend and the
    reason, and the first healthy level is returned wrapped in a
    :class:`ResilientBackend` (with ``policy``, default policy when
    ``None``).  Raises :class:`~repro.errors.BackendError` only if every
    candidate — including ``serial`` — is broken.
    """
    reasons: list[str] = []
    names = _candidates(preferred, chain)
    for pos, name in enumerate(names):
        kind = "unavailable"
        try:
            backend = _construct(name, max_workers)
        except BackendUnavailableError as exc:
            reason = f"requires {exc.missing}"
        except (BackendError, InputError) as exc:
            reason = str(exc)
        else:
            defect = _probe_instance(backend)
            if defect is None:
                if pos > 0:
                    warnings.warn(
                        f"degraded to backend {name!r} "
                        f"(skipped: {'; '.join(reasons)})",
                        DegradationWarning,
                        stacklevel=2,
                    )
                return ResilientBackend(backend, policy, owns_inner=True)
            backend.close()
            reason = defect
            kind = "probe-failed"
        reasons.append(f"{name}: {reason}")
        _emit_event(DegradationEvent(
            kind=kind,
            backend=name,
            fallback=names[pos + 1] if pos + 1 < len(names) else None,
            reason=reason,
            what="backend resolution",
        ))
        warnings.warn(
            f"backend {name!r} unavailable ({reason}); "
            f"falling back along {names[pos + 1:] or ['<nothing>']}",
            DegradationWarning,
            stacklevel=2,
        )
    raise BackendError(
        "no backend in the degradation chain is healthy: "
        + "; ".join(reasons)
    )


class DegradingBackend(Backend):
    """A backend that falls down a chain of levels as they fail.

    ``chain`` entries are backend names or ready :class:`Backend`
    instances; each is lazily wrapped in a :class:`ResilientBackend`
    sharing this instance's ``telemetry``.  A batch runs on the highest
    healthy level; if that level's resilience layer still raises
    :class:`~repro.errors.BackendError`, the level takes a strike, a
    :class:`DegradationWarning` is emitted, and the batch is replayed on
    the next level (safe: tasks are idempotent with disjoint outputs).
    A level with ``failure_threshold`` strikes is disabled for good.
    """

    name = "degrading"

    def __init__(
        self,
        chain: Sequence[Any] = DEGRADATION_CHAIN,
        *,
        policy: RetryPolicy | None = None,
        max_workers: int | None = None,
        failure_threshold: int = 1,
    ) -> None:
        if not chain:
            raise BackendError("degradation chain must not be empty")
        self._entries = list(chain)
        self._policy = policy
        self._max_workers = max_workers
        self._failure_threshold = max(1, failure_threshold)
        self._levels: dict[int, ResilientBackend] = {}
        self._strikes: dict[int, int] = {}
        self._disabled: dict[int, str] = {}
        self.telemetry = ExecutionTelemetry()

    def _entry_name(self, index: int) -> str:
        entry = self._entries[index]
        return entry if isinstance(entry, str) else getattr(
            entry, "name", type(entry).__name__
        )

    def _level(self, index: int) -> ResilientBackend:
        level = self._levels.get(index)
        if level is None:
            entry = self._entries[index]
            if isinstance(entry, ResilientBackend):
                level = entry
            elif isinstance(entry, str):
                level = ResilientBackend(
                    _construct(entry, self._max_workers),
                    self._policy,
                    owns_inner=True,
                )
            else:
                level = ResilientBackend(entry, self._policy, owns_inner=False)
            level.telemetry = self.telemetry
            self._levels[index] = level
        return level

    def _disable(self, index: int, reason: str) -> None:
        self._disabled[index] = reason

    @property
    def active_backend(self) -> str | None:
        """Name of the first level still eligible to run batches."""
        for i in range(len(self._entries)):
            if i not in self._disabled:
                return self._entry_name(i)
        return None

    def _next_level_name(self, index: int) -> str | None:
        for j in range(index + 1, len(self._entries)):
            if j not in self._disabled:
                return self._entry_name(j)
        return None

    def _dispatch(self, op: Callable[[ResilientBackend], Any], what: str) -> Any:
        last: BackendError | None = None
        for i in range(len(self._entries)):
            if i in self._disabled:
                continue
            name = self._entry_name(i)
            try:
                level = self._level(i)
            except BackendUnavailableError as exc:
                self._disable(i, f"requires {exc.missing}")
                last = exc
                _emit_event(DegradationEvent(
                    kind="unavailable",
                    backend=name,
                    fallback=self._next_level_name(i),
                    reason=f"requires {exc.missing}",
                    what=what,
                ))
                warnings.warn(
                    f"degradation: backend {name!r} unavailable "
                    f"(requires {exc.missing}); trying the next level",
                    DegradationWarning,
                    stacklevel=3,
                )
                continue
            try:
                return op(level)
            except BackendError as exc:
                last = exc
                strikes = self._strikes.get(i, 0) + 1
                self._strikes[i] = strikes
                if strikes >= self._failure_threshold:
                    self._disable(i, f"failed {strikes} batch(es): {exc}")
                _emit_event(DegradationEvent(
                    kind="batch-failed",
                    backend=name,
                    fallback=self._next_level_name(i),
                    reason=str(exc),
                    what=what,
                ))
                warnings.warn(
                    f"degradation: backend {name!r} failed {what} even with "
                    f"retries ({exc}); replaying on the next level",
                    DegradationWarning,
                    stacklevel=3,
                )
        raise BackendError(
            f"every level of the degradation chain failed {what}"
        ) from last

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list:
        tasks = list(tasks)
        return self._dispatch(lambda lvl: lvl.run_tasks(tasks), "a task batch")

    def merge_partition(
        self, a: np.ndarray, b: np.ndarray, partition: Partition
    ) -> np.ndarray:
        """Partitioned merge that survives level failures.

        Stages the arrays in a shared-memory arena so the segment tasks
        are picklable (process levels) yet equally runnable in-process
        (thread/serial levels), and replays the whole idempotent batch
        on the next level if one gives out mid-merge.
        """
        from ..backends.processes import SharedMergeArena

        def op(level: ResilientBackend) -> np.ndarray:
            with SharedMergeArena(a, b, partition) as arena:
                tasks = arena.tasks()
                if tasks:
                    level.run_tasks(tasks)
                return arena.result()

        # One fork/join from the caller's point of view, exactly like
        # run_batch — level replays underneath don't multiply it.
        self.dispatches += 1
        return self._dispatch(op, "a partitioned merge")

    def close(self) -> None:
        for level in self._levels.values():
            level.close()
        self._levels.clear()
