"""Deterministic fault injection for backend task batches.

Chaos engineering for Algorithm 1: :class:`FaultyBackend` wraps any
backend and, driven by a seeded :class:`FaultInjector`, perturbs
individual tasks with

* ``error`` — the task raises :class:`InjectedFault` *instead of
  running* (transient by default: the next attempt runs clean);
* ``delay`` — the task sleeps briefly before running (a straggler, the
  trigger for speculative re-execution);
* ``hang``  — the task sleeps far past any reasonable deadline and then
  raises without ever running (exercises timeout abandonment, and
  self-expires even when no deadline is configured);
* ``death`` — when the executing backend is a process pool, the worker
  SIGKILLs itself before running the task (exercises broken-pool
  detection); on in-process backends it degrades to raising
  :class:`SimulatedWorkerDeath`.

Injected faults fire *before* the task body, so a task never
half-executes: recovery re-runs it exactly once.  Decisions are pure
functions of ``(seed, task_key, attempt)`` — two runs with the same
seed perturb the same tasks the same way — where ``task_key`` is the
order of first appearance of the task callable and ``attempt`` counts
its dispatches, so a retry of a transiently-failed task sees a clean
second attempt.
"""

from __future__ import annotations

import functools
import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..backends.base import Backend, TaskResult
from .resilient import innermost_backend

__all__ = [
    "InjectedFault",
    "SimulatedWorkerDeath",
    "FaultDecision",
    "FaultInjector",
    "FaultyBackend",
]

#: Fault kinds, in decision-priority order.
FAULT_KINDS = ("death", "hang", "error", "delay")


class InjectedFault(RuntimeError):
    """Raised by a deterministically injected task fault."""


class SimulatedWorkerDeath(InjectedFault):
    """Stand-in for a worker kill on backends without killable workers."""


@dataclass(frozen=True)
class FaultDecision:
    """What to do to one dispatch of one task."""

    kind: str  # "none" | "error" | "delay" | "hang" | "death"
    sleep_s: float = 0.0


_NO_FAULT = FaultDecision("none")


def _apply_fault(
    decision: FaultDecision, in_process: bool, task: Callable[[], Any]
) -> Any:
    """Task wrapper that realizes a fault decision (runs on the worker)."""
    if decision.kind == "delay":
        time.sleep(decision.sleep_s)
        return task()
    if decision.kind == "error":
        raise InjectedFault("injected task error")
    if decision.kind == "hang":
        # Never runs the task: sleeps past any sane deadline, then fails
        # on its own so recovery works even without a timeout policy.
        time.sleep(decision.sleep_s)
        raise InjectedFault(
            f"injected hang expired after {decision.sleep_s:.3g}s"
        )
    if decision.kind == "death":
        if in_process:
            os.kill(os.getpid(), signal.SIGKILL)
        raise SimulatedWorkerDeath("injected worker death")
    return task()


class FaultInjector:
    """Seeded source of per-dispatch fault decisions.

    ``*_rate`` parameters give independent-per-dispatch probabilities
    (evaluated in the priority order death > hang > error > delay);
    ``scripted`` pins exact outcomes for ``(task_key, attempt)`` pairs
    and takes precedence.  ``faulty_attempts`` bounds how many leading
    attempts of a task may be rate-faulted (1 = transient faults only;
    ``None`` = every attempt is at risk, i.e. potentially permanent).
    ``always_first`` guarantees the very first dispatch after (re)arming
    is faulted — the chaos tier uses it so every audited implementation
    demonstrably exercises recovery.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        error_rate: float = 0.0,
        delay_rate: float = 0.0,
        hang_rate: float = 0.0,
        death_rate: float = 0.0,
        delay_s: float = 0.02,
        hang_s: float = 4.0,
        faulty_attempts: int | None = 1,
        always_first: str | None = None,
        scripted: dict[tuple[int, int], str] | None = None,
        armed: bool = True,
    ) -> None:
        self.seed = seed
        self.rates = {
            "death": death_rate,
            "hang": hang_rate,
            "error": error_rate,
            "delay": delay_rate,
        }
        self.delay_s = delay_s
        self.hang_s = hang_s
        self.faulty_attempts = faulty_attempts
        self.always_first = always_first
        self.scripted = dict(scripted) if scripted else {}
        self.armed = armed
        self._lock = threading.Lock()
        self._injected: dict[str, int] = {k: 0 for k in FAULT_KINDS}

    def _decision(self, kind: str) -> FaultDecision:
        if kind == "delay":
            return FaultDecision("delay", sleep_s=self.delay_s)
        if kind == "hang":
            return FaultDecision("hang", sleep_s=self.hang_s)
        return FaultDecision(kind)

    def decide(self, task_key: int, attempt: int) -> FaultDecision:
        """Deterministic decision for dispatch ``attempt`` of ``task_key``."""
        if not self.armed:
            return _NO_FAULT
        scripted = self.scripted.get((task_key, attempt))
        if scripted is not None:
            return self._decision(scripted)
        if self.always_first and task_key == 0 and attempt == 0:
            return self._decision(self.always_first)
        if self.faulty_attempts is not None and attempt >= self.faulty_attempts:
            return _NO_FAULT
        r = random.Random(f"{self.seed}:{task_key}:{attempt}").random()
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += self.rates[kind]
            if r < cumulative:
                return self._decision(kind)
        return _NO_FAULT

    def note(self, kind: str) -> None:
        with self._lock:
            self._injected[kind] = self._injected.get(kind, 0) + 1

    @property
    def injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    def counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._injected)

    def rearm(self, seed: int | None = None) -> None:
        """Re-enable injection with fresh counters (and optionally seed)."""
        with self._lock:
            if seed is not None:
                self.seed = seed
            self._injected = {k: 0 for k in FAULT_KINDS}
            self.armed = True

    def disarm(self) -> None:
        self.armed = False


class FaultyBackend(Backend):
    """Backend wrapper that perturbs tasks per a :class:`FaultInjector`.

    Task identity is tracked by callable object: the first time a
    callable is dispatched it is assigned the next ``task_key`` and each
    further dispatch of the *same object* increments its ``attempt`` —
    which is exactly how :class:`~repro.resilience.ResilientBackend`
    re-dispatches retries, so transient faults clear on retry.  (The
    callables are pinned for the wrapper's lifetime so ``id`` reuse
    cannot conflate two tasks; :meth:`reset` drops the pins and restarts
    the key sequence.)
    """

    name = "faulty"

    def __init__(self, inner: Backend, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self._lock = threading.Lock()
        self._keys: dict[int, int] = {}
        self._attempts: dict[int, int] = {}
        self._pins: list[Callable[[], Any]] = []

    def reset(self) -> None:
        """Forget task identities (restart ``task_key`` numbering)."""
        with self._lock:
            self._keys.clear()
            self._attempts.clear()
            self._pins.clear()

    def _next_decision(self, task: Callable[[], Any]) -> FaultDecision:
        with self._lock:
            tid = id(task)
            key = self._keys.get(tid)
            if key is None:
                key = len(self._pins)
                self._keys[tid] = key
                self._pins.append(task)
            attempt = self._attempts.get(tid, 0)
            self._attempts[tid] = attempt + 1
        return self.injector.decide(key, attempt)

    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        # Death faults only truly kill workers on process pools; elsewhere
        # they degrade to an in-process SimulatedWorkerDeath exception.
        from ..backends.processes import ProcessBackend

        in_process = isinstance(innermost_backend(self.inner), ProcessBackend)
        wrapped: list[Callable[[], Any]] = []
        for task in tasks:
            decision = self._next_decision(task)
            if decision.kind == "none":
                wrapped.append(task)
            else:
                self.injector.note(decision.kind)
                wrapped.append(
                    functools.partial(_apply_fault, decision, in_process, task)
                )
        return self.inner.run_tasks(wrapped)

    def close(self) -> None:
        self.inner.close()
