"""Seeded network chaos: a TCP proxy that mistreats the serve plane.

The fault injector (PR 3) breaks the *compute* path; this module
breaks the *network* path, which is what a non-loopback deployment
actually fears: connection resets mid-frame, partial/truncated writes,
latency jitter, slowloris trickles, and corrupted bytes.  A
:class:`ChaosProxy` sits between a client (the load generator, a
:class:`~repro.serve.ResilientClient`) and a live server, forwarding
both directions while injecting faults drawn from per-connection,
per-direction seeded streams (``random.Random(f"{seed}:conn:{i}:up")``)
— the same chaos schedule replays under the same seed and connection
order.

Fault placement is deliberate, because the test gate is *"every
response that arrives is bit-identical to the oracle"*:

* **Corruption runs client→server only, and writes 0x00 bytes.**  A
  corrupted response frame would be indistinguishable from a wrong
  answer (flip one digit and the JSON still parses), which no client
  can detect without recomputing the result — so the proxy never
  forges data the correctness gate is supposed to vouch for.  Upstream
  corruption is fully detectable: NUL bytes cannot appear in a JSON
  request line, the server answers a typed 400, and the response
  stream stays trustworthy.
* **Resets, delays, truncation, and slowloris run in both directions.**
  They destroy or defer frames, never alter surviving bytes: a
  truncated JSON object is unbalanced and fails to parse, so the worst
  case is a transport error the client retries — safe, because every
  request is an idempotent pure function (Theorem 14 is what makes the
  server's own replays safe too).

The proxy counts every fault it fires (:attr:`ChaosProxy.stats`), so a
test can assert the chaos actually happened rather than passing
vacuously on a quiet schedule.
"""

from __future__ import annotations

import asyncio
import random
import threading
from dataclasses import dataclass

from ..errors import InputError

__all__ = ["ChaosSpec", "ChaosProxy", "ChaosProxyThread"]

#: Fault kinds `ChaosProxy.stats` counts.
FAULT_KINDS = (
    "resets", "corruptions", "truncations", "delays", "slowloris",
)


@dataclass(frozen=True)
class ChaosSpec:
    """Per-chunk fault probabilities and their parameters.

    Rates are evaluated per forwarded chunk, independently per
    direction, from seeded streams.  ``corrupt_rate`` applies only to
    the client→server direction (see the module docstring for why).
    """

    seed: int = 0
    reset_rate: float = 0.0  #: kill both directions mid-chunk.
    corrupt_rate: float = 0.0  #: zero out a byte span (upstream only).
    truncate_rate: float = 0.0  #: forward a prefix, then kill the conn.
    delay_rate: float = 0.0  #: hold a chunk for ``delay_s``.
    delay_s: float = 0.005
    slowloris_rate: float = 0.0  #: trickle a chunk in tiny slow pieces.
    slowloris_chunk: int = 3
    slowloris_delay_s: float = 0.002

    def __post_init__(self) -> None:
        for name in ("reset_rate", "corrupt_rate", "truncate_rate",
                     "delay_rate", "slowloris_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise InputError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_s < 0 or self.slowloris_delay_s < 0:
            raise InputError("delays must be >= 0")
        if self.slowloris_chunk < 1:
            raise InputError("slowloris_chunk must be >= 1")


class ChaosProxy:
    """A seeded fault-injecting TCP proxy in front of one upstream.

    Usage (async)::

        proxy = ChaosProxy("127.0.0.1", server_port,
                           spec=ChaosSpec(seed=7, reset_rate=0.05))
        await proxy.start()
        ...  # connect clients to (proxy.host, proxy.port)
        await proxy.stop()

    Synchronous tests use :class:`ChaosProxyThread`.  ``stats`` maps
    fault kind → count of faults actually fired.
    """

    _CHUNK = 1 << 14

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        spec: ChaosSpec | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.spec = spec or ChaosSpec()
        self.config_host = host
        self.config_port = port
        self.stats: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.connections = 0
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    @property
    def host(self) -> str:
        return self.config_host

    @property
    def port(self) -> int:
        """The bound listen port (resolves ephemeral ``port=0``)."""
        if self._server is None or not self._server.sockets:
            return self.config_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ChaosProxy":
        """Bind the listener; connections are handled until :meth:`stop`."""
        self._server = await asyncio.start_server(
            self._handle, self.config_host, self.config_port
        )
        return self

    async def stop(self) -> None:
        """Close the listener and tear down every proxied connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        index = self.connections
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            await _close(writer)
            return
        # One seeded stream per direction: two concurrent pumps sharing
        # an RNG would interleave nondeterministically.
        seed = self.spec.seed
        up = asyncio.create_task(self._pump(
            reader, up_writer,
            rng=random.Random(f"{seed}:conn:{index}:up"),
            corruptible=True,
        ))
        down = asyncio.create_task(self._pump(
            up_reader, writer,
            rng=random.Random(f"{seed}:conn:{index}:down"),
            corruptible=False,
        ))
        try:
            await asyncio.gather(up, down, return_exceptions=True)
        finally:
            for pump in (up, down):
                pump.cancel()
            await asyncio.gather(up, down, return_exceptions=True)
            await _close(up_writer)
            await _close(writer)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        rng: random.Random,
        corruptible: bool,
    ) -> None:
        spec = self.spec
        while True:
            try:
                chunk = await reader.read(self._CHUNK)
            except (ConnectionError, OSError):
                break
            if not chunk:
                break
            draw = rng.random()
            threshold = spec.reset_rate
            if draw < threshold:
                self.stats["resets"] += 1
                await _close(writer, abort=True)
                return
            threshold += spec.truncate_rate
            if draw < threshold:
                self.stats["truncations"] += 1
                keep = rng.randrange(len(chunk))
                if keep and not self._write(writer, chunk[:keep]):
                    return
                await _close(writer, abort=True)
                return
            if corruptible and spec.corrupt_rate:
                if rng.random() < spec.corrupt_rate:
                    self.stats["corruptions"] += 1
                    chunk = self._corrupt(chunk, rng)
            draw2 = rng.random()
            threshold = spec.delay_rate
            if draw2 < threshold:
                self.stats["delays"] += 1
                await asyncio.sleep(spec.delay_s)
            threshold += spec.slowloris_rate
            if spec.delay_rate <= draw2 < threshold:
                self.stats["slowloris"] += 1
                step = spec.slowloris_chunk
                for lo in range(0, len(chunk), step):
                    if not self._write(writer, chunk[lo:lo + step]):
                        return
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        return
                    await asyncio.sleep(spec.slowloris_delay_s)
                continue
            if not self._write(writer, chunk):
                return
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return
        await _close(writer)

    @staticmethod
    def _write(writer: asyncio.StreamWriter, data: bytes) -> bool:
        if writer.is_closing():
            return False
        try:
            writer.write(data)
        except (ConnectionError, OSError):
            return False
        return True

    @staticmethod
    def _corrupt(chunk: bytes, rng: random.Random) -> bytes:
        """Overwrite a short span with NUL bytes (never valid in JSON,
        so the defect is always *detectable*, never a silent flip)."""
        span = min(len(chunk), 1 + rng.randrange(4))
        start = rng.randrange(max(1, len(chunk) - span + 1))
        return chunk[:start] + b"\x00" * span + chunk[start + span:]


async def _close(writer: asyncio.StreamWriter, *, abort: bool = False) -> None:
    try:
        if abort and writer.transport is not None:
            writer.transport.abort()  # RST, not FIN: a *reset*, not a close
        else:
            writer.close()
            await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


class ChaosProxyThread:
    """A :class:`ChaosProxy` on a dedicated thread with its own loop.

    The synchronous test battery (and the smoke harness) put this
    between a :class:`~repro.serve.ServerThread` and plain socket
    clients::

        with ServerThread(config) as srv, \\
             ChaosProxyThread(srv.host, srv.port, spec=spec) as proxy:
            client = ResilientClient(proxy.host, proxy.port, ...)
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        spec: ChaosSpec | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.proxy = ChaosProxy(
            upstream_host, upstream_port, spec=spec, host=host, port=port
        )
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.proxy.host

    @property
    def port(self) -> int:
        return self.proxy.port

    @property
    def stats(self) -> dict[str, int]:
        return self.proxy.stats

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.proxy.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.proxy.stop())
            loop.close()

    def start(self) -> "ChaosProxyThread":
        """Start the proxy thread; returns once the socket is bound."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-netchaos", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Tear the proxy down and join the thread."""
        if self._thread is None:
            return
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "ChaosProxyThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
