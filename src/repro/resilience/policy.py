"""Retry, timeout, and speculation policy for resilient execution.

One frozen dataclass describes everything a supervisor may do to a
task: how many times to retry it, how long an attempt may run before it
is abandoned, how retries back off (exponential with a seeded jitter so
two runs of the same batch produce the same delay sequence — the whole
package is deterministic-by-seed and the resilience layer keeps that
property), and when a straggling task earns a speculative duplicate.

All of it is sound only because of the paper's structural guarantee
(Theorem 14): the ``p`` merge tasks are independent, idempotent, and
write disjoint output slices, so re-executing — or even concurrently
duplicating — a task can never corrupt the result.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import InputError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for :class:`repro.resilience.ResilientBackend`.

    Parameters
    ----------
    max_retries:
        Retries allowed per task *after* the primary attempt.
    timeout_s:
        Per-attempt deadline.  An attempt that exceeds it is abandoned
        (its eventual writes are harmless by idempotence/disjointness)
        and counted as a ``timeout`` failure; ``None`` disables
        deadlines entirely.
    backoff_base_s / backoff_multiplier / backoff_cap_s:
        Exponential backoff: retry ``k`` (1-based) waits
        ``min(cap, base * multiplier**(k-1))`` before dispatch.
    jitter:
        Fractional jitter: each delay is multiplied by
        ``1 + U(0, jitter)`` drawn from a stream seeded with ``seed``,
        decorrelating retry storms while staying reproducible.
    seed:
        Seeds the jitter stream.
    speculate:
        Enable straggler re-execution.  Leave off for task batches that
        are *not* idempotent (a duplicate attempt runs concurrently with
        the original).
    straggler_factor / speculation_floor_s / min_completed_for_speculation:
        A running task is a straggler once at least
        ``min_completed_for_speculation`` tasks finished and its age
        exceeds ``max(straggler_factor * median_completed_duration,
        speculation_floor_s)``.
    max_speculative:
        Speculative duplicates allowed per task; the first finisher
        wins and every other attempt's result is discarded.
    """

    max_retries: int = 2
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    speculate: bool = True
    straggler_factor: float = 4.0
    speculation_floor_s: float = 0.05
    min_completed_for_speculation: int = 2
    max_speculative: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise InputError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise InputError("timeout_s must be positive (or None)")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise InputError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise InputError("backoff_multiplier must be >= 1")
        if self.jitter < 0:
            raise InputError("jitter must be >= 0")
        if self.straggler_factor <= 1.0:
            raise InputError("straggler_factor must be > 1")
        if self.max_speculative < 0:
            raise InputError("max_speculative must be >= 0")

    def backoff_s(self, retry_number: int, rng: random.Random) -> float:
        """Jittered delay before retry ``retry_number`` (1-based)."""
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_multiplier ** (retry_number - 1),
        )
        return base * (1.0 + rng.random() * self.jitter)
