"""ResilientBackend: per-task retry, timeout, and straggler speculation.

The paper's Theorem 14 splits a merge into ``p`` *independent,
idempotent* tasks that write *disjoint* output slices.  That structural
guarantee — proved per-run by the conformance write-audit
(:mod:`repro.conformance.races`) — is exactly what fault-tolerant
schedulers need: any task can be retried after a crash, abandoned after
a deadline, or speculatively duplicated while still running, and the
merged output cannot be corrupted because every attempt writes the same
bytes to the same private slice.  This module exploits the guarantee
for lock-free *recovery*:

* every task of a batch is supervised individually — a failure never
  aborts its siblings (the inner backends collect failures into
  :class:`~repro.errors.BatchError` per their contract);
* failed attempts are retried with exponential backoff and seeded
  jitter, up to ``policy.max_retries`` times;
* attempts that exceed ``policy.timeout_s`` are *abandoned*, not
  cancelled — CPython cannot interrupt an arbitrary callable — and a
  fresh attempt is dispatched; a late result from an abandoned attempt
  is accepted if it arrives before a replacement wins, otherwise
  discarded;
* once enough tasks have finished to estimate a typical duration,
  stragglers get a speculative duplicate and the first finisher wins
  (disable via ``policy.speculate`` for non-idempotent task sets);
* the batch either returns complete results or raises a
  :class:`~repro.errors.BatchError` listing **all** tasks that
  exhausted their budget, each with its failure history.

Every batch leaves a full :class:`~repro.resilience.BatchTelemetry`
(dispatches, retries, timeouts, speculations, backoff delays) in
``last_batch`` and accumulates into ``telemetry``.
"""

from __future__ import annotations

import itertools
import queue
import random
import statistics
import threading
import time
from typing import Any, Callable, Sequence

import numpy as np

from ..backends.base import Backend, TaskResult, get_backend
from ..errors import BatchError, TaskFailure
from ..types import Partition
from .policy import RetryPolicy
from .telemetry import BatchTelemetry, ExecutionTelemetry, TaskTelemetry

__all__ = ["ResilientBackend", "innermost_backend"]


def innermost_backend(backend: Backend) -> Backend:
    """Unwrap ``.inner`` chains (resilient / fault-injection wrappers)."""
    seen: set[int] = set()
    while True:
        inner = getattr(backend, "inner", None)
        if not isinstance(inner, Backend) or id(inner) in seen:
            return backend
        seen.add(id(backend))
        backend = inner


def _classify(exc: BaseException) -> tuple[str, str, BaseException]:
    """Map an attempt's exception to (kind, message, cause)."""
    if isinstance(exc, BatchError) and exc.failures:
        f = exc.failures[0]
        return f.kind, f.message, f.error or exc
    return "exception", repr(exc), exc


def _run_attempt(
    inner: Backend,
    task: Callable[[], Any],
    index: int,
    attempt_id: int,
    outbox: "queue.Queue",
) -> None:
    """One attempt = one single-task batch on the inner backend.

    Runs in its own daemon thread so the supervisor can abandon it; the
    outcome travels through ``outbox`` and late messages for concluded
    tasks are simply ignored.
    """
    try:
        res = inner.run_tasks([task])
    except BaseException as exc:  # noqa: BLE001 - reported to supervisor
        outbox.put((index, attempt_id, False, exc, 0.0))
    else:
        value = res[0].value if res else None
        elapsed = res[0].elapsed_s if res else 0.0
        outbox.put((index, attempt_id, True, value, elapsed))


class _TaskState:
    """Supervisor-side bookkeeping for one task of the batch."""

    __slots__ = (
        "index", "task", "active", "abandoned", "dispatches", "retries",
        "timeouts", "speculations", "worker_deaths", "failures",
        "backoffs", "retry_at", "result", "winner", "done",
    )

    def __init__(self, index: int, task: Callable[[], Any]) -> None:
        self.index = index
        self.task = task
        #: attempt_id -> (kind, started_at) for in-flight attempts.
        self.active: dict[int, tuple[str, float]] = {}
        #: attempt_id -> kind for abandoned (timed-out) attempts whose
        #: late success we would still accept.
        self.abandoned: dict[int, str] = {}
        self.dispatches = 0
        self.retries = 0
        self.timeouts = 0
        self.speculations = 0
        self.worker_deaths = 0
        self.failures: list[TaskFailure] = []
        self.backoffs: list[float] = []
        self.retry_at: float | None = None
        self.result: TaskResult | None = None
        self.winner: str | None = None
        self.done = False


class ResilientBackend(Backend):
    """Fault-tolerant wrapper around any :class:`Backend`.

    Parameters
    ----------
    inner:
        The backend that actually executes attempts — an instance or a
        registry name.
    policy:
        The :class:`~repro.resilience.RetryPolicy`; defaults to a
        moderate 2-retry, no-timeout, speculation-on policy.
    max_workers:
        Forwarded to the inner backend when ``inner`` is a name.
    owns_inner:
        Whether :meth:`close` closes the inner backend.  Defaults to
        True (and always True when ``inner`` is a name); pass False
        when wrapping a backend whose lifetime someone else manages.
    """

    name = "resilient"

    def __init__(
        self,
        inner: Backend | str,
        policy: RetryPolicy | None = None,
        *,
        max_workers: int | None = None,
        owns_inner: bool | None = None,
    ) -> None:
        if isinstance(inner, str):
            kwargs = {} if max_workers is None else {"max_workers": max_workers}
            inner = get_backend(inner, **kwargs)
            owns_inner = True
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self._owns_inner = True if owns_inner is None else owns_inner
        self._rng = random.Random(self.policy.seed)
        self.telemetry = ExecutionTelemetry()
        self.last_batch: BatchTelemetry | None = None

    # ------------------------------------------------------------------
    # Supervision loop
    # ------------------------------------------------------------------
    def run_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[TaskResult]:
        tasks = list(tasks)
        n = len(tasks)
        if n == 0:
            self.last_batch = BatchTelemetry()
            self.telemetry.record(self.last_batch)
            return []
        pol = self.policy
        outbox: queue.Queue = queue.Queue()
        states = [_TaskState(i, t) for i, t in enumerate(tasks)]
        attempt_ids = itertools.count()
        durations: list[float] = []
        pending = n

        def launch(st: _TaskState, kind: str) -> None:
            aid = next(attempt_ids)
            st.dispatches += 1
            if kind == "retry":
                st.retries += 1
            elif kind == "speculative":
                st.speculations += 1
            st.active[aid] = (kind, time.monotonic())
            threading.Thread(
                target=_run_attempt,
                args=(self.inner, st.task, st.index, aid, outbox),
                name=f"resilient-attempt-{st.index}-{aid}",
                daemon=True,
            ).start()

        def conclude(st: _TaskState) -> None:
            nonlocal pending
            st.done = True
            pending -= 1

        def accept(st: _TaskState, kind: str, value: Any, elapsed: float) -> None:
            st.result = TaskResult(index=st.index, value=value, elapsed_s=elapsed)
            st.winner = kind
            durations.append(elapsed)
            conclude(st)

        def after_attempt_failure(st: _TaskState, now: float) -> None:
            """Schedule a retry, or conclude the task as failed."""
            if st.retries < pol.max_retries:
                if st.retry_at is None:
                    delay = pol.backoff_s(st.retries + 1, self._rng)
                    st.backoffs.append(delay)
                    st.retry_at = now + delay
            elif not st.active and st.retry_at is None:
                conclude(st)

        for st in states:
            launch(st, "primary")

        while pending:
            try:
                msg = outbox.get(timeout=self._wait_s(states, durations))
            except queue.Empty:
                msg = None
            now = time.monotonic()

            if msg is not None:
                idx, aid, ok, payload, elapsed = msg
                st = states[idx]
                info = st.active.pop(aid, None)
                kind = info[0] if info is not None else st.abandoned.pop(aid, None)
                if st.done or kind is None:
                    pass  # late echo of a concluded task — discard
                elif ok:
                    accept(st, kind, payload, elapsed)
                elif info is not None:
                    # Failures of abandoned attempts were already booked
                    # as timeouts; only live attempts report here.
                    fkind, fmsg, ferr = _classify(payload)
                    if fkind == "worker-death":
                        st.worker_deaths += 1
                    st.failures.append(TaskFailure(
                        index=idx, kind=fkind, message=fmsg, error=ferr,
                        attempts=st.dispatches,
                    ))
                    after_attempt_failure(st, now)

            # Abandon attempts that blew the per-attempt deadline.
            if pol.timeout_s is not None:
                for st in states:
                    if st.done:
                        continue
                    expired = [
                        aid for aid, (_k, t0) in st.active.items()
                        if now - t0 > pol.timeout_s
                    ]
                    for aid in expired:
                        st.abandoned[aid] = st.active.pop(aid)[0]
                        st.timeouts += 1
                        st.failures.append(TaskFailure(
                            index=st.index, kind="timeout",
                            message=(
                                f"attempt exceeded the {pol.timeout_s:.3g}s "
                                "deadline and was abandoned"
                            ),
                            attempts=st.dispatches,
                        ))
                    if expired:
                        after_attempt_failure(st, now)

            # Dispatch retries whose backoff has elapsed.
            for st in states:
                if not st.done and st.retry_at is not None and now >= st.retry_at:
                    st.retry_at = None
                    launch(st, "retry")

            # Speculatively duplicate stragglers.
            if pol.speculate and len(durations) >= pol.min_completed_for_speculation:
                threshold = max(
                    pol.straggler_factor * statistics.median(durations),
                    pol.speculation_floor_s,
                )
                for st in states:
                    if (
                        st.done
                        or not st.active
                        or st.retry_at is not None
                        or st.speculations >= pol.max_speculative
                    ):
                        continue
                    oldest = min(t0 for _k, t0 in st.active.values())
                    if now - oldest > threshold:
                        launch(st, "speculative")

        self.last_batch = BatchTelemetry(tasks=tuple(
            TaskTelemetry(
                index=st.index,
                dispatches=st.dispatches,
                retries=st.retries,
                timeouts=st.timeouts,
                speculations=st.speculations,
                worker_deaths=st.worker_deaths,
                backoff_delays_s=tuple(st.backoffs),
                failures=tuple(st.failures),
                winner=st.winner,
                elapsed_s=st.result.elapsed_s if st.result is not None else 0.0,
            )
            for st in states
        ))
        self.telemetry.record(self.last_batch)

        failed = [st for st in states if st.result is None]
        if failed:
            raise BatchError(
                [self._final_failure(st) for st in failed], total=n
            )
        return [st.result for st in states]

    @staticmethod
    def _final_failure(st: _TaskState) -> TaskFailure:
        if st.failures:
            last = st.failures[-1]
            return TaskFailure(
                index=st.index, kind=last.kind,
                message=f"{last.message} (after {st.dispatches} attempt(s))",
                error=last.error, attempts=st.dispatches,
            )
        return TaskFailure(
            index=st.index, kind="exception",
            message="task never completed", attempts=st.dispatches,
        )

    def _wait_s(self, states: list[_TaskState], durations: list[float]) -> float:
        """Sleep until the next scheduled event, capped for liveness."""
        pol = self.policy
        now = time.monotonic()
        horizon = now + 0.25
        speculation_live = (
            pol.speculate
            and len(durations) >= pol.min_completed_for_speculation
        )
        threshold = (
            max(pol.straggler_factor * statistics.median(durations),
                pol.speculation_floor_s)
            if speculation_live else None
        )
        for st in states:
            if st.done:
                continue
            if st.retry_at is not None:
                horizon = min(horizon, st.retry_at)
            for _kind, t0 in st.active.values():
                if pol.timeout_s is not None:
                    horizon = min(horizon, t0 + pol.timeout_s)
                if threshold is not None and st.speculations < pol.max_speculative:
                    horizon = min(horizon, t0 + threshold)
        return max(0.002, horizon - now)

    # ------------------------------------------------------------------
    # Shared-memory merge fast path (see Backend.merge_partition hook)
    # ------------------------------------------------------------------
    def merge_partition(
        self, a: np.ndarray, b: np.ndarray, partition: Partition
    ) -> np.ndarray | None:
        """Resilient zero-copy merge when the innermost backend is a
        process pool; ``None`` (= use the generic task path) otherwise.

        The arena's segment tasks are picklable and idempotent, so the
        full retry/timeout/speculation machinery applies to them —
        including surviving a killed worker process.  The whole arena
        ships as one :class:`~repro.backends.TaskBatch`: however many
        per-task retries or speculative duplicates the supervisor
        launches underneath, the caller sees a single dispatch.
        """
        from ..backends import TaskBatch
        from ..backends.processes import ProcessBackend, SharedMergeArena

        if not isinstance(innermost_backend(self), ProcessBackend):
            return None
        with SharedMergeArena(np.asarray(a), np.asarray(b), partition) as arena:
            self.run_batch(TaskBatch(arena.tasks(), label="merge.shared"))
            return arena.result()

    def close(self) -> None:
        if self._owns_inner:
            self.inner.close()
