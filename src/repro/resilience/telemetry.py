"""Retry/timeout/speculation telemetry for resilient batches.

The supervisor records, per task, how many dispatches it took, which
attempt won (primary, retry, or speculative), every failure along the
way, and the exact backoff delays that were scheduled — the latter make
the seeded-jitter determinism directly testable.  Batches aggregate
into an :class:`ExecutionTelemetry` that the high-level entry points
(:func:`repro.core.parallel_merge.parallel_merge`,
:func:`repro.core.merge_sort.parallel_merge_sort`) expose to callers
and the conformance chaos tier prints in its verdicts.

These dataclasses are *emitters* into the unified observability layer:
bind an :class:`ExecutionTelemetry` to a
:class:`repro.obs.MetricsRegistry` (``telemetry.metrics = registry``,
or simply pass ``metrics=`` to the entry points) and every recorded
batch increments the ``resilience.*`` counters there — one counting
path shared with kernel and load-balance metrics.  The aggregate
properties below remain as thin read-side aliases over the recorded
batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import TaskFailure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry

__all__ = [
    "TaskTelemetry",
    "BatchTelemetry",
    "ExecutionTelemetry",
    "TELEMETRY_COUNTERS",
]

#: Batch aggregate fields mirrored into ``resilience.*`` counters.
TELEMETRY_COUNTERS = (
    "dispatches", "retries", "timeouts", "speculations", "worker_deaths",
)


@dataclass(frozen=True)
class TaskTelemetry:
    """Supervision record for one task of one batch."""

    index: int
    #: Total attempts dispatched (primary + retries + speculative).
    dispatches: int
    retries: int = 0
    timeouts: int = 0
    speculations: int = 0
    worker_deaths: int = 0
    #: Scheduled backoff delays, in order (seeded-jitter observable).
    backoff_delays_s: tuple[float, ...] = ()
    failures: tuple[TaskFailure, ...] = ()
    #: Which attempt produced the accepted result: ``"primary"``,
    #: ``"retry"``, or ``"speculative"``; ``None`` if the task failed.
    winner: str | None = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.winner is not None


@dataclass(frozen=True)
class BatchTelemetry:
    """Aggregate supervision record for one ``run_tasks`` batch."""

    tasks: tuple[TaskTelemetry, ...] = ()

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.tasks)

    @property
    def dispatches(self) -> int:
        return sum(t.dispatches for t in self.tasks)

    @property
    def retries(self) -> int:
        return sum(t.retries for t in self.tasks)

    @property
    def timeouts(self) -> int:
        return sum(t.timeouts for t in self.tasks)

    @property
    def speculations(self) -> int:
        return sum(t.speculations for t in self.tasks)

    @property
    def worker_deaths(self) -> int:
        return sum(t.worker_deaths for t in self.tasks)

    @property
    def backoff_delays_s(self) -> tuple[float, ...]:
        out: list[float] = []
        for t in self.tasks:
            out.extend(t.backoff_delays_s)
        return tuple(out)

    def describe(self) -> str:
        return (
            f"tasks={len(self.tasks)} dispatches={self.dispatches} "
            f"retries={self.retries} timeouts={self.timeouts} "
            f"speculations={self.speculations} "
            f"worker_deaths={self.worker_deaths}"
        )


@dataclass
class ExecutionTelemetry:
    """Running aggregate over every supervised batch of an execution.

    Mutable on purpose: callers hand one instance to ``parallel_merge``
    / ``parallel_merge_sort`` (or read it off a
    :class:`~repro.resilience.ResilientBackend`) and inspect the totals
    afterwards.

    When :attr:`metrics` is set (a :class:`repro.obs.MetricsRegistry`),
    :meth:`record` also increments the registry's ``resilience.*``
    counters, making this object an emitter into the unified metrics
    layer rather than a second counting path.
    """

    batches: list[BatchTelemetry] = field(default_factory=list)
    #: Optional unified-registry sink; see class docstring.
    metrics: "MetricsRegistry | None" = None

    def bind(self, metrics: "MetricsRegistry") -> "ExecutionTelemetry":
        """Attach a registry sink; chainable."""
        self.metrics = metrics
        return self

    def record(self, batch: BatchTelemetry) -> None:
        self.batches.append(batch)
        registry = self.metrics
        if registry is not None:
            registry.counter("resilience.batches").inc()
            registry.counter("resilience.tasks").inc(len(batch.tasks))
            for key in TELEMETRY_COUNTERS:
                count = getattr(batch, key)
                if count:
                    registry.counter(f"resilience.{key}").inc(count)

    @property
    def dispatches(self) -> int:
        return sum(b.dispatches for b in self.batches)

    @property
    def retries(self) -> int:
        return sum(b.retries for b in self.batches)

    @property
    def timeouts(self) -> int:
        return sum(b.timeouts for b in self.batches)

    @property
    def speculations(self) -> int:
        return sum(b.speculations for b in self.batches)

    @property
    def worker_deaths(self) -> int:
        return sum(b.worker_deaths for b in self.batches)

    @property
    def backoff_delays_s(self) -> tuple[float, ...]:
        out: list[float] = []
        for b in self.batches:
            out.extend(b.backoff_delays_s)
        return tuple(out)

    def summary(self) -> dict[str, int]:
        return {
            "batches": len(self.batches),
            "dispatches": self.dispatches,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "speculations": self.speculations,
            "worker_deaths": self.worker_deaths,
        }
