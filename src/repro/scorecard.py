"""Reproduction scorecard: ``python -m repro scorecard``.

Runs every experiment and evaluates each paper claim as a PASS/FAIL
predicate over the regenerated numbers — the single-command answer to
"did this reproduction actually reproduce?".  The predicates are the
same headline assertions the benchmark suite enforces, factored here so
they are visible, enumerable and individually reportable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .experiments.registry import run_experiment
from .types import ExperimentResult

__all__ = ["Claim", "CLAIMS", "evaluate_claims", "render_scorecard"]


@dataclass(frozen=True, slots=True)
class Claim:
    """One paper claim and its pass predicate over experiment rows."""

    exp_id: str
    paper_ref: str
    statement: str
    check: Callable[[ExperimentResult], bool]


def _fig5_mean_band(r: ExperimentResult) -> bool:
    at12 = [float(x["model_speedup"]) for x in r.rows if x["p"] == 12]
    return bool(at12) and 11.0 <= sum(at12) / len(at12) <= 12.0


def _fig5_droop(r: ExperimentResult) -> bool:
    at12 = {x["size_Melem"]: float(x["model_speedup"])
            for x in r.rows if x["p"] == 12}
    return at12 and at12[max(at12)] == min(at12.values())


def _overhead_small(r: ExperimentResult) -> bool:
    counted = float(r.rows[1]["overhead_pct"])
    wall = float(r.rows[0]["overhead_pct"])
    return counted == 0.0 and abs(wall) < 10.0


def _t14_bound(r: ExperimentResult) -> bool:
    return all(r.column("within_bound")) and max(r.column("imbalance")) <= 1


def _complex_fit(r: ExperimentResult) -> bool:
    r2 = float(r.notes[0].split("R² = ")[1].split(",")[0])
    return r2 > 0.999


def _lb_sv_latency(r: ExperimentResult) -> bool:
    ratios = [
        float(x["pram_time_ratio"]) for x in r.rows
        if x["algorithm"] == "shiloach_vishkin"
        and x["workload"] in ("disjoint_high_low", "all_equal")
    ]
    return bool(ratios) and max(ratios) >= 2.0


def _lb_balanced(r: ExperimentResult) -> bool:
    return all(
        float(x["max_over_avg"]) <= 1.05
        for x in r.rows
        if x["algorithm"] in ("merge_path", "deo_sarkar", "akl_santoro")
    )


def _spm_floor(r: ExperimentResult) -> bool:
    rows = {x["algorithm"]: x for x in r.rows}
    return float(rows["segmented_SPM"]["vs_compulsory"]) <= 1.05


def _spm_three_way(r: ExperimentResult) -> bool:
    rows = {x["algorithm"]: x for x in r.rows}
    return (
        float(rows["segmented_SPM/3-way"]["vs_compulsory"]) <= 1.05
        and float(rows["segmented_SPM/2-way"]["vs_compulsory"]) > 1.05
    )


def _spm_p_sweep(r: ExperimentResult) -> bool:
    basics = [
        float(x["vs_compulsory"]) for x in r.rows
        if x["algorithm"] == "parallel_basic/2-way/p-sweep"
    ]
    spms = [
        float(x["vs_compulsory"]) for x in r.rows
        if x["algorithm"] == "segmented_SPM/2-way/p-sweep"
    ]
    return basics == sorted(basics) and basics[-1] > 2 * spms[-1]


def _prefetch_rescues_basic(r: ExperimentResult) -> bool:
    rows = {x["algorithm"]: x for x in r.rows}
    return (
        float(rows["basic/large-cache/prefetch-x4"]["vs_compulsory"])
        < float(rows["basic/large-cache/prefetch-x0"]["vs_compulsory"]) / 2
    )


def _sort_shape(r: ExperimentResult) -> bool:
    ratios = [float(x["ratio"]) for x in r.rows if x["part"] == "sort_cycles"]
    return bool(ratios) and max(ratios) / min(ratios) < 2.0


def _sort_locality(r: ExperimentResult) -> bool:
    by = {x["part"]: x for x in r.rows}
    return (
        float(by["final_round_SPM"]["ratio"])
        < float(by["final_round_basic"]["ratio"])
        and float(by["sort_cache_aware"]["ratio"])
        < float(by["sort_oblivious"]["ratio"])
    )


def _hyper_grows(r: ExperimentResult) -> bool:
    speedups = [
        float(x["spm_speedup"]) for x in r.rows if x["algorithm"] == "SPM"
    ]
    return speedups == sorted(speedups) and speedups[-1] > 3.0


#: The scorecard: every claim checked, in paper order.
CLAIMS: tuple[Claim, ...] = (
    Claim("FIG5", "Fig. 5", "~11.7x mean speedup at 12 threads",
          _fig5_mean_band),
    Claim("FIG5", "Fig. 5", "largest arrays show the slowest speedup",
          _fig5_droop),
    Claim("REM6PCT", "§VI remark",
          "single-thread overhead small; algorithmic part zero",
          _overhead_small),
    Claim("T14", "Thm. 14 / Cor. 7",
          "partition probes within log2(min) bound; imbalance <= 1",
          _t14_bound),
    Claim("COMPLEX", "§III", "time fits c1*N/p + c2*log N with R^2 > 0.999",
          _complex_fit),
    Claim("LB", "§V", "SV-style partition costs >= 2x barrier latency",
          _lb_sv_latency),
    Claim("LB", "§V", "merge path / [2] / [5] stay perfectly balanced",
          _lb_balanced),
    Claim("SPM", "§IV.B", "SPM runs at the compulsory-miss floor",
          _spm_floor),
    Claim("SPM", "§IV.B remark", "3-way associativity suffices (2-way fails)",
          _spm_three_way),
    Claim("SPM", "§IV/§VII", "basic merge degrades with p; SPM stays flat",
          _spm_p_sweep),
    Claim("SPM", "§VI", "hardware prefetch rescues the basic merge",
          _prefetch_rescues_basic),
    Claim("SORT", "§III", "sort cycles track the complexity model",
          _sort_shape),
    Claim("SORT", "§IV.C", "cache-aware sort beats naive and oblivious",
          _sort_locality),
    Claim("HYPER", "§VII", "SPM's many-core advantage grows with p",
          _hyper_grows),
)


def evaluate_claims(
    *, quick: bool = True
) -> list[tuple[Claim, bool]]:
    """Run the experiments once each and evaluate every claim."""
    cache: dict[str, ExperimentResult] = {}
    results = []
    for claim in CLAIMS:
        if claim.exp_id not in cache:
            kwargs: dict[str, object] = {}
            if quick and claim.exp_id == "FIG5":
                kwargs["full"] = True  # FIG5 default is already fast
            cache[claim.exp_id] = run_experiment(claim.exp_id, **kwargs)
        try:
            ok = bool(claim.check(cache[claim.exp_id]))
        except Exception:  # noqa: BLE001 - a broken check is a failure
            ok = False
        results.append((claim, ok))
    return results


def render_scorecard(results: list[tuple[Claim, bool]]) -> str:
    """Plain-text scorecard."""
    lines = ["Reproduction scorecard", "======================"]
    passed = 0
    for claim, ok in results:
        mark = "PASS" if ok else "FAIL"
        passed += ok
        lines.append(f"[{mark}] {claim.paper_ref:<16} {claim.statement}")
    lines.append("")
    lines.append(f"claims reproduced: {passed}/{len(results)}")
    return "\n".join(lines)
