"""Quick self-verification battery: ``python -m repro selftest``.

Runs every merge/sort implementation in the package against the public
verifiers on a grid of statistical and adversarial inputs — a
dependency-free smoke check for fresh installs, ports, and custom
backends (pass ``backend=`` to check yours).  Prints one line per
check; returns the failure count.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .backends import Backend
from .baselines.akl_santoro import akl_santoro_merge
from .baselines.deo_sarkar import deo_sarkar_merge
from .baselines.heap_kway import heap_kway_merge
from .baselines.shiloach_vishkin import sv_merge
from .core.cache_sort import cache_efficient_sort
from .core.inplace import merge_inplace_parallel
from .core.kway import kway_merge
from .core.merge_path import partition_merge_path
from .core.merge_sort import parallel_merge_sort
from .core.parallel_merge import parallel_merge
from .core.segmented_merge import segmented_parallel_merge
from .core.streaming import streaming_merge
from .gpu import blocked_merge
from .verify import verify_merged, verify_partition
from .workloads.adversarial import ADVERSARIAL_PAIRS
from .workloads.generators import sorted_pair

__all__ = ["run_selftest"]


def _merge_checks(backend: Backend | str) -> dict[str, Callable]:
    return {
        "parallel_merge(p=4)": lambda a, b: parallel_merge(
            a, b, 4, backend=backend
        ),
        "segmented_merge(L=64)": lambda a, b: segmented_parallel_merge(
            a, b, 4, L=64, backend=backend
        ),
        "gpu.blocked_merge": lambda a, b: blocked_merge(a, b)[0],
        "kway_merge": lambda a, b: kway_merge([a, b], 4, backend=backend),
        "heap_kway": lambda a, b: heap_kway_merge([a, b]),
        "sv_merge": lambda a, b: sv_merge(a, b, 4),
        "akl_santoro": lambda a, b: akl_santoro_merge(a, b, 4),
        "deo_sarkar": lambda a, b: deo_sarkar_merge(a, b, 4),
        "streaming(L=32)": lambda a, b: (
            np.concatenate(list(streaming_merge(iter(a), iter(b), L=32)))
            if len(a) + len(b)
            else np.array([])
        ),
        "inplace_parallel": _inplace_adapter,
    }


def _inplace_adapter(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    arr = np.concatenate([a, b])
    merge_inplace_parallel(arr, len(a), 4)
    return arr


def run_selftest(
    *, backend: Backend | str = "serial", verbose: bool = True, seed: int = 99
) -> int:
    """Run the battery; returns the number of failed checks."""
    inputs: dict[str, tuple[np.ndarray, np.ndarray]] = {
        "uniform": sorted_pair(500, 430, seed),
        "floats": sorted_pair(300, 310, seed, kind="uniform_floats"),
        "duplicates": sorted_pair(400, 380, seed, kind="zipf_duplicates"),
    }
    for name, make in ADVERSARIAL_PAIRS.items():
        inputs[name] = make(128)

    failures = 0

    def report(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        if not ok:
            failures += 1
        if verbose:
            mark = "ok " if ok else "FAIL"
            print(f"  [{mark}] {label}{': ' + detail if detail else ''}")

    for input_name, (a, b) in inputs.items():
        if verbose:
            print(f"input: {input_name} (|A|={len(a)}, |B|={len(b)})")
        # the partitioner itself
        try:
            verify_partition(partition_merge_path(a, b, 8), a, b)
            report("partition_merge_path(p=8)", True)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            report("partition_merge_path(p=8)", False, repr(exc))
        for check_name, fn in _merge_checks(backend).items():
            try:
                out = fn(a, b)
                verify_merged(out, a, b)
                report(check_name, True)
            except Exception as exc:  # noqa: BLE001
                report(check_name, False, repr(exc))

    # sorts
    g = np.random.default_rng(seed)
    x = g.integers(0, 10_000, 2000)
    from .core.natural_sort import natural_merge_sort

    for sort_name, sort_fn in (
        ("parallel_merge_sort", lambda v: parallel_merge_sort(
            v, 4, backend=backend)),
        ("cache_efficient_sort", lambda v: cache_efficient_sort(
            v, 4, 256, backend=backend)),
        ("natural_merge_sort", lambda v: natural_merge_sort(
            v, 4, backend=backend)),
    ):
        try:
            ok = bool(np.array_equal(sort_fn(x), np.sort(x)))
            report(sort_name, ok)
        except Exception as exc:  # noqa: BLE001
            report(sort_name, False, repr(exc))

    if verbose:
        total = len(inputs) * (len(_merge_checks(backend)) + 1) + 3
        print(f"\nselftest: {total - failures}/{total} checks passed")
    return failures
