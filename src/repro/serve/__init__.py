"""Merge path as a service: the asyncio front door (``repro serve``).

The package turns the library into a long-running process: plain-TCP
newline-delimited JSON in (:mod:`.protocol`), coalesced ``TaskBatch``
dispatches on the shared pools out (:mod:`.coalescer`), bounded by
admission control with load shedding and per-request deadlines
(:mod:`.admission`), supervised by the resilience layer, and measured
into a :class:`~repro.obs.MetricsRegistry` the PR-6 control plane can
judge (``doctor --slo --metrics-from``).  See ``docs/serving.md``.
"""

from .admission import AdmissionController
from .client import (
    AsyncResilientClient,
    AsyncServeClient,
    ClientRetryPolicy,
    ResilientClient,
    ServeClient,
    request_sync,
)
from .coalescer import Coalescer
from .protocol import (
    ERROR_CODES,
    OPS,
    Request,
    RequestError,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)
from .server import SERVE_DEFAULT_SLO, MergeServer, ServeConfig, ServerThread

__all__ = [
    "OPS",
    "ERROR_CODES",
    "Request",
    "RequestError",
    "parse_request",
    "encode_line",
    "ok_response",
    "error_response",
    "AdmissionController",
    "Coalescer",
    "ServeConfig",
    "MergeServer",
    "ServerThread",
    "SERVE_DEFAULT_SLO",
    "request_sync",
    "ServeClient",
    "AsyncServeClient",
    "ClientRetryPolicy",
    "ResilientClient",
    "AsyncResilientClient",
]
