"""Admission control: a bounded front door that sheds before it queues.

A service that accepts everything degrades for everyone — the queue
grows, every deadline blows, and the eventual answers are all late.
The :class:`AdmissionController` caps the number of requests alive in
the server (queued in the coalescer, waiting on a batch, or executing)
at ``capacity``; a request arriving past the cap is *shed* immediately
with a 429-style rejection payload (see :mod:`.protocol`), which costs
the server one JSON line instead of one queue slot.  Combined with
per-request deadlines (enforced by the server with
``asyncio.wait_for`` over the whole queue-plus-compute span) this
bounds both the memory and the latency a traffic spike can inflict.

The controller is deliberately tiny and lock-based rather than
asyncio-native: admissions happen on the event loop, but releases may
arrive from executor callbacks, and a plain mutex keeps the invariant
airtight either way.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded in-flight budget with shed accounting.

    ``capacity`` is the maximum number of concurrently admitted
    requests; :meth:`try_admit` returns False (and counts
    ``serve.shed``) once the budget is exhausted.  Every successful
    admit must be paired with exactly one :meth:`release`.
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._metrics = metrics
        self._inflight = 0
        self._peak = 0
        self._lock = threading.Lock()

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def peak(self) -> int:
        """High-water mark of concurrently admitted requests."""
        return self._peak

    def try_admit(self) -> bool:
        """Claim one slot; False means the caller must shed the request."""
        with self._lock:
            if self._inflight >= self.capacity:
                shed = True
            else:
                shed = False
                self._inflight += 1
                if self._inflight > self._peak:
                    self._peak = self._inflight
        if self._metrics is not None:
            if shed:
                self._metrics.counter("serve.shed").inc()
            else:
                self._metrics.gauge("serve.inflight").set(self._inflight)
        return not shed

    def release(self) -> None:
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching try_admit()")
            self._inflight -= 1
            inflight = self._inflight
        if self._metrics is not None:
            self._metrics.gauge("serve.inflight").set(inflight)
