"""Clients for the NDJSON front door: stdlib-only, sync and async.

The protocol is plain enough that ``nc`` works; these helpers exist so
tests, the load generator, and the smoke harness don't each reinvent
line framing and id matching.  :func:`request_sync` is the one-shot
convenience; :class:`ServeClient` holds a connection open (pipelining
friendly — send many, then collect by id); :class:`AsyncServeClient`
is the asyncio flavour the load generator fans out with.

:class:`ResilientClient` / :class:`AsyncResilientClient` wrap those
with the failure handling a non-loopback network demands: reconnect on
reset, bounded seeded-backoff retries, deadline propagation (the
remaining client budget rides each attempt as ``deadline_ms``), and —
async only — optional hedged sends for tail latency.  All of it is
safe *because of the paper*: requests are idempotent pure functions
over their payloads (Theorem 14 disjointness is what makes the server
side replayable too), so a duplicate send can at worst waste work,
never corrupt a result.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any

from .protocol import encode_line

__all__ = [
    "request_sync",
    "ServeClient",
    "AsyncServeClient",
    "ClientRetryPolicy",
    "ResilientClient",
    "AsyncResilientClient",
]


def request_sync(
    host: str,
    port: int,
    payload: dict[str, Any],
    *,
    timeout: float = 30.0,
) -> dict[str, Any]:
    """Open a connection, send one request, return the decoded response."""
    with ServeClient(host, port, timeout=timeout) as client:
        return client.request(payload)


class ServeClient:
    """A persistent synchronous connection to a merge server."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def settimeout(self, timeout: float | None) -> None:
        """Adjust the socket timeout for subsequent sends/reads."""
        self._sock.settimeout(timeout)

    def send(self, payload: dict[str, Any]) -> None:
        """Write one request line without waiting for the response."""
        self._sock.sendall(encode_line(payload))

    def recv(self) -> dict[str, Any]:
        """Read one response line (completion order, not send order)."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        self.send(payload)
        return self.recv()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncServeClient:
    """A persistent asyncio connection; ``connect`` then ``request``.

    ``request`` serializes writes but reads concurrently-safe only when
    calls are awaited one at a time per client; the load generator uses
    one client per simulated connection and pipelines explicitly via
    ``send``/``recv_by_id``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._by_id: dict[Any, dict[str, Any]] = {}

    async def connect(self, *, limit: int = 1 << 26) -> "AsyncServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=limit
        )
        return self

    async def send(self, payload: dict[str, Any]) -> None:
        assert self._writer is not None, "call connect() first"
        self._writer.write(encode_line(payload))
        await self._writer.drain()

    async def recv(self) -> dict[str, Any]:
        assert self._reader is not None, "call connect() first"
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def recv_by_id(self, req_id: Any) -> dict[str, Any]:
        """Next response for ``req_id``, buffering out-of-order arrivals."""
        if req_id in self._by_id:
            return self._by_id.pop(req_id)
        while True:
            response = await self.recv()
            if response.get("id") == req_id:
                return response
            self._by_id[response.get("id")] = response

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        await self.send(payload)
        return await self.recv_by_id(payload.get("id"))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Knobs for the resilient clients' retry/backoff/hedge behavior.

    ``retry_kinds`` are the typed server errors worth retrying:
    ``shed`` (momentary overload) and ``draining`` (this replica is
    going away; another would answer).  Transport failures — reset,
    timeout, garbage where a JSON line should be — always retry on a
    fresh connection.  Backoff is exponential with *seeded* jitter
    (``random.Random(f"{seed}:{key}:{attempt}")``), so a test replays
    the exact delay schedule.

    ``hedge_after_s`` (async client only): when the primary attempt has
    not answered after this long, a duplicate rides a second connection
    and the first response wins — idempotence makes the race safe.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    jitter: float = 0.5
    seed: int = 0
    retry_kinds: tuple[str, ...] = ("shed", "draining")
    hedge_after_s: float | None = None

    def backoff_for(self, key: str, attempt: int) -> float:
        """Seeded-jitter delay before retry ``attempt`` (0-based)."""
        base = min(self.backoff_cap_s, self.backoff_base_s * 2 ** attempt)
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return base * (1.0 + rng.random() * self.jitter)

    def should_retry_response(self, response: dict[str, Any]) -> bool:
        """Whether a decoded server response merits another attempt."""
        if response.get("ok"):
            return False
        kind = (response.get("error") or {}).get("kind")
        return kind in self.retry_kinds


class ResilientClient:
    """A :class:`ServeClient` that survives resets, drains, and sheds.

    One logical ``request`` may cost several physical attempts: a
    transport failure (reset, timeout, non-JSON bytes) drops the
    connection and retries on a fresh one after seeded backoff; a typed
    ``shed``/``draining`` response backs off and retries in place.  A
    ``deadline_s`` bounds the *whole* ladder — each attempt carries the
    remaining budget as ``deadline_ms`` so the server stops computing
    answers nobody will read.  When every attempt yields a retryable
    typed error, the last one is returned (typed, never a hang); when
    every attempt died in transport, :class:`ConnectionError` is
    raised.  ``retries``/``reconnects`` are observable for tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: ClientRetryPolicy | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy or ClientRetryPolicy()
        self.timeout = timeout
        self._client: ServeClient | None = None
        self.retries = 0
        self.reconnects = 0

    def _ensure(self, timeout: float) -> ServeClient:
        if self._client is None:
            self._client = ServeClient(self.host, self.port, timeout=timeout)
        else:
            self._client.settimeout(timeout)
        return self._client

    def _drop(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None

    def request(
        self, payload: dict[str, Any], *, deadline_s: float | None = None
    ) -> dict[str, Any]:
        """Send one request with retries; see the class docstring."""
        deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        key = repr(payload.get("id"))
        last_response: dict[str, Any] | None = None
        last_exc: Exception | None = None
        for attempt in range(self.policy.max_attempts):
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                break
            body = dict(payload)
            if remaining is not None:
                body["deadline_ms"] = max(1.0, remaining * 1e3)
            att_timeout = (
                self.timeout if remaining is None
                else min(self.timeout, remaining)
            )
            try:
                client = self._ensure(att_timeout)
                client.send(body)
                while True:
                    response = client.recv()
                    # A mismatched id is a stray (e.g. the server 400'd
                    # a corrupted frame under its own null id): keep
                    # reading until ours arrives or the timeout fires.
                    if response.get("id") == body.get("id"):
                        break
            except (OSError, ValueError) as exc:
                # Reset, timeout, or non-JSON bytes: this connection is
                # no longer trustworthy (a stale response could arrive
                # later); replay on a fresh one.
                last_exc = exc
                self._drop()
                self.reconnects += 1
            else:
                if not self.policy.should_retry_response(response):
                    return response
                last_response = response
            self.retries += 1
            delay = self.policy.backoff_for(key, attempt)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            if delay > 0 and attempt + 1 < self.policy.max_attempts:
                time.sleep(delay)
        if last_response is not None:
            return last_response
        raise ConnectionError(
            f"request {payload.get('id')!r} failed after "
            f"{self.policy.max_attempts} attempt(s): {last_exc!r}"
        )

    def close(self) -> None:
        """Drop the underlying connection (reconnects happen lazily)."""
        self._drop()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncResilientClient:
    """The asyncio twin of :class:`ResilientClient`, plus hedging.

    Each attempt rides its own connection (hedge-safe by construction:
    two in-flight attempts never share a stream).  With
    ``policy.hedge_after_s`` set, a primary attempt that hasn't
    answered in time races a duplicate on a second connection and the
    first decoded response wins — both compute the same bytes, so the
    race is free of result ambiguity.  ``retries``/``reconnects``/
    ``hedges`` are observable for tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: ClientRetryPolicy | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy or ClientRetryPolicy()
        self.timeout = timeout
        self.retries = 0
        self.reconnects = 0
        self.hedges = 0

    async def _attempt(
        self, body: dict[str, Any], timeout: float
    ) -> dict[str, Any]:
        client = AsyncServeClient(self.host, self.port)
        try:
            await asyncio.wait_for(client.connect(), timeout)
            await asyncio.wait_for(client.send(body), timeout)
            return await asyncio.wait_for(
                client.recv_by_id(body.get("id")), timeout
            )
        finally:
            await client.close()

    async def _hedged(
        self, body: dict[str, Any], timeout: float
    ) -> dict[str, Any]:
        primary = asyncio.create_task(self._attempt(body, timeout))
        done, _ = await asyncio.wait(
            {primary}, timeout=self.policy.hedge_after_s
        )
        if primary in done:
            return primary.result()
        self.hedges += 1
        pending = {primary, asyncio.create_task(
            self._attempt(dict(body), timeout)
        )}
        error: BaseException | None = None
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    try:
                        return task.result()
                    except (OSError, ValueError, asyncio.TimeoutError) as exc:
                        error = exc
            assert error is not None
            raise error
        finally:
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    async def request(
        self, payload: dict[str, Any], *, deadline_s: float | None = None
    ) -> dict[str, Any]:
        """Send one request with retries (and optional hedging)."""
        deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        key = repr(payload.get("id"))
        last_response: dict[str, Any] | None = None
        last_exc: Exception | None = None
        for attempt in range(self.policy.max_attempts):
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                break
            body = dict(payload)
            if remaining is not None:
                body["deadline_ms"] = max(1.0, remaining * 1e3)
            att_timeout = (
                self.timeout if remaining is None
                else min(self.timeout, remaining)
            )
            try:
                if self.policy.hedge_after_s is not None:
                    response = await self._hedged(body, att_timeout)
                else:
                    response = await self._attempt(body, att_timeout)
            except (OSError, ValueError, asyncio.TimeoutError) as exc:
                last_exc = exc
                self.reconnects += 1
            else:
                if not self.policy.should_retry_response(response):
                    return response
                last_response = response
            self.retries += 1
            delay = self.policy.backoff_for(key, attempt)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            if delay > 0 and attempt + 1 < self.policy.max_attempts:
                await asyncio.sleep(delay)
        if last_response is not None:
            return last_response
        raise ConnectionError(
            f"request {payload.get('id')!r} failed after "
            f"{self.policy.max_attempts} attempt(s): {last_exc!r}"
        )
