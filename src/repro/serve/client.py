"""Clients for the NDJSON front door: stdlib-only, sync and async.

The protocol is plain enough that ``nc`` works; these helpers exist so
tests, the load generator, and the smoke harness don't each reinvent
line framing and id matching.  :func:`request_sync` is the one-shot
convenience; :class:`ServeClient` holds a connection open (pipelining
friendly — send many, then collect by id); :class:`AsyncServeClient`
is the asyncio flavour the load generator fans out with.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any

from .protocol import encode_line

__all__ = ["request_sync", "ServeClient", "AsyncServeClient"]


def request_sync(
    host: str,
    port: int,
    payload: dict[str, Any],
    *,
    timeout: float = 30.0,
) -> dict[str, Any]:
    """Open a connection, send one request, return the decoded response."""
    with ServeClient(host, port, timeout=timeout) as client:
        return client.request(payload)


class ServeClient:
    """A persistent synchronous connection to a merge server."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def send(self, payload: dict[str, Any]) -> None:
        """Write one request line without waiting for the response."""
        self._sock.sendall(encode_line(payload))

    def recv(self) -> dict[str, Any]:
        """Read one response line (completion order, not send order)."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        self.send(payload)
        return self.recv()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncServeClient:
    """A persistent asyncio connection; ``connect`` then ``request``.

    ``request`` serializes writes but reads concurrently-safe only when
    calls are awaited one at a time per client; the load generator uses
    one client per simulated connection and pipelines explicitly via
    ``send``/``recv_by_id``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._by_id: dict[Any, dict[str, Any]] = {}

    async def connect(self, *, limit: int = 1 << 26) -> "AsyncServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=limit
        )
        return self

    async def send(self, payload: dict[str, Any]) -> None:
        assert self._writer is not None, "call connect() first"
        self._writer.write(encode_line(payload))
        await self._writer.drain()

    async def recv(self) -> dict[str, Any]:
        assert self._reader is not None, "call connect() first"
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def recv_by_id(self, req_id: Any) -> dict[str, Any]:
        """Next response for ``req_id``, buffering out-of-order arrivals."""
        if req_id in self._by_id:
            return self._by_id.pop(req_id)
        while True:
            response = await self.recv()
            if response.get("id") == req_id:
                return response
            self._by_id[response.get("id")] = response

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        await self.send(payload)
        return await self.recv_by_id(payload.get("id"))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
