"""The request coalescer: many tiny requests, one backend dispatch.

The batched execution engine (PR 5) exists because one fork/join per
*phase* beats one per *pair*; the service front door has the same
shape one level up — one backend dispatch per *window of concurrent
requests* beats one per request.  A tiny merge costs far less than a
pool dispatch, so a server doing millions of them must amortize the
dispatch: requests that arrive within one coalescing window (or
before the window fills to ``max_batch``) are fused into a single
:class:`~repro.backends.TaskBatch` and submitted with **one**
``run_batch`` call on the shared pool.  ``exec.dispatches`` therefore
grows with the number of *windows*, sub-linearly in the number of
requests — which is exactly the invariant the server test tier pins.

The coalescer is pure scheduling: it neither computes nor knows about
the wire protocol.  ``submit(item)`` returns an ``asyncio.Future``;
the ``runner`` coroutine passed at construction receives the drained
``(item, future)`` window and is responsible for resolving every
future (the server's runner builds the TaskBatch, runs it in an
executor thread, and fans results back out).  Futures cancelled while
parked — a request whose deadline expired — are dropped from the
window before the runner sees them.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

__all__ = ["Coalescer"]


class Coalescer:
    """Windowed batcher for an asyncio front door.

    Parameters
    ----------
    runner:
        ``async runner(entries)`` where ``entries`` is a non-empty list
        of ``(item, future)`` pairs; must resolve each future (guarding
        ``future.done()`` — a deadline may cancel one concurrently).
    max_batch:
        Flush as soon as this many requests are parked.
    window_s:
        Flush this long after the first request of a window arrived,
        even if the window is not full.  ``0`` flushes on the next
        event-loop tick, which still coalesces a burst that arrived in
        the same tick.
    """

    def __init__(
        self,
        runner: Callable[[list[tuple[Any, asyncio.Future]]], Awaitable[None]],
        *,
        max_batch: int = 64,
        window_s: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self._runner = runner
        self.max_batch = max_batch
        self.window_s = window_s
        self._pending: list[tuple[Any, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None
        self._tasks: set[asyncio.Task] = set()
        #: Windows flushed so far (one backend dispatch each).
        self.flushes = 0

    @property
    def pending(self) -> int:
        return len(self._pending)

    def submit(self, item: Any) -> "asyncio.Future[Any]":
        """Park ``item`` in the current window; resolve via the runner."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((item, future))
        if len(self._pending) >= self.max_batch:
            self.flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window_s, self.flush)
        return future

    def flush(self) -> None:
        """Hand the parked window to the runner (no-op when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        entries = [(i, f) for i, f in self._pending if not f.done()]
        self._pending.clear()
        if not entries:
            return
        self.flushes += 1
        task = asyncio.get_running_loop().create_task(self._runner(entries))
        # Keep a strong reference until done (asyncio only holds weakly).
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def drain(self) -> None:
        """Flush and wait for every in-flight window (shutdown path)."""
        self.flush()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
