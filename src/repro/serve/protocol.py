"""The wire protocol: newline-delimited JSON over plain TCP.

One request per line, one response per line, no framing beyond ``\\n``
and no dependencies beyond the standard library — a client is
``socket`` plus ``json`` (or ``nc`` at a shell).  Requests carry an
``id`` the server echoes verbatim, so clients may pipeline many
requests on one connection and match responses out of order (the
server answers in completion order, not arrival order).

Request shape::

    {"id": 7, "op": "merge", "a": [1, 3, 5], "b": [2, 4]}
    {"id": 8, "op": "sort", "data": [5, 2, 9, 1]}
    {"id": 9, "op": "topk", "a": [...], "b": [...], "k": 10}
    {"id": 0, "op": "ping"}
    {"id": 1, "op": "metrics"}
    {"id": 2, "op": "merge", "a": [...], "b": [...], "deadline_ms": 50}

Response shape::

    {"id": 7, "ok": true, "result": [1, 2, 3, 4, 5], "n": 5,
     "batched": 12, "elapsed_ms": 0.8}
    {"id": 2, "ok": false,
     "error": {"code": 429, "kind": "shed", "message": "..."}}

Error ``kind``/``code`` pairs (HTTP-flavoured so dashboards can reuse
status-code buckets):

``bad-request`` / 400
    Malformed JSON, unknown op, missing or non-numeric fields,
    unsorted inputs to ``merge``/``topk``, ``k`` out of range.
``too-large`` / 413
    More elements than the server's ``max_request_elems``.
``line-too-long`` / 413
    The raw request line exceeded the server's ``max_line_bytes``
    before a newline arrived; the oversized line is discarded without
    buffering it whole, so a garbage flood can't balloon reader memory.
``shed`` / 429
    Admission control rejected the request (queue at capacity).  The
    client should back off and retry; the payload is the 429-style
    rejection the admission layer promises.
``deadline`` / 504
    The per-request deadline expired before a result was ready.
``internal`` / 500
    The compute path raised after every resilience layer gave up.
``draining`` / 503
    The server received SIGTERM/SIGINT and is draining: in-flight
    requests finish, new data requests get this typed rejection
    (``ping``/``metrics`` still answer, so post-mortem scrapes work).
    Safe to retry against another replica — requests are idempotent
    pure functions.

Arrays are JSON numbers; all-integer arrays round-trip as int64 and
any float promotes the array to float64 (numpy's own coercion), so a
response is bit-identical to the serial ``merge()`` oracle run on the
same JSON values.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "OPS",
    "RequestError",
    "Request",
    "parse_request",
    "ok_response",
    "error_response",
    "encode_line",
]

#: Every op the front door accepts.
OPS = ("merge", "sort", "topk", "ping", "metrics")

#: kind -> HTTP-flavoured status code.
ERROR_CODES = {
    "bad-request": 400,
    "too-large": 413,
    "line-too-long": 413,
    "shed": 429,
    "deadline": 504,
    "internal": 500,
    "draining": 503,
}


class RequestError(Exception):
    """A request that must be answered with an error payload."""

    def __init__(self, kind: str, message: str, req_id: Any = None) -> None:
        if kind not in ERROR_CODES:
            raise ValueError(f"unknown error kind {kind!r}")
        super().__init__(message)
        self.kind = kind
        self.code = ERROR_CODES[kind]
        self.message = message
        self.req_id = req_id


@dataclass(slots=True)
class Request:
    """One decoded, validated request (arrays already numpy)."""

    op: str
    req_id: Any = None
    a: np.ndarray | None = None
    b: np.ndarray | None = None
    data: np.ndarray | None = None
    k: int = 0
    deadline_ms: float | None = None
    received_at: float = field(default_factory=time.monotonic)

    @property
    def n_elems(self) -> int:
        """Total payload elements (the unit of the ns/elem SLO)."""
        total = 0
        for arr in (self.a, self.b, self.data):
            if arr is not None:
                total += len(arr)
        return total

    def remaining_s(self, now: float | None = None) -> float | None:
        """Seconds until the deadline; ``None`` when none was set."""
        if self.deadline_ms is None:
            return None
        now = time.monotonic() if now is None else now
        return self.received_at + self.deadline_ms / 1000.0 - now


def _as_array(raw: Any, name: str, req_id: Any) -> np.ndarray:
    if not isinstance(raw, list):
        raise RequestError(
            "bad-request", f"field {name!r} must be a JSON array", req_id
        )
    try:
        arr = np.asarray(raw)
    except (ValueError, TypeError) as exc:
        raise RequestError(
            "bad-request", f"field {name!r} is not numeric: {exc}", req_id
        ) from exc
    if arr.size == 0:
        return np.empty(0, dtype=np.int64)
    if arr.ndim != 1 or not np.issubdtype(arr.dtype, np.number):
        raise RequestError(
            "bad-request",
            f"field {name!r} must be a flat array of numbers "
            f"(got dtype {arr.dtype}, ndim {arr.ndim})",
            req_id,
        )
    return arr


def _check_sorted(arr: np.ndarray, name: str, req_id: Any) -> None:
    if len(arr) > 1 and bool(np.any(arr[1:] < arr[:-1])):
        raise RequestError(
            "bad-request", f"field {name!r} must be sorted non-decreasing",
            req_id,
        )


def parse_request(
    line: bytes | str,
    *,
    max_elems: int | None = None,
    default_deadline_ms: float | None = None,
) -> Request:
    """Decode and validate one request line.

    Raises :class:`RequestError` on any defect; when the line was at
    least valid JSON with an ``id`` field, the error carries it so the
    response can still be correlated.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise RequestError("bad-request", f"invalid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise RequestError("bad-request", "request must be a JSON object")
    req_id = raw.get("id")

    op = raw.get("op")
    if op not in OPS:
        raise RequestError(
            "bad-request",
            f"unknown op {op!r}; expected one of {', '.join(OPS)}",
            req_id,
        )

    deadline_ms = raw.get("deadline_ms", default_deadline_ms)
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise RequestError(
                "bad-request", "deadline_ms must be a positive number", req_id
            )
        deadline_ms = float(deadline_ms)

    req = Request(op=op, req_id=req_id, deadline_ms=deadline_ms)
    if op == "merge" or op == "topk":
        req.a = _as_array(raw.get("a", None), "a", req_id)
        req.b = _as_array(raw.get("b", None), "b", req_id)
        _check_sorted(req.a, "a", req_id)
        _check_sorted(req.b, "b", req_id)
    elif op == "sort":
        req.data = _as_array(raw.get("data", None), "data", req_id)
    if op == "topk":
        k = raw.get("k")
        if not isinstance(k, int) or isinstance(k, bool):
            raise RequestError("bad-request", "topk needs an integer k", req_id)
        if not 0 <= k <= len(req.a) + len(req.b):
            raise RequestError(
                "bad-request",
                f"k must be in [0, {len(req.a) + len(req.b)}], got {k}",
                req_id,
            )
        req.k = k

    if max_elems is not None and req.n_elems > max_elems:
        raise RequestError(
            "too-large",
            f"request carries {req.n_elems} elements, limit {max_elems}",
            req_id,
        )
    return req


def encode_line(payload: dict[str, Any]) -> bytes:
    """One response (or request) as a compact JSON line."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def ok_response(req_id: Any, result: Any, **extra: Any) -> bytes:
    if isinstance(result, np.ndarray):
        result = result.tolist()
    return encode_line({"id": req_id, "ok": True, "result": result, **extra})


def error_response(exc: RequestError) -> bytes:
    return encode_line({
        "id": exc.req_id,
        "ok": False,
        "error": {
            "code": exc.code, "kind": exc.kind, "message": exc.message,
        },
    })
