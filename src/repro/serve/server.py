"""Merge path as a service: the asyncio front door.

``python -m repro serve`` turns the library into a long-running
process in the shape the Hyrise exemplar suggests (merge path as a
sort operator under a job scheduler): requests are jobs, the shared
persistent worker pools (:mod:`repro.execution.pool`) are the
scheduler.  The moving parts, each separately testable:

* :mod:`.protocol` — newline-delimited JSON over TCP, no new deps;
* :class:`.admission.AdmissionController` — bounded in-flight budget,
  429-style shedding, per-request deadlines;
* :class:`.coalescer.Coalescer` — concurrent small requests fuse into
  one :class:`~repro.backends.TaskBatch` dispatch on the shared pool,
  so ``exec.dispatches`` grows sub-linearly in request count;
* a :class:`~repro.resilience.DegradingBackend` execution chain —
  every request runs under per-task retry/timeout supervision and
  falls back ``threads → serial`` if the pool level keeps failing,
  with :class:`~repro.resilience.DegradationEvent`\\ s surfaced as
  ``serve.degradations``;
* one :class:`~repro.obs.MetricsRegistry` per server — ``serve.*``
  counters, ``slo.ns_per_elem`` histograms and the load-balance
  gauges, so ``python -m repro doctor --slo ... --metrics-from`` can
  judge a live traffic window with the PR-6 machinery;
* optionally a background :class:`~repro.control.Controller` stepping
  against the server's own registry — the ROADMAP item-5 follow-up:
  the control loop runs on live traffic instead of the canary.

Requests larger than ``small_cutover`` skip the coalescer and run
through the parallel entry points (``parallel_merge`` /
``parallel_merge_sort``) on the same supervised backend, so a stray
100M-element sort coexists with millions of tiny merges.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..backends import TaskBatch
from ..control.slo import SLO
from ..core.selection import topk_of_union
from ..core.sequential import merge_vectorized
from ..errors import InputError
from ..execution.pool import shared_backend
from ..obs.metrics import MetricsRegistry
from ..resilience.breaker import RecoveryPolicy
from ..resilience.degrade import (
    DegradingBackend,
    subscribe_degradation,
    subscribe_recovery,
)
from ..resilience.policy import RetryPolicy
from .admission import AdmissionController
from .coalescer import Coalescer
from .protocol import (
    Request,
    RequestError,
    error_response,
    ok_response,
    parse_request,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backends import Backend

__all__ = ["ServeConfig", "MergeServer", "ServerThread", "SERVE_DEFAULT_SLO"]


#: The default SLO a serving window is judged against.  Latency bounds
#: are per-*batch-compute* ns/elem (the server observes batch compute
#: time over batch elements into ``slo.ns_per_elem``), far looser than
#: the library canary's because a service batch includes dispatch
#: overhead over tiny payloads; the structural clauses stay tight —
#: they catch bugs (a broken partitioner, an unfused dispatch path),
#: not slow hosts.
SERVE_DEFAULT_SLO = SLO(
    name="serve-default",
    p50_ns_per_elem=200_000.0,
    p99_ns_per_elem=2_000_000.0,
    max_work_spread=1.0,
    max_dispatches_per_call=64.0,
    retry_budget=64,
    max_worker_deaths=0,
)


@dataclass(slots=True)
class ServeConfig:
    """Everything tunable about one server instance."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; read the bound port off the server.
    p: int | None = None  #: workers for the parallel path (None = auto).
    backend: str = "threads"  #: shared-pool level of the degradation chain.
    capacity: int = 512  #: admission budget (queued + executing requests).
    max_batch: int = 64  #: coalescer window size cap.
    window_s: float = 0.002  #: coalescer window duration.
    small_cutover: int = 1 << 15  #: elems at or below coalesce; above run parallel.
    default_deadline_ms: float | None = None  #: applied when requests carry none.
    max_request_elems: int = 1 << 20  #: 413 beyond this.
    max_line_bytes: int = 1 << 26  #: request-line cap (64 MiB); typed 413 beyond.
    control_interval_s: float = 0.0  #: > 0 runs a background Controller.
    drain_timeout_s: float = 5.0  #: graceful-drain budget on SIGTERM.
    metrics_snapshot: str | None = None  #: path for the post-mortem snapshot.
    reprobe_interval_s: float = 0.0  #: > 0 re-probes open breakers in background.
    slo: SLO = field(default_factory=lambda: SERVE_DEFAULT_SLO)

    def resolved_p(self) -> int:
        import os

        if self.p is not None:
            return max(1, self.p)
        return min(4, os.cpu_count() or 1)


class _LineReader:
    """Bounded line reader that survives oversized lines.

    ``StreamReader.readline`` raises at its limit and poisons the
    buffer, killing the connection along with every pipelined request
    behind the bad line.  This reader owns the buffer: a line that
    exceeds ``max_bytes`` is *discarded as it streams in* (memory stays
    bounded at one chunk past the cap) and reported so the server can
    answer a typed 413 ``line-too-long``, while bytes after the
    offending newline are preserved for the next call.
    """

    _CHUNK = 1 << 16

    def __init__(self, reader: asyncio.StreamReader, max_bytes: int) -> None:
        self._reader = reader
        self.max_bytes = max_bytes
        self._buf = bytearray()
        self._eof = False

    async def readline(self) -> tuple[bytes | None, bool]:
        """Next request line as ``(line, oversized)``.

        ``line`` is ``None`` at EOF; ``oversized`` is True when a line
        crossed ``max_bytes`` (its content was dropped, the connection
        remains usable).
        """
        discarding = False
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line = bytes(self._buf[:newline])
                del self._buf[:newline + 1]
                if discarding or len(line) > self.max_bytes:
                    return b"", True
                return line + b"\n", False
            if discarding:
                self._buf.clear()
            elif len(self._buf) > self.max_bytes:
                self._buf.clear()
                discarding = True
            if self._eof:
                if discarding:
                    return b"", True
                if self._buf:
                    line = bytes(self._buf)
                    self._buf.clear()
                    return line, False
                return None, False
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                self._eof = True
            else:
                self._buf.extend(chunk)


class MergeServer:
    """The asyncio TCP front door over the merge-path library.

    ``backend`` defaults to a :class:`DegradingBackend` whose first
    level is the *shared* pooled backend named by the config (so
    coalesced batches land on the PR-5 persistent pools) and whose
    tail is ``serial`` (which cannot die); tests inject fault-wrapped
    chains here.  ``registry`` defaults to a fresh
    :class:`MetricsRegistry` owned by the server.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        backend: "Backend | None" = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._owns_backend = backend is None
        if backend is None:
            backend = DegradingBackend(
                [
                    shared_backend(self.config.backend,
                                   self.config.resolved_p()),
                    "serial",
                ],
                policy=RetryPolicy(
                    max_retries=3,
                    backoff_base_s=0.002,
                    backoff_cap_s=0.05,
                    speculate=False,
                ),
                failure_threshold=3,
                # A service must recover, not just degrade: a transient
                # pool death re-promotes after the breaker's cooldown.
                recovery=RecoveryPolicy(cooldown_s=2.0, cooldown_cap_s=60.0),
            )
        self.backend = backend
        telemetry = getattr(backend, "telemetry", None)
        if telemetry is not None and telemetry.metrics is None:
            telemetry.metrics = self.registry
        self.admission = AdmissionController(
            self.config.capacity, metrics=self.registry
        )
        self.coalescer = Coalescer(
            self._run_window,
            max_batch=self.config.max_batch,
            window_s=self.config.window_s,
        )
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._unsubscribe = None
        self._unsubscribe_recovery = None
        self._controller = None
        self._control_task: asyncio.Task | None = None
        self._reprobe_task: asyncio.Task | None = None
        self._draining = False

    # -- lifecycle -----------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral ``port=0`` after start)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has begun (data requests get 503s)."""
        return self._draining

    async def start(self) -> "MergeServer":
        self._unsubscribe = subscribe_degradation(self._on_degradation)
        self._unsubscribe_recovery = subscribe_recovery(self._on_recovery)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_line_bytes,
        )
        if self.config.control_interval_s > 0:
            from ..control.controller import Controller

            self._controller = Controller(
                self.config.slo, self.registry
            ).start()
            self._control_task = asyncio.get_running_loop().create_task(
                self._control_loop()
            )
        if (self.config.reprobe_interval_s > 0
                and hasattr(self.backend, "reprobe")):
            self._reprobe_task = asyncio.get_running_loop().create_task(
                self._reprobe_loop()
            )
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown, phase 1: stop accepting, finish in flight.

        Closes the listener, flips :attr:`draining` so new data
        requests on surviving connections get typed 503 ``draining``
        rejections (``ping``/``metrics`` still answer — the post-mortem
        scrape depends on it), then waits up to ``timeout_s`` (default
        ``config.drain_timeout_s``) for the admission ledger to empty.
        Every admitted request is answered before this returns True; a
        False return means the budget expired with work still in
        flight.  Always flushes the metrics snapshot (when configured)
        so ``doctor --metrics-from`` can judge the final window.
        """
        if not self._draining:
            self._draining = True
            self.registry.counter("serve.drains").inc()
            if self._server is not None:
                self._server.close()
        budget = (
            self.config.drain_timeout_s if timeout_s is None else timeout_s
        )
        deadline = time.monotonic() + max(0.0, budget)
        while self.admission.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        clean = self.admission.inflight == 0
        await self.coalescer.drain()
        self.flush_snapshot()
        return clean

    def flush_snapshot(self, path: str | None = None) -> str | None:
        """Atomically publish a ``repro-serve-metrics/1`` snapshot.

        ``path`` defaults to ``config.metrics_snapshot``; no-op (returns
        ``None``) when neither is set.  The payload wraps the registry
        snapshot under a ``"metrics"`` key, the shape
        :func:`repro.control.doctor.load_metrics_snapshot` already
        accepts, so a post-mortem ``doctor --metrics-from`` works on a
        snapshot written mid-SIGTERM.
        """
        target = path or self.config.metrics_snapshot
        if not target:
            return None
        from ..durable import atomic_write_json

        atomic_write_json(target, {
            "schema": "repro-serve-metrics/1",
            "draining": self._draining,
            "metrics": self.registry.snapshot(),
        })
        return target

    async def stop(self) -> None:
        for attr in ("_control_task", "_reprobe_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        if self._controller is not None:
            self._controller.stop()
            self._controller = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        await self.coalescer.drain()
        for attr in ("_unsubscribe", "_unsubscribe_recovery"):
            unsubscribe = getattr(self, attr)
            if unsubscribe is not None:
                unsubscribe()
                setattr(self, attr, None)
        if self._owns_backend:
            # Closes levels the chain constructed itself; the shared
            # pooled level is owned by repro.execution.pool, not us.
            self.backend.close()

    def _on_degradation(self, event) -> None:
        self.registry.counter("serve.degradations").inc()
        self.registry.counter(f"serve.degradations.{event.kind}").inc()

    def _on_recovery(self, event) -> None:
        self.registry.counter("serve.recoveries").inc()

    async def _reprobe_loop(self) -> None:
        """Background breaker re-probe (tentpole (b)'s idle half).

        Dispatches already re-probe opportunistically; this loop covers
        the idle server, where no dispatch would ever cross the open
        level and a recovered pool would sit unused until traffic
        returned.  Runs in the executor — a probe executes a real task.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.reprobe_interval_s)
            try:
                await loop.run_in_executor(None, self.backend.reprobe)
            except Exception:  # noqa: BLE001 - keep the loop alive
                pass

    async def _control_loop(self) -> None:
        """The live-traffic control loop (ROADMAP item-5 follow-up).

        Between steps the registry accumulates real request metrics, so
        :meth:`Controller.step` sees a genuine traffic window — the
        exact role the canary plays for ``tune --watch``.  Steps run in
        the executor because a retune may run timing probes.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.control_interval_s)
            await loop.run_in_executor(None, self._controller.step)

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.registry.counter("serve.connections").inc()
        # start_server holds these tasks only weakly; track them so
        # stop() can cancel handlers parked on readline.
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
            conn_task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        request_tasks: set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()
        lines = _LineReader(reader, self.config.max_line_bytes)
        try:
            while True:
                try:
                    line, oversized = await lines.readline()
                except ConnectionError:
                    break  # peer reset: drop the conn
                if line is None:
                    break
                if oversized:
                    self.registry.counter("serve.oversize_lines").inc()
                    await self._write(
                        writer, write_lock, error_response(RequestError(
                            "line-too-long",
                            f"request line exceeded "
                            f"{self.config.max_line_bytes} bytes and was "
                            f"discarded",
                        ))
                    )
                    continue
                if not line.strip():
                    continue
                task = loop.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                request_tasks.add(task)
                task.add_done_callback(request_tasks.discard)
            if request_tasks:
                await asyncio.gather(*list(request_tasks),
                                     return_exceptions=True)
        except asyncio.CancelledError:
            # stop() cancelling a handler parked on a read is a normal
            # shutdown path; returning (not re-raising) keeps asyncio's
            # stream-protocol callback from logging a phantom error.
            pass
        finally:
            for task in list(request_tasks):
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _write(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, line: bytes
    ) -> None:
        async with lock:
            if writer.is_closing():
                return
            writer.write(line)
            try:
                await writer.drain()
            except ConnectionError:
                pass

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        reg = self.registry
        try:
            request = parse_request(
                line,
                max_elems=self.config.max_request_elems,
                default_deadline_ms=self.config.default_deadline_ms,
            )
        except RequestError as exc:
            reg.counter("serve.bad_requests").inc()
            await self._write(writer, write_lock, error_response(exc))
            return

        # Introspection ops bypass admission: they must answer even
        # (especially) when the data path is saturated.
        if request.op == "ping":
            await self._write(
                writer, write_lock, ok_response(request.req_id, "pong")
            )
            return
        if request.op == "metrics":
            await self._write(
                writer, write_lock,
                ok_response(request.req_id, reg.snapshot()),
            )
            return

        reg.counter("serve.requests").inc()
        if self._draining:
            reg.counter("serve.drain_rejects").inc()
            await self._write(writer, write_lock, error_response(RequestError(
                "draining",
                "server is draining; retry against another replica",
                request.req_id,
            )))
            return
        if not self.admission.try_admit():
            # counted as serve.shed by the admission controller
            await self._write(writer, write_lock, error_response(RequestError(
                "shed",
                f"admission queue at capacity "
                f"({self.admission.capacity} in flight); retry with backoff",
                request.req_id,
            )))
            return

        t0 = time.monotonic()
        try:
            if request.n_elems > self.config.small_cutover:
                future = asyncio.get_running_loop().run_in_executor(
                    None, self._compute_large, request
                )
                batched = 1
            else:
                future = self.coalescer.submit(request)
                batched = None  # resolved with the window size
            timeout = request.remaining_s()
            try:
                outcome = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                reg.counter("serve.deadline_misses").inc()
                await self._write(
                    writer, write_lock, error_response(RequestError(
                        "deadline",
                        f"deadline of {request.deadline_ms:g} ms expired",
                        request.req_id,
                    ))
                )
                return
            if batched is None:
                result, batched = outcome
            else:
                result = outcome
            elapsed_ms = (time.monotonic() - t0) * 1e3
            reg.histogram("serve.latency_ms").observe(elapsed_ms)
            reg.counter("serve.responses").inc()
            await self._write(writer, write_lock, ok_response(
                request.req_id, result,
                n=len(result), batched=batched,
                elapsed_ms=round(elapsed_ms, 3),
            ))
        except RequestError as exc:
            kind = "errors" if exc.kind == "internal" else "bad_requests"
            reg.counter(f"serve.{kind}").inc()
            await self._write(writer, write_lock, error_response(exc))
        except Exception as exc:  # noqa: BLE001 - reported to the client
            reg.counter("serve.errors").inc()
            await self._write(writer, write_lock, error_response(RequestError(
                "internal", f"{type(exc).__name__}: {exc}", request.req_id,
            )))
        finally:
            self.admission.release()

    # -- compute -------------------------------------------------------

    def _compute_small(self, request: Request) -> np.ndarray:
        """One coalesced request's body (runs on a backend worker)."""
        if request.op == "merge":
            return merge_vectorized(request.a, request.b, check=False)
        if request.op == "sort":
            return np.sort(request.data, kind="mergesort")
        if request.op == "topk":
            return topk_of_union(request.a, request.b, request.k)
        raise InputError(f"op {request.op!r} has no compute")

    def _compute_large(self, request: Request) -> np.ndarray:
        """Above-cutover path: the parallel entry points, supervised."""
        from ..core.merge_sort import parallel_merge_sort
        from ..core.parallel_merge import parallel_merge

        p = self.config.resolved_p()
        t0 = time.perf_counter()
        if request.op == "merge":
            result = parallel_merge(
                request.a, request.b, p,
                backend=self.backend, check=False, metrics=self.registry,
            )
        elif request.op == "sort":
            result = parallel_merge_sort(
                request.data, p,
                backend=self.backend, metrics=self.registry,
            )
        else:  # topk: one diagonal search + a k-prefix merge — O(log + k)
            result = topk_of_union(request.a, request.b, request.k)
        elapsed = time.perf_counter() - t0
        self._observe_compute(request.n_elems, elapsed, requests=1)
        return result

    def _observe_compute(
        self, elems: int, elapsed_s: float, *, requests: int
    ) -> None:
        if elems <= 0:
            return
        ns_per_elem = elapsed_s * 1e9 / elems
        self.registry.histogram("slo.ns_per_elem").observe(ns_per_elem)
        self.registry.histogram("slo.serve.ns_per_elem").observe(ns_per_elem)

    async def _run_window(
        self, entries: list[tuple[Request, asyncio.Future]]
    ) -> None:
        """Coalescer runner: one window → one ``run_batch`` dispatch."""
        reg = self.registry
        loop = asyncio.get_running_loop()
        requests = [request for request, _ in entries]

        def work() -> tuple[list[Any], float]:
            tasks = [
                (lambda req=request: self._compute_small(req))
                for request in requests
            ]
            t0 = time.perf_counter()
            results = self.backend.run_batch(TaskBatch(
                tasks, label="serve.batch",
                meta={"requests": len(tasks)},
            ))
            elapsed = time.perf_counter() - t0
            ordered = sorted(results, key=lambda r: r.index)
            return [r.value for r in ordered], elapsed

        try:
            values, elapsed = await loop.run_in_executor(None, work)
        except Exception as exc:  # noqa: BLE001 - fanned out per request
            for request, future in entries:
                if not future.done():
                    future.set_exception(RequestError(
                        "internal",
                        f"batch failed beyond every resilience layer: {exc}",
                        request.req_id,
                    ))
            return

        size = len(entries)
        reg.counter("serve.batches").inc()
        reg.counter("serve.coalesced_requests").inc(size)
        reg.histogram("serve.batch_size").observe(size)
        # One window is exactly one run_batch call; counting the
        # constant (instead of a delta of the shared backend counter)
        # keeps concurrent windows from double-counting each other.
        reg.counter("exec.dispatches").inc(1)
        reg.gauge("exec.dispatches_per_call").set(1)
        self._observe_compute(
            sum(request.n_elems for request in requests), elapsed,
            requests=size,
        )
        for (request, future), value in zip(entries, values):
            if not future.done():
                future.set_result((value, size))


class ServerThread:
    """A :class:`MergeServer` on a dedicated thread with its own loop.

    The test battery, the load generator's self-test mode, and the
    serve-smoke harness all need a live server inside an otherwise
    synchronous process::

        with ServerThread(ServeConfig(capacity=64)) as handle:
            resp = request_sync(handle.host, handle.port,
                                {"op": "ping", "id": 1})

    ``start()`` returns once the socket is bound (host/port readable);
    ``stop()`` shuts the server down cleanly and joins the thread.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        backend: "Backend | None" = None,
    ) -> None:
        self.server = MergeServer(config, registry=registry, backend=backend)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def registry(self) -> MetricsRegistry:
        return self.server.registry

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def start(self) -> "ServerThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def drain(self, timeout_s: float | None = None) -> bool:
        """Run :meth:`MergeServer.drain` on the server's loop; returns
        its clean/dirty verdict.  The thread keeps running (existing
        connections can still scrape ``metrics``) until :meth:`stop`."""
        if self._thread is None or self._loop is None:
            return True
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(timeout_s), self._loop
        )
        budget = (
            self.server.config.drain_timeout_s
            if timeout_s is None else timeout_s
        )
        return future.result(timeout=budget + 30.0)

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
