"""Shared datatypes used across the merge-path reproduction package.

The central objects are:

* :class:`PathPoint` — a point on the merge path expressed as *consumed
  counts* ``(i, j)``: ``i`` elements of ``A`` and ``j`` elements of ``B``
  have been emitted when the path passes through the point.  The point
  lies on cross diagonal ``d = i + j`` (Lemma 8 of the paper).
* :class:`Segment` — one contiguous chunk of the merge path assigned to
  one processor: sub-array ranges into ``A``, ``B`` and the output.
* :class:`Partition` — the full list of segments produced by the
  diagonal binary search (Theorem 14), plus bookkeeping about the search
  cost used by the T14 experiment.

Conventions
-----------
All indices are 0-based.  A :class:`Segment` covers the half-open output
range ``[out_start, out_end)``; its ``A`` range is ``[a_start, a_end)``
and its ``B`` range ``[b_start, b_end)`` with
``(a_end - a_start) + (b_end - b_start) == out_end - out_start``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, slots=True)
class PathPoint:
    """A point on the merge path, as consumed-element counts.

    Attributes
    ----------
    i:
        Number of elements of ``A`` consumed (0..|A|).
    j:
        Number of elements of ``B`` consumed (0..|B|).
    """

    i: int
    j: int

    @property
    def diagonal(self) -> int:
        """Index of the cross diagonal this point lies on (Lemma 8)."""
        return self.i + self.j

    def __add__(self, other: "PathPoint") -> "PathPoint":
        return PathPoint(self.i + other.i, self.j + other.j)


@dataclass(frozen=True, slots=True)
class Segment:
    """One processor's share of a partitioned merge.

    The segment merges ``A[a_start:a_end]`` with ``B[b_start:b_end]``
    into output positions ``[out_start, out_end)``.
    """

    index: int
    a_start: int
    a_end: int
    b_start: int
    b_end: int
    out_start: int
    out_end: int

    @property
    def a_len(self) -> int:
        """Number of ``A`` elements in this segment."""
        return self.a_end - self.a_start

    @property
    def b_len(self) -> int:
        """Number of ``B`` elements in this segment."""
        return self.b_end - self.b_start

    @property
    def length(self) -> int:
        """Total number of output elements produced by this segment."""
        return self.out_end - self.out_start

    @property
    def start_point(self) -> PathPoint:
        """Merge-path point at which this segment begins."""
        return PathPoint(self.a_start, self.b_start)

    @property
    def end_point(self) -> PathPoint:
        """Merge-path point at which this segment ends."""
        return PathPoint(self.a_end, self.b_end)

    def validate(self) -> None:
        """Raise ``AssertionError`` if the segment is internally inconsistent."""
        assert 0 <= self.a_start <= self.a_end, self
        assert 0 <= self.b_start <= self.b_end, self
        assert 0 <= self.out_start <= self.out_end, self
        assert self.a_len + self.b_len == self.length, self


@dataclass(frozen=True, slots=True)
class Partition:
    """Result of partitioning a merge path into per-processor segments.

    Produced by :func:`repro.core.merge_path.partition_merge_path` and
    consumed by every parallel merge implementation.  ``search_steps``
    records, per interior cut point, the number of binary-search probes
    used to locate the merge-path/diagonal intersection; Theorem 14
    bounds each entry by ``ceil(log2(min(|A|,|B|) + 1))``.
    """

    a_len: int
    b_len: int
    segments: tuple[Segment, ...]
    search_steps: tuple[int, ...] = ()

    @property
    def p(self) -> int:
        """Number of segments (processors)."""
        return len(self.segments)

    @property
    def total_length(self) -> int:
        """Total merged length, ``|A| + |B|``."""
        return self.a_len + self.b_len

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    def __getitem__(self, k: int) -> Segment:
        return self.segments[k]

    @property
    def segment_lengths(self) -> tuple[int, ...]:
        """Output length of every segment, in order."""
        return tuple(s.length for s in self.segments)

    @property
    def max_imbalance(self) -> int:
        """Difference between the largest and smallest segment length.

        Corollary 7 promises perfect balance: for Merge Path this is at
        most 1 (only because ``|A|+|B|`` may not divide evenly by p).
        """
        lengths = self.segment_lengths
        return max(lengths) - min(lengths)

    def validate(self) -> None:
        """Check the segments tile the merge path exactly once, in order."""
        assert self.segments, "partition must contain at least one segment"
        prev = PathPoint(0, 0)
        out = 0
        for seg in self.segments:
            seg.validate()
            assert seg.start_point == prev, (seg, prev)
            assert seg.out_start == out, seg
            prev = seg.end_point
            out = seg.out_end
        assert prev == PathPoint(self.a_len, self.b_len), prev
        assert out == self.total_length


@dataclass(slots=True)
class MergeStats:
    """Operation counts gathered by instrumented merge kernels.

    These are *algorithmic* counters (element comparisons, element moves,
    binary-search probes), independent of the host machine, and are the
    quantities the PRAM model converts into time.
    """

    comparisons: int = 0
    moves: int = 0
    search_probes: int = 0

    def merge(self, other: "MergeStats") -> None:
        """Accumulate another kernel's counters into this one."""
        self.comparisons += other.comparisons
        self.moves += other.moves
        self.search_probes += other.search_probes

    @property
    def total_ops(self) -> int:
        """All counted primitive operations."""
        return self.comparisons + self.moves + self.search_probes


@dataclass(frozen=True, slots=True)
class TableRow:
    """A single row of an experiment output table."""

    values: dict[str, object]

    def __getitem__(self, key: str) -> object:
        return self.values[key]

    def get(self, key: str, default: object = None) -> object:
        return self.values.get(key, default)


@dataclass(slots=True)
class ExperimentResult:
    """Structured result of one experiment run.

    Attributes
    ----------
    exp_id:
        Identifier from DESIGN.md (e.g. ``"FIG5"``).
    title:
        Human-readable description of the regenerated artifact.
    columns:
        Ordered column names of the table.
    rows:
        Table rows; each row maps column name to value.
    notes:
        Free-form remarks (calibration constants, paper reference values).
    """

    exp_id: str
    title: str
    columns: list[str]
    rows: list[TableRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append a row; values are keyed by column name."""
        self.rows.append(TableRow(values))

    def column(self, name: str) -> list[object]:
        """Extract one column as a list, in row order."""
        return [row[name] for row in self.rows]
