"""Input validation helpers shared by all merge kernels.

Validation is factored out so every public entry point applies identical
rules (sortedness, dtype compatibility, bounds) and produces identical
error types, and so the hot kernels can skip re-validation when called
internally with ``check=False``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .errors import DTypeMismatchError, InputError, NotSortedError

__all__ = [
    "as_array",
    "check_sorted",
    "check_mergeable",
    "check_positive",
    "check_range",
    "first_disorder",
]


def as_array(x: Sequence | np.ndarray, name: str = "array") -> np.ndarray:
    """Coerce ``x`` to a 1-D numpy array without copying when possible.

    Raises :class:`~repro.errors.InputError` for inputs that are not
    one-dimensional or that coerce to object arrays of uncomparable
    elements.
    """
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise InputError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def first_disorder(arr: np.ndarray) -> int | None:
    """Return the first index ``i`` with ``arr[i] > arr[i+1]``, else ``None``.

    Vectorized: O(n) with a single numpy comparison pass.
    """
    if len(arr) < 2:
        return None
    bad = np.nonzero(arr[:-1] > arr[1:])[0]
    if bad.size:
        return int(bad[0])
    return None


def check_sorted(arr: np.ndarray, name: str = "array") -> None:
    """Raise :class:`~repro.errors.NotSortedError` unless ``arr`` is
    non-decreasing."""
    idx = first_disorder(arr)
    if idx is not None:
        raise NotSortedError(name, idx)


def check_mergeable(a: np.ndarray, b: np.ndarray, check_order: bool = True) -> None:
    """Validate that ``a`` and ``b`` can be merged.

    Checks dimensionality (both 1-D), dtype comparability (their
    promoted dtype must not be ``object`` unless both already are) and,
    when ``check_order`` is true, sortedness of both inputs.
    """
    if a.ndim != 1 or b.ndim != 1:
        raise InputError(
            f"merge inputs must be 1-D, got shapes {a.shape} and {b.shape}"
        )
    try:
        promoted = np.promote_types(a.dtype, b.dtype)
    except TypeError as exc:
        raise DTypeMismatchError(
            f"cannot merge dtypes {a.dtype} and {b.dtype}: {exc}"
        ) from exc
    # numpy "promotes" numeric+string to string by casting numbers to
    # text, which silently changes comparison semantics — reject it.
    a_text = np.issubdtype(a.dtype, np.str_) or np.issubdtype(a.dtype, np.bytes_)
    b_text = np.issubdtype(b.dtype, np.str_) or np.issubdtype(b.dtype, np.bytes_)
    if a_text != b_text:
        raise DTypeMismatchError(
            f"cannot merge text dtype with numeric dtype "
            f"({a.dtype} vs {b.dtype}; promotion to {promoted} would "
            "compare numbers as text)"
        )
    if check_order:
        check_sorted(a, "A")
        check_sorted(b, "B")


def check_positive(value: int, name: str) -> None:
    """Raise :class:`~repro.errors.InputError` unless ``value`` >= 1."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise InputError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise InputError(f"{name} must be >= 1, got {value}")


def check_range(value: int, name: str, lo: int, hi: int) -> None:
    """Raise :class:`~repro.errors.InputError` unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise InputError(f"{name} must be in [{lo}, {hi}], got {value}")
