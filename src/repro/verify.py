"""Public result verifiers.

The test suite pins the package against reference implementations; this
module packages the same checks for *users* — e.g. validating a custom
backend, a new kernel, or a port of the library, without depending on
pytest.  All functions raise :class:`~repro.errors.PartitionError` (for
structural problems) or :class:`AssertionError`-free, informative
:class:`~repro.errors.ReproError` subclasses; they return ``None`` on
success so they can be sprinkled into pipelines cheaply.
"""

from __future__ import annotations

import numpy as np

from .errors import PartitionError, ReproError
from .types import Partition
from .validation import as_array

__all__ = ["verify_merged", "verify_partition", "verify_sorted"]


class VerificationError(ReproError):
    """A verifier found the checked artifact inconsistent."""


def verify_sorted(x: np.ndarray, name: str = "array") -> None:
    """Raise :class:`VerificationError` unless ``x`` is non-decreasing."""
    x = as_array(x, name)
    if len(x) > 1:
        bad = np.nonzero(x[:-1] > x[1:])[0]
        if bad.size:
            i = int(bad[0])
            raise VerificationError(
                f"{name} not sorted: {name}[{i}]={x[i]!r} > "
                f"{name}[{i + 1}]={x[i + 1]!r}"
            )


def verify_merged(
    out: np.ndarray, a: np.ndarray, b: np.ndarray, name: str = "output"
) -> None:
    """Check that ``out`` is a correct merge of ``a`` and ``b``.

    Three conditions: correct length, sorted, and exact multiset
    equality with ``A ∪ B`` (order-insensitive, duplicate-exact).
    Stability cannot be checked from values alone — use
    :func:`repro.core.keyed.argmerge` permutations when you need to
    audit tie order.
    """
    out = as_array(out, name)
    a = as_array(a, "A")
    b = as_array(b, "B")
    if len(out) != len(a) + len(b):
        raise VerificationError(
            f"{name} length {len(out)} != |A|+|B| = {len(a) + len(b)}"
        )
    verify_sorted(out, name)
    expected = np.sort(np.concatenate([a, b]))
    if not np.array_equal(np.sort(out), expected):
        raise VerificationError(
            f"{name} is not a permutation of A ∪ B (element multiset differs)"
        )


def verify_partition(
    partition: Partition, a: np.ndarray, b: np.ndarray
) -> None:
    """Check a partition is a true merge-path partition of (A, B).

    Structural tiling (segments cover the path exactly once, in order),
    balance (Corollary 7: imbalance ≤ 1), and the *semantic* boundary
    conditions — every cut point must satisfy the diagonal-intersection
    inequalities, i.e. be a point the merge path actually passes
    through (with the package's A-first tie rule).
    """
    a = as_array(a, "A")
    b = as_array(b, "B")
    try:
        partition.validate()
    except AssertionError as exc:
        raise PartitionError(f"structural tiling violated: {exc}") from exc
    if partition.a_len != len(a) or partition.b_len != len(b):
        raise PartitionError(
            f"partition built for |A|={partition.a_len}, |B|={partition.b_len}"
            f" but given arrays of {len(a)}, {len(b)}"
        )
    if partition.max_imbalance > 1:
        raise PartitionError(
            f"imbalance {partition.max_imbalance} > 1 violates Corollary 7"
        )
    for seg in partition.segments:
        i, j = seg.a_start, seg.b_start
        # path-point conditions at the segment start (Proposition 13):
        if i > 0 and j < len(b) and a[i - 1] > b[j]:
            raise PartitionError(
                f"segment {seg.index} start ({i}, {j}) is not on the merge "
                f"path: A[{i - 1}]={a[i - 1]!r} > B[{j}]={b[j]!r}"
            )
        if j > 0 and i < len(a) and b[j - 1] >= a[i]:
            raise PartitionError(
                f"segment {seg.index} start ({i}, {j}) violates the A-first "
                f"tie rule: B[{j - 1}]={b[j - 1]!r} >= A[{i}]={a[i]!r}"
            )
