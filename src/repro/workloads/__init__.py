"""Workload generators for tests, examples, benchmarks and experiments.

* :mod:`repro.workloads.generators` — statistical inputs (uniform,
  gaussian, zipf-duplicates, pre-sorted pairs) with explicit seeding.
* :mod:`repro.workloads.adversarial` — structured worst cases: the
  paper's own "all elements of A greater than all those of B" killer
  for the naive split, disjoint ranges, perfect interleave, constant
  arrays, organ-pipe and staircase run structures.
* :mod:`repro.workloads.datasets` — scenario data for the examples
  (timestamped log records, time-series shards).
* :mod:`repro.workloads.canary` — the fixed SLO-instrumented replay
  behind ``python -m repro doctor`` and the tune loop (kept out of
  this namespace on purpose: it imports :mod:`repro.core`).
* :mod:`repro.workloads.loadgen` — the deterministic client fleet for
  the serve front door: many tiny merges plus occasional large sorts,
  every response checked against the serial oracle (also kept out of
  this namespace: it imports :mod:`repro.serve`).
"""

from .generators import (
    sorted_uniform_ints,
    sorted_uniform_floats,
    sorted_gaussian,
    sorted_zipf_duplicates,
    sorted_pair,
    unsorted_uniform_ints,
    nearly_sorted,
)
from .adversarial import (
    disjoint_low_high,
    disjoint_high_low,
    perfect_interleave,
    all_equal,
    organ_pipe_pair,
    staircase_runs,
    one_sided_tail,
    ADVERSARIAL_PAIRS,
)
from .datasets import log_records, timeseries_shards

__all__ = [
    "sorted_uniform_ints",
    "sorted_uniform_floats",
    "sorted_gaussian",
    "sorted_zipf_duplicates",
    "sorted_pair",
    "unsorted_uniform_ints",
    "nearly_sorted",
    "disjoint_low_high",
    "disjoint_high_low",
    "perfect_interleave",
    "all_equal",
    "organ_pipe_pair",
    "staircase_runs",
    "one_sided_tail",
    "ADVERSARIAL_PAIRS",
    "log_records",
    "timeseries_shards",
]
