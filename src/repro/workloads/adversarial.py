"""Structured adversarial input pairs.

These drive the failure/extreme paths the statistical generators almost
never hit:

* :func:`disjoint_low_high` / :func:`disjoint_high_low` — all of one
  array precedes all of the other.  ``high_low`` is literally the
  paper's introduction counterexample ("all the elements of A are
  greater than all those of B") that breaks the naive split, and it
  drives the Shiloach–Vishkin partition to its ``|A|/p + |B|`` worst
  segment.
* :func:`perfect_interleave` — A gets evens, B gets odds: the friendly
  case where even the naive split happens to be correct (tests assert
  this, because a counterexample demo is only honest if the happy case
  is shown too).
* :func:`all_equal` — every element equal: the all-ties path; the merge
  path is a staircase and stability is the only thing distinguishing
  outputs.
* :func:`organ_pipe_pair` — ascending-then-flat vs flat-then-ascending
  overlap, producing maximally unequal A/B consumption per segment.
* :func:`staircase_runs` — long alternating runs, the galloping
  kernel's best case.
* :func:`one_sided_tail` — a tiny array against a huge one (the
  ``|A| << |B|`` regime where the log(min) search bound matters).
"""

from __future__ import annotations

import numpy as np

from ..validation import check_positive

__all__ = [
    "disjoint_low_high",
    "disjoint_high_low",
    "perfect_interleave",
    "all_equal",
    "organ_pipe_pair",
    "staircase_runs",
    "one_sided_tail",
    "ADVERSARIAL_PAIRS",
]


def disjoint_low_high(n: int, dtype=np.int64) -> tuple[np.ndarray, np.ndarray]:
    """A = 0..n-1, B = n..2n-1 (all of A below all of B)."""
    check_positive(n, "n")
    return np.arange(n, dtype=dtype), np.arange(n, 2 * n, dtype=dtype)


def disjoint_high_low(n: int, dtype=np.int64) -> tuple[np.ndarray, np.ndarray]:
    """A = n..2n-1, B = 0..n-1 — the paper's naive-split killer."""
    b, a = disjoint_low_high(n, dtype)
    return a, b


def perfect_interleave(n: int, dtype=np.int64) -> tuple[np.ndarray, np.ndarray]:
    """A = evens, B = odds: every merge step alternates arrays."""
    check_positive(n, "n")
    return (
        np.arange(0, 2 * n, 2, dtype=dtype),
        np.arange(1, 2 * n, 2, dtype=dtype),
    )


def all_equal(n: int, value: int = 7, dtype=np.int64) -> tuple[np.ndarray, np.ndarray]:
    """Both arrays a single repeated value — the all-ties path."""
    check_positive(n, "n")
    return (
        np.full(n, value, dtype=dtype),
        np.full(n, value, dtype=dtype),
    )


def organ_pipe_pair(n: int, dtype=np.int64) -> tuple[np.ndarray, np.ndarray]:
    """A ramps early then saturates; B saturates low then ramps.

    A = [0,1,...,n/2-1, n/2, n/2, ...], B = [n/2, n/2, ..., n/2+1, ...]
    — consumption rates flip mid-merge, bending the merge path hard.
    """
    check_positive(n, "n")
    half = n // 2
    a = np.concatenate(
        [np.arange(half, dtype=dtype), np.full(n - half, half, dtype=dtype)]
    )
    b = np.concatenate(
        [
            np.full(half, half, dtype=dtype),
            np.arange(half + 1, half + 1 + (n - half), dtype=dtype),
        ]
    )
    return a, b


def staircase_runs(
    n: int, run: int = 64, dtype=np.int64
) -> tuple[np.ndarray, np.ndarray]:
    """Alternating long runs: A owns even stairs, B odd stairs."""
    check_positive(n, "n")
    check_positive(run, "run")
    base = np.arange(n, dtype=dtype)
    stair = base // run
    a = base + stair * run       # even stairs: [0..run) + gaps
    b = base + (stair + 1) * run  # odd stairs
    return a, b


def one_sided_tail(
    small: int, big: int, dtype=np.int64
) -> tuple[np.ndarray, np.ndarray]:
    """A tiny A sprinkled through a huge B (|A| << |B|)."""
    check_positive(small, "small")
    check_positive(big, "big")
    a = np.linspace(0, big, num=small, dtype=dtype)
    b = np.arange(big, dtype=dtype)
    return a, b


#: Named registry used by parametrized tests and the LB experiment.
ADVERSARIAL_PAIRS = {
    "disjoint_low_high": lambda n: disjoint_low_high(n),
    "disjoint_high_low": lambda n: disjoint_high_low(n),
    "perfect_interleave": lambda n: perfect_interleave(n),
    "all_equal": lambda n: all_equal(n),
    "organ_pipe": lambda n: organ_pipe_pair(n),
    "staircase_runs": lambda n: staircase_runs(n),
    "one_sided_tail": lambda n: one_sided_tail(max(1, n // 64), n),
}
