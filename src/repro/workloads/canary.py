"""The canary workload: a fixed, fast, SLO-instrumented replay.

``python -m repro doctor`` and the ``tune --watch`` loop both need a
*reference* workload whose latency profile is comparable across runs:
deterministic inputs, fixed sizes, a mix of the two hot entry points
(parallel merge and parallel merge sort).  Each timed call lands one
observation in the ``slo.ns_per_elem`` histogram (plus the per-op
``slo.merge.ns_per_elem`` / ``slo.sort.ns_per_elem`` ones) of the
caller's :class:`~repro.obs.MetricsRegistry`, so the SLO evaluator in
:mod:`repro.control` reads p50/p99 straight off the registry — the
same source of truth every other subsystem feeds.

The canary runs through the *tuned* path on purpose (string backend
names, untraced timing runs): the verdict judges the configuration the
autotuner actually routes production calls to, not a pinned one.  One
additional traced merge per cycle attaches the load-balance gauges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.merge_sort import parallel_merge_sort
from ..core.parallel_merge import parallel_merge
from ..obs.balance import load_balance_from_trace, record_load_balance
from ..obs.tracer import Tracer
from .generators import sorted_uniform_ints, unsorted_uniform_ints

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import MetricsRegistry

__all__ = ["CanaryResult", "run_canary"]


@dataclass
class CanaryResult:
    """One canary cycle: per-call rows plus human-readable notes."""

    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def calls(self) -> int:
        return len(self.rows)


def _observe(
    registry: "MetricsRegistry", op: str, ns_per_elem: float
) -> None:
    registry.histogram("slo.ns_per_elem").observe(ns_per_elem)
    registry.histogram(f"slo.{op}.ns_per_elem").observe(ns_per_elem)


def run_canary(
    registry: "MetricsRegistry",
    *,
    quick: bool = False,
    seed: int = 7,
    p: int | None = None,
    backend: str = "threads",
    repeats: int = 2,
) -> CanaryResult:
    """Replay the canary workload into ``registry``.

    Deterministic in inputs (``seed``) and shape: for each size in a
    small grid, ``repeats`` timed parallel merges and one timed sort,
    each observed into the ``slo.*`` latency histograms; ``metrics=``
    is passed through so the usual ``merge.*`` / ``exec.*`` /
    ``balance.work_spread`` metrics accrue too.  A final traced merge
    records the trace-derived load-balance gauges
    (``balance.time_imbalance`` / ``balance.workers``).
    """
    import os

    if p is None:
        p = min(4, os.cpu_count() or 1)
    sizes = (1 << 12, 1 << 14) if quick else (1 << 14, 1 << 16)
    result = CanaryResult()

    for n in sizes:
        a = sorted_uniform_ints(n, seed)
        b = sorted_uniform_ints(n, seed + 1)
        x = unsorted_uniform_ints(n, seed + 2)
        for _ in range(repeats):
            t0 = time.perf_counter()
            parallel_merge(a, b, p, backend=backend, metrics=registry)
            dt = time.perf_counter() - t0
            ns = dt * 1e9 / (2 * n)
            _observe(registry, "merge", ns)
            result.rows.append(
                {"op": "parallel_merge", "n": n, "p": p, "ns_per_elem": ns}
            )
        t0 = time.perf_counter()
        parallel_merge_sort(x, p, backend=backend, metrics=registry)
        dt = time.perf_counter() - t0
        ns = dt * 1e9 / n
        _observe(registry, "sort", ns)
        result.rows.append(
            {"op": "parallel_merge_sort", "n": n, "p": p, "ns_per_elem": ns}
        )

    # One traced merge for the per-worker balance story (traced calls
    # are never rerouted, so this also pins the requested backend).
    tracer = Tracer()
    n = sizes[0]
    a = sorted_uniform_ints(n, seed)
    b = sorted_uniform_ints(n, seed + 1)
    parallel_merge(a, b, p, backend=backend, trace=tracer, metrics=registry)
    report = load_balance_from_trace(tracer)
    record_load_balance(registry, report=report)

    result.notes.append(
        f"canary: {result.calls} timed calls over n in {list(sizes)} at "
        f"p={p} (backend={backend!r}), + 1 traced merge on "
        f"{report.worker_count} worker(s)"
    )
    return result
