"""Scenario datasets for the example applications.

Synthetic but realistically shaped: the examples sort and merge these
the way the paper's introduction motivates (merging as the core of
sorting pipelines and of combining pre-sorted streams).
"""

from __future__ import annotations

import numpy as np

from ..errors import InputError
from ..validation import check_positive
from .generators import rng_from

__all__ = ["log_records", "timeseries_shards"]


def log_records(
    n: int,
    seed: int | np.random.Generator | None = 0,
    *,
    start_epoch: int = 1_700_000_000,
    span_s: int = 86_400,
    sources: int = 4,
) -> list[np.ndarray]:
    """Per-source sorted timestamp streams, like log files to merge.

    Each of ``sources`` streams carries ``~n/sources`` int64 epoch
    timestamps drawn from bursty (clustered) arrivals over ``span_s``
    seconds, pre-sorted per source — the classic merge-join shape.
    """
    check_positive(n, "n")
    check_positive(sources, "sources")
    if span_s < 1:
        raise InputError(f"span_s must be >= 1, got {span_s}")
    rng = rng_from(seed)
    per = [n // sources + (1 if s < n % sources else 0) for s in range(sources)]
    streams = []
    for count in per:
        if count == 0:
            streams.append(np.empty(0, dtype=np.int64))
            continue
        # Bursty arrivals: cluster centers + jitter.
        centers = rng.integers(0, span_s, size=max(1, count // 32 + 1))
        which = rng.integers(0, len(centers), size=count)
        jitter = rng.exponential(30.0, size=count).astype(np.int64)
        ts = start_epoch + centers[which] + jitter
        ts.sort()
        streams.append(ts.astype(np.int64))
    return streams


def timeseries_shards(
    n: int,
    shards: int,
    seed: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """Sorted float measurement shards with overlapping ranges.

    Models time-partitioned sensor data whose shard boundaries overlap
    (late-arriving samples), so naive concatenation is unsorted and a
    k-way merge is required.
    """
    check_positive(n, "n")
    check_positive(shards, "shards")
    rng = rng_from(seed)
    per = n // shards
    out = []
    for s in range(shards):
        base = s * per * 0.8  # 20% overlap with the next shard
        vals = base + rng.random(per) * per * 1.2
        vals.sort()
        out.append(vals)
    return out
