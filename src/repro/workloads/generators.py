"""Seeded statistical workload generators.

Every generator takes an explicit ``seed`` (or a ``numpy.random
.Generator``) so experiments are reproducible run to run; nothing in
the package ever consumes global RNG state.  The paper's Figure 5
workload is :func:`sorted_uniform_ints` — uniformly random 32-bit
integers, pre-sorted.
"""

from __future__ import annotations

import numpy as np

from ..errors import InputError
from ..validation import check_positive

__all__ = [
    "rng_from",
    "sorted_uniform_ints",
    "sorted_uniform_floats",
    "sorted_gaussian",
    "sorted_zipf_duplicates",
    "sorted_pair",
    "unsorted_uniform_ints",
    "nearly_sorted",
]


def rng_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a Generator (fresh entropy only for None)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _check_n(n: int) -> None:
    if n < 0:
        raise InputError(f"n must be >= 0, got {n}")


def unsorted_uniform_ints(
    n: int,
    seed: int | np.random.Generator | None = 0,
    *,
    low: int = 0,
    high: int = 2**31 - 1,
    dtype=np.int32,
) -> np.ndarray:
    """Uniform random integers in ``[low, high)``, unsorted."""
    _check_n(n)
    if high <= low:
        raise InputError(f"need high > low, got [{low}, {high})")
    return rng_from(seed).integers(low, high, size=n, dtype=dtype)


def sorted_uniform_ints(
    n: int,
    seed: int | np.random.Generator | None = 0,
    *,
    low: int = 0,
    high: int = 2**31 - 1,
    dtype=np.int32,
) -> np.ndarray:
    """The paper's workload: sorted uniform 32-bit integers."""
    out = unsorted_uniform_ints(n, seed, low=low, high=high, dtype=dtype)
    out.sort()
    return out


def sorted_uniform_floats(
    n: int, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Sorted uniform float64 in [0, 1)."""
    _check_n(n)
    out = rng_from(seed).random(n)
    out.sort()
    return out


def sorted_gaussian(
    n: int,
    seed: int | np.random.Generator | None = 0,
    *,
    mu: float = 0.0,
    sigma: float = 1.0,
) -> np.ndarray:
    """Sorted normal draws — clustered values stress galloping less than
    disjoint ranges but more than uniform."""
    _check_n(n)
    if sigma <= 0:
        raise InputError(f"sigma must be > 0, got {sigma}")
    out = rng_from(seed).normal(mu, sigma, size=n)
    out.sort()
    return out


def sorted_zipf_duplicates(
    n: int,
    seed: int | np.random.Generator | None = 0,
    *,
    a: float = 1.5,
    vocab: int = 1000,
) -> np.ndarray:
    """Sorted heavy-duplicate integers (Zipf over a small vocabulary).

    Long runs of equal keys exercise the stability tie-break paths and
    the galloping kernel's block copies.
    """
    _check_n(n)
    if a <= 1.0:
        raise InputError(f"zipf exponent must be > 1, got {a}")
    check_positive(vocab, "vocab")
    draws = rng_from(seed).zipf(a, size=n)
    out = np.minimum(draws, vocab).astype(np.int64)
    out.sort()
    return out


def sorted_pair(
    a_len: int,
    b_len: int,
    seed: int | np.random.Generator | None = 0,
    *,
    kind: str = "uniform_ints",
) -> tuple[np.ndarray, np.ndarray]:
    """A pair of independently drawn sorted arrays of one family.

    ``kind`` ∈ {"uniform_ints", "uniform_floats", "gaussian",
    "zipf_duplicates"}.
    """
    rng = rng_from(seed)
    makers = {
        "uniform_ints": sorted_uniform_ints,
        "uniform_floats": sorted_uniform_floats,
        "gaussian": sorted_gaussian,
        "zipf_duplicates": sorted_zipf_duplicates,
    }
    try:
        make = makers[kind]
    except KeyError:
        raise InputError(
            f"unknown workload kind {kind!r}; choose from {sorted(makers)}"
        ) from None
    return make(a_len, rng), make(b_len, rng)


def nearly_sorted(
    n: int,
    seed: int | np.random.Generator | None = 0,
    *,
    swap_fraction: float = 0.01,
) -> np.ndarray:
    """Almost-sorted data: ``arange`` with a fraction of random swaps.

    The classic easy case for adaptive sorts; our merge sort is not
    adaptive, so this workload documents (in benches) what is left on
    the table versus e.g. TimSort.
    """
    _check_n(n)
    if not 0.0 <= swap_fraction <= 1.0:
        raise InputError(
            f"swap_fraction must be in [0, 1], got {swap_fraction}"
        )
    rng = rng_from(seed)
    out = np.arange(n, dtype=np.int64)
    swaps = int(n * swap_fraction)
    if swaps and n >= 2:
        i = rng.integers(0, n, size=swaps)
        j = rng.integers(0, n, size=swaps)
        for x, y in zip(i, j):
            out[x], out[y] = out[y], out[x]
    return out
