"""Deterministic load generator for the serve front door.

The traffic shape ROADMAP item 1 names — *millions of small merges
plus the occasional large sort* — as a seeded, reproducible client
fleet.  Every request is generated from a per-client
``numpy.random.default_rng`` stream, every response is checked
bit-for-bit against the serial oracle (``np.sort`` with the stable
mergesort, the same oracle the conformance tier uses), and the run
folds into a :class:`LoadReport` the smoke harness and the serve tests
assert on.

Kept out of the :mod:`repro.workloads` namespace re-exports' import
path cost: like :mod:`.canary` it imports service machinery, so import
it explicitly (``from repro.workloads.loadgen import run_load_sync``).

Payloads are integers only: ints round-trip JSON exactly, so "bit
identical to the oracle" is a meaningful equality, not an epsilon.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..serve.client import AsyncServeClient

__all__ = ["LoadSpec", "LoadReport", "build_requests", "oracle",
           "run_load", "run_load_sync"]


@dataclass(slots=True)
class LoadSpec:
    """Shape of one deterministic load run."""

    clients: int = 8  #: concurrent connections.
    requests_per_client: int = 50
    seed: int = 7
    small_min: int = 0  #: tiny-merge sizes drawn from [small_min, small_max].
    small_max: int = 256
    large_every: int = 25  #: every Nth request is a large sort (0 = never).
    large_n: int = 200_000
    topk_every: int = 10  #: every Nth request is a top-k (0 = never).
    pipeline: int = 8  #: requests in flight per connection.
    duration_s: float = 0.0  #: > 0 loops the request list until time is up.
    deadline_ms: float | None = None  #: attached to every request when set.
    recv_timeout_s: float = 30.0  #: per-read stall budget; see ``stalls``.


@dataclass(slots=True)
class LoadReport:
    """Outcome of one load run; ``incorrect`` must be zero, always."""

    sent: int = 0
    ok: int = 0
    incorrect: int = 0
    shed: int = 0
    deadline_misses: int = 0
    bad_requests: int = 0
    draining: int = 0
    errors: int = 0
    unmatched: int = 0  #: responses whose id matched nothing in flight.
    disconnects: int = 0  #: connections the server/network dropped mid-run.
    stalls: int = 0  #: reads that hit ``recv_timeout_s`` (lost responses).
    elapsed_s: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)

    def merge(self, other: "LoadReport") -> None:
        self.sent += other.sent
        self.ok += other.ok
        self.incorrect += other.incorrect
        self.shed += other.shed
        self.deadline_misses += other.deadline_misses
        self.bad_requests += other.bad_requests
        self.draining += other.draining
        self.errors += other.errors
        self.unmatched += other.unmatched
        self.disconnects += other.disconnects
        self.stalls += other.stalls
        self.latencies_ms.extend(other.latencies_ms)

    def summary(self) -> dict[str, Any]:
        lat = sorted(self.latencies_ms)

        def pct(q: float) -> float | None:
            # None, not a fake 0.0: an empty window has no percentile,
            # and a dashboard must see "no data", not "0 ms tail".
            if not lat:
                return None
            return round(lat[min(len(lat) - 1, int(q * len(lat)))], 3)

        return {
            "sent": self.sent,
            "ok": self.ok,
            "incorrect": self.incorrect,
            "shed": self.shed,
            "deadline_misses": self.deadline_misses,
            "bad_requests": self.bad_requests,
            "draining": self.draining,
            "errors": self.errors,
            "unmatched": self.unmatched,
            "disconnects": self.disconnects,
            "stalls": self.stalls,
            "elapsed_s": round(self.elapsed_s, 3),
            "rps": round(self.sent / self.elapsed_s, 1)
            if self.elapsed_s > 0 else 0.0,
            "latency_ms": {
                "p50": pct(0.50),
                "p99": pct(0.99),
            },
        }


def _sorted_ints(rng: np.random.Generator, n: int) -> list[int]:
    return np.sort(rng.integers(-1_000_000, 1_000_000, size=n)).tolist()


def build_requests(spec: LoadSpec, client_index: int) -> list[dict[str, Any]]:
    """The deterministic request list for one simulated client.

    Seeded by ``(spec.seed, client_index)``, so the same spec always
    produces the same traffic — a failed soak replays exactly.
    """
    rng = np.random.default_rng((spec.seed, client_index))
    requests: list[dict[str, Any]] = []
    for i in range(spec.requests_per_client):
        req_id = f"c{client_index}-{i}"
        if spec.large_every and (i + 1) % spec.large_every == 0:
            data = rng.integers(
                -10_000_000, 10_000_000, size=spec.large_n
            ).tolist()
            req: dict[str, Any] = {"id": req_id, "op": "sort", "data": data}
        elif spec.topk_every and (i + 1) % spec.topk_every == 0:
            na = int(rng.integers(spec.small_min, spec.small_max + 1))
            nb = int(rng.integers(spec.small_min, spec.small_max + 1))
            a, b = _sorted_ints(rng, na), _sorted_ints(rng, nb)
            k = int(rng.integers(0, na + nb + 1))
            req = {"id": req_id, "op": "topk", "a": a, "b": b, "k": k}
        else:
            na = int(rng.integers(spec.small_min, spec.small_max + 1))
            nb = int(rng.integers(spec.small_min, spec.small_max + 1))
            req = {
                "id": req_id, "op": "merge",
                "a": _sorted_ints(rng, na), "b": _sorted_ints(rng, nb),
            }
        if spec.deadline_ms is not None:
            req["deadline_ms"] = spec.deadline_ms
        requests.append(req)
    return requests


def oracle(request: dict[str, Any]) -> list[int]:
    """The serial ground truth for one request (stable mergesort)."""
    op = request["op"]
    if op == "merge":
        merged = np.sort(
            np.concatenate([
                np.asarray(request["a"], dtype=np.int64),
                np.asarray(request["b"], dtype=np.int64),
            ]),
            kind="mergesort",
        )
        return merged.tolist()
    if op == "sort":
        return np.sort(
            np.asarray(request["data"], dtype=np.int64), kind="mergesort"
        ).tolist()
    if op == "topk":
        merged = np.sort(np.concatenate([
            np.asarray(request["a"], dtype=np.int64),
            np.asarray(request["b"], dtype=np.int64),
        ]), kind="mergesort")
        return merged[: request["k"]].tolist()
    raise ValueError(f"no oracle for op {op!r}")


async def _run_client(
    host: str, port: int, spec: LoadSpec, client_index: int
) -> LoadReport:
    report = LoadReport()
    requests = build_requests(spec, client_index)
    deadline = (
        time.monotonic() + spec.duration_s if spec.duration_s > 0 else None
    )
    client = AsyncServeClient(host, port)
    await client.connect()
    try:
        lap = 0
        while True:
            # Pipelined: keep `spec.pipeline` requests in flight.
            inflight: dict[str, tuple[dict[str, Any], float]] = {}

            async def collect_one() -> None:
                # Bounded read: a response that never comes (a chaos
                # proxy ate the frame, or the server 400'd a corrupted
                # request under its own null id) must cost a counted
                # stall, never a hung soak.
                response = await asyncio.wait_for(
                    client.recv(), spec.recv_timeout_s
                )
                entry = inflight.pop(response.get("id"), None)
                if entry is None:
                    # A response we never asked for (or already gave up
                    # on) — possible when the path corrupts a frame's
                    # id.  Count it; never crash the collector.
                    report.unmatched += 1
                    return
                req, t0 = entry
                latency_ms = (time.monotonic() - t0) * 1e3
                _score(report, req, response, latency_ms)

            try:
                for base in requests:
                    if deadline is not None and time.monotonic() >= deadline:
                        break
                    req = (base if lap == 0
                           else {**base, "id": f"{base['id']}-l{lap}"})
                    while len(inflight) >= max(1, spec.pipeline):
                        await collect_one()
                    inflight[req["id"]] = (req, time.monotonic())
                    await client.send(req)
                    report.sent += 1
                while inflight:
                    await collect_one()
            except asyncio.TimeoutError:
                # In-flight responses stopped arriving: the lost frames
                # are casualties, not wrong answers.  The connection's
                # ordering guarantees are gone, so give it up.
                report.stalls += 1
                break
            except (ConnectionError, OSError, ValueError):
                # The server (or a chaos proxy) dropped us mid-run;
                # everything still in flight is lost, not wrong.
                report.disconnects += 1
                break
            lap += 1
            if deadline is None or time.monotonic() >= deadline:
                break
    finally:
        await client.close()
    return report


def _score(
    report: LoadReport,
    request: dict[str, Any],
    response: dict[str, Any],
    latency_ms: float,
) -> None:
    if response.get("ok"):
        report.latencies_ms.append(latency_ms)
        if response.get("result") == oracle(request):
            report.ok += 1
        else:
            report.incorrect += 1
        return
    kind = (response.get("error") or {}).get("kind")
    if kind == "shed":
        report.shed += 1
    elif kind == "deadline":
        report.deadline_misses += 1
    elif kind in ("bad-request", "too-large", "line-too-long"):
        report.bad_requests += 1
    elif kind == "draining":
        report.draining += 1
    else:
        report.errors += 1


async def run_load(host: str, port: int, spec: LoadSpec) -> LoadReport:
    """Run the client fleet against a live server; aggregate reports."""
    t0 = time.monotonic()
    reports = await asyncio.gather(*(
        _run_client(host, port, spec, i) for i in range(spec.clients)
    ))
    total = LoadReport()
    for report in reports:
        total.merge(report)
    total.elapsed_s = time.monotonic() - t0
    return total


def run_load_sync(host: str, port: int, spec: LoadSpec) -> LoadReport:
    """:func:`run_load` from synchronous code (own event loop)."""
    return asyncio.run(run_load(host, port, spec))
