"""Tests for the timing-model calibrator."""

import dataclasses

import numpy as np
import pytest

from repro.analysis.calibration import (
    CalibrationResult,
    Observation,
    fit_timing_model,
)
from repro.errors import InputError
from repro.machine.specs import dell_t610
from repro.machine.timing import TimingModel

M = 1 << 20


def synth_observations(dram_bw, droop, cpo, noise=0.0, seed=0):
    """Speedups generated from a known ground-truth model."""
    spec = dataclasses.replace(
        dell_t610(), dram_bw_bytes_s=dram_bw, bw_droop_per_doubling=droop
    )
    truth = TimingModel(spec, cycles_per_op=cpo)
    g = np.random.default_rng(seed)
    obs = []
    for size_m in (1, 4, 16, 64, 256):
        for p in (2, 4, 6, 8, 10, 12):
            s = truth.speedup(size_m * M, size_m * M, p)
            if noise:
                s *= float(np.exp(g.normal(0, noise)))
            obs.append(Observation(size_m * M, size_m * M, p, s))
    return obs


class TestFitTimingModel:
    def test_recovers_ground_truth(self):
        # bandwidth is identifiable only when some observations are
        # memory-bound (the docstring's warning); 12 GB/s + 0.08 droop
        # puts ~half of this grid on the memory roof.
        obs = synth_observations(dram_bw=12e9, droop=0.08, cpo=3.0)
        fit = fit_timing_model(obs, dell_t610())
        assert fit.rms_log_error < 0.01
        assert fit.dram_bw_bytes_s == pytest.approx(12e9, rel=0.1)
        assert fit.bw_droop_per_doubling == pytest.approx(0.08, abs=0.02)
        assert fit.cycles_per_op == pytest.approx(3.0, rel=0.1)

    def test_compute_bound_data_leaves_bw_unconstrained_but_fits(self):
        # all-compute-bound truth: speedups carry no bandwidth signal;
        # the fit must still explain the data (cpo + partition term)
        obs = synth_observations(dram_bw=48e9, droop=0.0, cpo=2.0)
        fit = fit_timing_model(obs, dell_t610())
        assert fit.rms_log_error < 0.01

    def test_noisy_fit_predicts_well(self):
        # Under measurement noise the individual constants trade off
        # (only their ratio is sharply identified in mixed regimes), so
        # the meaningful assertion is *predictive* accuracy against the
        # noise-free ground truth, not parameter recovery.
        noiseless = synth_observations(dram_bw=12e9, droop=0.08, cpo=2.5)
        noisy = synth_observations(dram_bw=12e9, droop=0.08, cpo=2.5,
                                   noise=0.02, seed=3)
        fit = fit_timing_model(noisy, dell_t610())
        assert fit.rms_log_error < 0.05
        for truth_obs in noiseless:
            assert fit.predicted(truth_obs) == pytest.approx(
                truth_obs.speedup, rel=0.08
            )

    def test_predicted_matches_model(self):
        obs = synth_observations(dram_bw=24e9, droop=0.03, cpo=2.5)
        fit = fit_timing_model(obs, dell_t610())
        o = obs[0]
        assert fit.predicted(o) == pytest.approx(
            fit.model.speedup(o.a_len, o.b_len, o.p)
        )

    def test_too_few_observations(self):
        obs = synth_observations(24e9, 0.03, 2.5)[:3]
        with pytest.raises(InputError):
            fit_timing_model(obs, dell_t610())

    def test_invalid_observation(self):
        bad = [Observation(M, M, 2, -1.0)] * 4
        with pytest.raises(InputError):
            fit_timing_model(bad, dell_t610())

    def test_result_type(self):
        obs = synth_observations(24e9, 0.03, 2.5)
        fit = fit_timing_model(obs, dell_t610())
        assert isinstance(fit, CalibrationResult)
        assert fit.bw_droop_per_doubling >= 0
