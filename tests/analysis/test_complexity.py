"""Tests for the complexity model fitting."""

import numpy as np
import pytest

from repro.analysis.complexity import fit_merge_time_model
from repro.errors import InputError


def synth_grid(c1=4.0, c2=9.0, c0=5.0, noise=0.0, seed=0):
    g = np.random.default_rng(seed)
    ns, ps, ts = [], [], []
    for e in (10, 12, 14, 16):
        for p in (1, 2, 4, 8, 16):
            n = 1 << e
            t = c1 * n / p + c2 * np.log2(n) + c0
            if noise:
                t *= 1 + g.normal(0, noise)
            ns.append(n)
            ps.append(p)
            ts.append(t)
    return ns, ps, ts


class TestFit:
    def test_exact_recovery(self):
        ns, ps, ts = synth_grid()
        fit = fit_merge_time_model(ns, ps, ts)
        assert fit.c_linear == pytest.approx(4.0, rel=1e-6)
        assert fit.c_log == pytest.approx(9.0, rel=1e-3)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
        assert fit.max_rel_residual < 1e-6

    def test_noisy_recovery(self):
        ns, ps, ts = synth_grid(noise=0.02)
        fit = fit_merge_time_model(ns, ps, ts)
        assert fit.c_linear == pytest.approx(4.0, rel=0.05)
        assert fit.r_squared > 0.99

    def test_predict(self):
        ns, ps, ts = synth_grid()
        fit = fit_merge_time_model(ns, ps, ts)
        assert fit.predict(1 << 14, 4) == pytest.approx(
            4.0 * (1 << 14) / 4 + 9.0 * 14 + 5.0, rel=1e-6
        )


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(InputError):
            fit_merge_time_model([1, 2], [1], [1.0, 2.0])

    def test_too_few_points(self):
        with pytest.raises(InputError):
            fit_merge_time_model([8, 8, 8], [1, 2, 4], [1.0, 2.0, 3.0])

    def test_rejects_invalid_values(self):
        with pytest.raises(InputError):
            fit_merge_time_model([0, 8, 8, 8], [1, 1, 2, 4], [1, 1, 1, 1])
        with pytest.raises(InputError):
            fit_merge_time_model([8, 8, 8, 8], [1, 1, 2, 4], [1, 1, -1, 1])
