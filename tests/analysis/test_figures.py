"""Tests for the terminal figure rendering."""

import pytest

from repro.analysis.figures import bar_chart, grouped_bar_chart
from repro.errors import InputError


class TestBarChart:
    def test_longest_bar_fills_width(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_values_printed(self):
        text = bar_chart(["x"], [3.14159])
        assert "3.14" in text

    def test_labels_aligned(self):
        text = bar_chart(["a", "long-label"], [1, 2])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty(self):
        assert bar_chart([], []) == "(empty chart)"

    def test_zero_values(self):
        text = bar_chart(["a"], [0.0])
        assert "█" not in text

    def test_length_mismatch(self):
        with pytest.raises(InputError):
            bar_chart(["a"], [1.0, 2.0])

    def test_partial_blocks_for_fractions(self):
        # 1.5 / 2.0 of width 10 = 7.5 cells -> 7 full + a half block
        text = bar_chart(["a", "b"], [1.5, 2.0], width=10)
        first = text.splitlines()[0]
        assert first.count("█") == 7
        assert "▌" in first


class TestGroupedBarChart:
    def test_shared_scale_across_groups(self):
        text = grouped_bar_chart(
            {"g1": {"s": 1.0}, "g2": {"s": 4.0}}, width=8
        )
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[1].count("█") == 8
        assert lines[0].count("█") == 2

    def test_group_headers(self):
        text = grouped_bar_chart({"p=2": {"1M": 2.0}})
        assert "p=2:" in text

    def test_empty(self):
        assert grouped_bar_chart({}) == "(empty chart)"
