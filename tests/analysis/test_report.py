"""Tests for the Markdown report generator."""

from repro.analysis.report import generate_report, result_to_markdown
from repro.types import ExperimentResult


class TestResultToMarkdown:
    def test_table_structure(self):
        r = ExperimentResult(exp_id="X", title="demo", columns=["a", "b"])
        r.add_row(a=1, b=2)
        r.notes.append("a note")
        md = result_to_markdown(r)
        assert "## X — demo" in md
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md
        assert "> a note" in md

    def test_missing_cells_blank(self):
        r = ExperimentResult(exp_id="X", title="t", columns=["a", "b"])
        r.add_row(a=1)
        assert "| 1 |  |" in result_to_markdown(r)


class TestGenerateReport:
    def test_subset_report(self):
        md = generate_report(("T14",))
        assert "# Merge Path reproduction report" in md
        assert "## T14" in md
        assert "FIG5" not in md.split("\n", 5)[-1]  # only requested exp

    def test_fig5_includes_chart(self):
        md = generate_report(("FIG5",), quick=True)
        assert "```" in md
        assert "█" in md

    def test_cli_report_mode(self, capsys):
        from repro.__main__ import main

        assert main(["--quick", "report"]) == 0
        out = capsys.readouterr().out
        assert "# Merge Path reproduction report" in out
        assert "## SPM" in out
