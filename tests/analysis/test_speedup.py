"""Tests for speedup/efficiency arithmetic and the classical laws."""

import pytest

from repro.analysis.speedup import (
    amdahl_speedup,
    efficiency,
    gustafson_speedup,
    serial_fraction_from_speedup,
    speedup,
)
from repro.errors import InputError


class TestSpeedupBasics:
    def test_speedup(self):
        assert speedup(10.0, 2.5) == 4.0

    def test_efficiency(self):
        assert efficiency(10.0, 2.5, 8) == 0.5

    def test_validation(self):
        with pytest.raises(InputError):
            speedup(0, 1)
        with pytest.raises(InputError):
            speedup(1, 0)
        with pytest.raises(InputError):
            efficiency(1, 1, 0)


class TestAmdahl:
    def test_no_serial_part_is_linear(self):
        assert amdahl_speedup(0.0, 16) == 16

    def test_all_serial_is_one(self):
        assert amdahl_speedup(1.0, 16) == 1.0

    def test_classic_value(self):
        # 5% serial, 12 cores: 1 / (0.05 + 0.95/12)
        assert amdahl_speedup(0.05, 12) == pytest.approx(7.74, abs=0.01)

    def test_validation(self):
        with pytest.raises(InputError):
            amdahl_speedup(-0.1, 2)
        with pytest.raises(InputError):
            amdahl_speedup(0.5, 0)


class TestGustafson:
    def test_no_serial_part_is_linear(self):
        assert gustafson_speedup(0.0, 8) == 8

    def test_all_serial_is_one(self):
        assert gustafson_speedup(1.0, 8) == 1.0

    def test_exceeds_amdahl(self):
        assert gustafson_speedup(0.1, 12) > amdahl_speedup(0.1, 12)


class TestInversion:
    def test_round_trip(self):
        s = 0.03
        measured = amdahl_speedup(s, 12)
        assert serial_fraction_from_speedup(measured, 12) == pytest.approx(s)

    def test_superlinear_clamped(self):
        assert serial_fraction_from_speedup(13.0, 12) == 0.0

    def test_validation(self):
        with pytest.raises(InputError):
            serial_fraction_from_speedup(5.0, 1)
        with pytest.raises(InputError):
            serial_fraction_from_speedup(0.0, 4)
